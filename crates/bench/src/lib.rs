//! Benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§V–§VI) on the virtual machine model.
//!
//! Each `fig*` / `table1` function returns a [`table::Table`] whose
//! rows mirror the corresponding plot's series; the `figures` binary
//! prints them and writes TSVs under `bench_results/`.
//!
//! Axis mapping: the paper's core counts come from Tianhe-II
//! allocations; this reproduction simulates a proportionally scaled
//! machine (see DESIGN.md §2 and each experiment's `scale` constant).
//! Reported core counts are *paper-axis* values; the `sim cores`
//! column shows what was actually simulated.

#![deny(missing_docs)]

pub mod figs;
pub mod setups;
pub mod table;

pub use figs::*;
pub use table::Table;

/// Experiment scale: `Smoke` for CI / `cargo bench`, `Full` for the
/// EXPERIMENTS.md numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small meshes, few points; finishes in seconds.
    Smoke,
    /// The documented reproduction scale; minutes on one host core.
    Full,
}
