//! Shared experiment setups: meshes, decompositions, machine models.

use jsweep_des::{MachineModel, ProblemOptions, SweepProblem};
use jsweep_graph::PriorityStrategy;
use jsweep_mesh::{partition, StructuredMesh, TetMesh};
use jsweep_quadrature::QuadratureSet;

/// Tianhe-II-style machine: 1 master + 11 workers per 12-core process.
pub fn tianhe(ranks: usize) -> MachineModel {
    MachineModel::cluster(ranks, 11)
}

/// Simulated cores of a Tianhe-style allocation.
pub fn cores(ranks: usize) -> usize {
    ranks * 12
}

/// Priority pair in the paper's "patch+vertex" notation.
#[derive(Debug, Clone, Copy)]
pub struct Strategies {
    pub patch: PriorityStrategy,
    pub vertex: PriorityStrategy,
}

impl Strategies {
    pub fn name(&self) -> String {
        format!("{}+{}", self.patch.name(), self.vertex.name())
    }

    pub const SLBD2: Strategies = Strategies {
        patch: PriorityStrategy::Slbd,
        vertex: PriorityStrategy::Slbd,
    };
}

/// Compile a structured problem: `n³` cells, `patch³` block patches,
/// Hilbert rank distribution.
pub fn structured_problem(
    n: usize,
    patch: usize,
    ranks: usize,
    quad: &QuadratureSet,
    strat: Strategies,
) -> SweepProblem {
    let mesh = StructuredMesh::unit(n, n, n);
    let ps = partition::decompose_structured(&mesh, (patch, patch, patch), ranks);
    SweepProblem::build(
        &mesh,
        ps,
        quad,
        &ProblemOptions {
            vertex_strategy: strat.vertex,
            patch_strategy: strat.patch,
            share_octant_dags: true,
            check_cycles: false,
        },
    )
}

/// Compile an unstructured problem from a tet mesh.
pub fn unstructured_problem(
    mesh: &TetMesh,
    cells_per_patch: usize,
    ranks: usize,
    quad: &QuadratureSet,
    strat: Strategies,
) -> SweepProblem {
    let ps = partition::decompose_unstructured(mesh, cells_per_patch, ranks);
    SweepProblem::build(
        mesh,
        ps,
        quad,
        &ProblemOptions {
            vertex_strategy: strat.vertex,
            patch_strategy: strat.patch,
            share_octant_dags: false,
            check_cycles: false,
        },
    )
}

/// Machine for a `groups`-group JSNT-U-style run (groups only affect
/// message volume in the simulator).
pub fn machine_with_groups(ranks: usize, groups: usize) -> MachineModel {
    let mut m = tianhe(ranks);
    m.bytes_per_item = 8.0 * groups as f64 + 8.0;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tianhe_core_count() {
        assert_eq!(cores(8), 96);
        assert_eq!(tianhe(8).cores(), 96);
    }

    #[test]
    fn strategies_name() {
        assert_eq!(Strategies::SLBD2.name(), "SLBD+SLBD");
    }

    #[test]
    fn structured_setup_builds() {
        let q = QuadratureSet::sn(2);
        let p = structured_problem(8, 4, 2, &q, Strategies::SLBD2);
        assert_eq!(p.num_patches(), 8);
        assert_eq!(p.patches.num_ranks(), 2);
    }
}
