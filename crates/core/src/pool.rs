//! The shared active-program pool of one rank.
//!
//! Holds every local patch-program's state machine (Fig. 7): a program
//! is `Idle` (inactive), `Ready` (active, queued by priority) or
//! `Running` (claimed by a worker). Stream delivery reactivates idle
//! programs.
//!
//! The ready queue is **sharded**: programs hash to one of `S` shards
//! (one per worker by construction in the engine), each with its own
//! lock and priority heap. A worker drains its own shard first and
//! **steals** from the others when it runs dry, so workers stop
//! contending on a single `Mutex<BinaryHeap>` while no worker ever sits
//! idle while an active program exists on the rank. Priority order is
//! exact within a shard and approximate across shards — the same
//! trade the paper's per-worker task queues make against the
//! lightest-worker ideal.
//!
//! Delivery is **batched**: [`Pool::deliver_batch`] buckets a whole
//! frame's streams by shard and enqueues each bucket under one lock
//! acquisition, so an incoming `k`-stream frame costs at most `S` lock
//! round-trips instead of `k`.

use crate::program::{EpochInput, PatchProgram, ProgramId, Stream};
use crate::stats::{Breakdown, Category};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Multiply-mix hasher for [`ProgramId`] keys (two `u32` writes).
/// SipHash's DoS resistance buys nothing for internal slot maps and
/// costs real time on the take/deliver/finish hot path.
#[derive(Default)]
struct IdHasher {
    state: u64,
}

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.state
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.state =
            (self.state.rotate_left(29) ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type IdMap<V> = HashMap<ProgramId, V, BuildHasherDefault<IdHasher>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Idle,
    Ready,
    Running,
    /// The program panicked mid-claim and was discarded
    /// ([`Pool::discard`]). Deliveries are swallowed, the slot is
    /// never claimable again, and it does not count as active —
    /// poisoned state only lives until the faulted universe is
    /// relaunched or shut down.
    Poisoned,
}

struct Slot {
    state: SlotState,
    pending: Vec<(ProgramId, Bytes)>,
    program: Option<Box<dyn PatchProgram>>,
    initialized: bool,
    priority: i64,
}

impl Slot {
    fn new(priority: i64) -> Slot {
        Slot {
            state: SlotState::Idle,
            pending: Vec::new(),
            program: None,
            initialized: false,
            priority,
        }
    }
}

/// One program's return to the pool, for [`Pool::finish_batch`].
pub struct FinishEntry {
    /// Program identity (from its [`Claim`]).
    pub id: ProgramId,
    /// The program instance, back from the worker.
    pub program: Box<dyn PatchProgram>,
    /// The program's `vote_to_halt()` after this round.
    pub halted: bool,
    /// The drained `Claim::pending` buffer; its capacity is recycled
    /// into the slot so the next deliveries don't allocate.
    pub scratch: Vec<(ProgramId, Bytes)>,
}

/// A claimed program, handed to a worker by [`Pool::take`].
pub struct Claim {
    /// Program identity.
    pub id: ProgramId,
    /// The program instance (`None` on first activation — the worker
    /// creates it via the factory).
    pub program: Option<Box<dyn PatchProgram>>,
    /// Streams delivered since the last run.
    pub pending: Vec<(ProgramId, Bytes)>,
    /// Whether `init` has already run.
    pub initialized: bool,
}

struct Shard {
    slots: IdMap<Slot>,
    /// Max-heap on (priority, lowest program id). Entries are **lazily
    /// deleted**: a priority change while a program is `Ready` pushes a
    /// fresh entry and leaves the old one behind; [`Pool::take`] skips
    /// any entry whose slot is no longer `Ready` at that priority.
    heap: BinaryHeap<(i64, Reverse<ProgramId>)>,
}

/// One shard plus its lock-free occupancy signal.
struct ShardCell {
    shard: Mutex<Shard>,
    /// `Ready` slots in this shard — lets steal scans skip empty
    /// shards without touching their locks.
    ready: AtomicUsize,
}

/// Shared per-rank program pool (sharded; see module docs).
pub struct Pool {
    shards: Vec<ShardCell>,
    /// Slots currently `Ready` across all shards (heap entries may
    /// exceed this due to lazy deletion).
    ready: AtomicUsize,
    /// `Ready` + `Running` slots.
    active: AtomicUsize,
    /// Worker report batches holding outputs not yet handed to the
    /// master. Counted so [`Pool::is_quiet`] cannot report quiescence
    /// while a worker still buffers undelivered streams (that would
    /// let the Safra detector terminate early).
    held_reports: AtomicUsize,
    /// Workers blocked in [`Pool::take`]. Publishers skip the sleep
    /// lock + notify entirely while this is zero (the common case on a
    /// busy rank).
    sleepers: AtomicUsize,
    /// Worker batching knob: max output streams buffered per report
    /// (see `RuntimeConfig::report_flush_streams`). Atomic so a
    /// persistent universe can re-tune it per epoch while workers stay
    /// resident.
    flush_streams: AtomicUsize,
    /// Worker batching knob: program claims per pool round-trip (see
    /// `RuntimeConfig::claim_batch`). Per-epoch tunable like
    /// [`Pool::flush_streams`].
    claim_batch: AtomicUsize,
    /// The current epoch's input (persistent universe only): a worker
    /// that lazily creates a program in epoch ≥ 2 resets it with this
    /// before first use, so late-materialising programs see the same
    /// epoch state as resident ones. `None` during the first epoch
    /// (factory-fresh state *is* the first epoch's state) and in
    /// one-shot runs.
    epoch_input: Mutex<Option<Arc<EpochInput>>>,
    /// Monotonic origin for [`Pool::note_worker_activity`] stamps.
    activity_base: Instant,
    /// Per-worker last-activity stamp, nanoseconds since
    /// `activity_base` (`0` = never active). Written by each worker
    /// after it hands a finished batch back; read by the rank at the
    /// epoch fence to compute the per-epoch drain tail (idle-only
    /// reports are held back, so the report channel cannot carry it).
    last_activity: Vec<AtomicU64>,
    stop: AtomicBool,
    /// Sleep coordination: a sleeper registers in `sleepers` and
    /// re-checks `ready`/`stop` under this lock before waiting;
    /// publishers bump `ready` first and notify under the same lock,
    /// so no wakeup can be lost.
    sleep: Mutex<()>,
    cv: Condvar,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Pool {
    /// Empty pool with `num_shards` ready-queue shards (the engine
    /// passes one per worker; `0` is clamped to `1`).
    pub fn new(num_shards: usize) -> Pool {
        let n = num_shards.max(1);
        Pool {
            shards: (0..n)
                .map(|_| ShardCell {
                    shard: Mutex::new(Shard {
                        slots: IdMap::default(),
                        heap: BinaryHeap::new(),
                    }),
                    ready: AtomicUsize::new(0),
                })
                .collect(),
            ready: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            held_reports: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            flush_streams: AtomicUsize::new(32),
            claim_batch: AtomicUsize::new(8),
            epoch_input: Mutex::new(None),
            activity_base: Instant::now(),
            last_activity: (0..n).map(|_| AtomicU64::new(0)).collect(),
            stop: AtomicBool::new(false),
            sleep: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Set the worker batching knobs (`None` keeps the current value).
    /// Safe to call between epochs of a persistent universe; workers
    /// pick the new values up on their next pool round-trip.
    pub fn set_batching(&self, flush_streams: Option<usize>, claim_batch: Option<usize>) {
        if let Some(f) = flush_streams {
            self.flush_streams.store(f.max(1), Ordering::SeqCst);
        }
        if let Some(c) = claim_batch {
            self.claim_batch.store(c.max(1), Ordering::SeqCst);
        }
    }

    /// Current report-flush threshold (streams buffered per worker
    /// report).
    pub fn flush_streams(&self) -> usize {
        self.flush_streams.load(Ordering::SeqCst)
    }

    /// Current claim batch (program claims per pool round-trip).
    pub fn claim_batch(&self) -> usize {
        self.claim_batch.load(Ordering::SeqCst)
    }

    /// Publish the epoch input lazily-created programs must be reset
    /// with (`None` = first epoch / one-shot run: factory-fresh state
    /// is already current).
    pub fn set_epoch_input(&self, input: Option<Arc<EpochInput>>) {
        *self.epoch_input.lock() = input;
    }

    /// The current epoch input, if any (see [`Pool::set_epoch_input`]).
    pub fn epoch_input(&self) -> Option<Arc<EpochInput>> {
        self.epoch_input.lock().clone()
    }

    /// Epoch-boundary reset of a quiescent pool: drop stale
    /// lazily-deleted heap entries and hand every resident program to
    /// `f` (for its [`PatchProgram::reset`]). Panics if any slot is
    /// still `Ready`/`Running` or holds undelivered streams — calling
    /// this mid-epoch is a runtime bug.
    pub fn reset_epoch(&self, mut f: impl FnMut(ProgramId, &mut dyn PatchProgram)) {
        assert!(self.is_quiet(), "epoch reset on a non-quiescent pool");
        for cell in &self.shards {
            let mut g = cell.shard.lock();
            // Stale entries (superseded priorities) would otherwise
            // accumulate across epochs.
            g.heap.clear();
            // Poisoned slots (only reachable here if a caller ignored
            // a fault and reset anyway) are dead weight: drop them.
            g.slots.retain(|_, slot| slot.state != SlotState::Poisoned);
            for (&id, slot) in g.slots.iter_mut() {
                assert_eq!(
                    slot.state,
                    SlotState::Idle,
                    "program {id:?} not idle at epoch boundary"
                );
                assert!(
                    slot.pending.is_empty(),
                    "program {id:?} holds undelivered streams at epoch boundary"
                );
                if let Some(p) = slot.program.as_mut() {
                    f(id, p.as_mut());
                }
            }
        }
    }

    /// Number of ready-queue shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Nanoseconds elapsed on this pool's monotonic activity clock.
    /// All activity stamps share this origin, so differences are
    /// directly comparable across threads.
    pub fn now_nanos(&self) -> u64 {
        // `max(1)` keeps 0 reserved for "never active".
        (self.activity_base.elapsed().as_nanos() as u64).max(1)
    }

    /// Stamp `worker` as active *now*. Workers call this after each
    /// report hand-off; the gap between the newest stamp and the epoch
    /// close is that worker's end-of-epoch drain.
    pub fn note_worker_activity(&self, worker: usize) {
        if let Some(a) = self.last_activity.get(worker) {
            a.store(self.now_nanos(), Ordering::Relaxed);
        }
    }

    /// `worker`'s newest activity stamp (nanoseconds on the
    /// [`Pool::now_nanos`] clock; `0` = never active).
    pub fn worker_last_activity_nanos(&self, worker: usize) -> u64 {
        self.last_activity
            .get(worker)
            .map_or(0, |a| a.load(Ordering::Relaxed))
    }

    fn shard_of(&self, id: ProgramId) -> usize {
        let key = (u64::from(id.patch.0) << 32) | u64::from(id.task.0);
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.shards.len()
    }

    /// Account `newly` Idle→Ready transitions (whose `ready` counters
    /// were already bumped under their shard locks) and wake sleeping
    /// workers. `ready` must be incremented while the shard lock is
    /// held: a claimer can only decrement after popping the entry
    /// under that same lock, so the counter can never transiently
    /// underflow (and wrap) no matter how the publisher is scheduled.
    fn publish_ready(&self, newly: usize) {
        if newly == 0 {
            return;
        }
        self.active.fetch_add(newly, Ordering::SeqCst);
        self.wake(newly);
    }

    /// Bump both ready counters for shard `s`; call with the shard
    /// lock held (see [`Pool::publish_ready`]).
    fn add_ready(&self, s: usize, n: usize) {
        if n > 0 {
            self.shards[s].ready.fetch_add(n, Ordering::SeqCst);
            self.ready.fetch_add(n, Ordering::SeqCst);
        }
    }

    /// Wake sleepers for `n` new items. Publishers bump `ready` before
    /// calling this; a sleeper registers in `sleepers` *before* its
    /// final `ready` re-check (both SeqCst), so reading `sleepers == 0`
    /// here proves any concurrent sleeper will still see our update and
    /// skip the wait — the notify can be elided.
    fn wake(&self, n: usize) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _g = self.sleep.lock();
        if n == 1 {
            self.cv.notify_one();
        } else {
            self.cv.notify_all();
        }
    }

    /// Register and activate a program with the given priority (initial
    /// activation: per §III-A all patch-programs start active).
    ///
    /// Re-activating a `Ready` program with a different priority
    /// re-queues it at the new priority; the superseded heap entry is
    /// skipped lazily by [`Pool::take`].
    pub fn activate(&self, id: ProgramId, priority: i64) {
        let s = self.shard_of(id);
        let newly = {
            let mut g = self.shards[s].shard.lock();
            let slot = g.slots.entry(id).or_insert_with(|| Slot::new(priority));
            slot.priority = priority;
            match slot.state {
                SlotState::Idle => {
                    slot.state = SlotState::Ready;
                    g.heap.push((priority, Reverse(id)));
                    self.add_ready(s, 1);
                    1
                }
                SlotState::Ready => {
                    // Keep the heap consistent with the new priority;
                    // the old entry becomes stale.
                    g.heap.push((priority, Reverse(id)));
                    0
                }
                // Running: the new priority takes effect on re-queue.
                SlotState::Running => 0,
                // Discarded after a contained panic: never runs again.
                SlotState::Poisoned => 0,
            }
        };
        self.publish_ready(newly);
    }

    /// Remove a claimed program after a contained panic: its slot
    /// becomes `SlotState::Poisoned` — undeliverable, unclaimable —
    /// and stops counting as active, so the pool can still quiesce
    /// around the loss. Pending streams it accumulated while running
    /// are dropped with it. The caller (the worker that caught the
    /// unwind) owns no program instance any more; the poisoned slot
    /// survives only until the faulted universe is relaunched.
    pub fn discard(&self, id: ProgramId) {
        let s = self.shard_of(id);
        {
            let mut g = self.shards[s].shard.lock();
            let slot = g.slots.get_mut(&id).expect("discarding unknown program");
            debug_assert_eq!(slot.state, SlotState::Running, "discard outside a claim");
            slot.state = SlotState::Poisoned;
            slot.program = None;
            slot.pending.clear();
        }
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    fn deliver_into(g: &mut Shard, stream: Stream, priority: i64) -> usize {
        let slot = g
            .slots
            .entry(stream.dst)
            .or_insert_with(|| Slot::new(priority));
        if slot.state == SlotState::Poisoned {
            // Streams to a discarded program are dropped: the epoch is
            // already poisoned and nothing may observe its torn state.
            return 0;
        }
        slot.pending.push((stream.src, stream.payload));
        if slot.state == SlotState::Idle {
            slot.state = SlotState::Ready;
            let prio = slot.priority;
            g.heap.push((prio, Reverse(stream.dst)));
            1
        } else {
            0
        }
    }

    /// Deliver a stream; reactivates the target if it is idle.
    ///
    /// `priority` is used when the target was never registered (possible
    /// when a stream races ahead of startup activation).
    pub fn deliver(&self, stream: Stream, priority: i64) {
        let s = self.shard_of(stream.dst);
        let newly = {
            let mut g = self.shards[s].shard.lock();
            let newly = Self::deliver_into(&mut g, stream, priority);
            self.add_ready(s, newly);
            newly
        };
        self.publish_ready(newly);
    }

    /// Deliver a whole frame's streams, locking each touched shard
    /// exactly once (the pool half of §II communication aggregation;
    /// per-stream `priority` as in [`Pool::deliver`]).
    ///
    /// Per-destination delivery order follows the batch's order. One
    /// `Vec` collects the batch; shards are then served by in-place
    /// scans, so the steady-state path does no per-shard allocation.
    pub fn deliver_batch<I>(&self, batch: I)
    where
        I: IntoIterator<Item = (Stream, i64)>,
    {
        let mut items: Vec<Option<(Stream, i64)>> = batch.into_iter().map(Some).collect();
        if items.is_empty() {
            return;
        }
        let n = self.shards.len();
        let mut newly = 0;
        for s in 0..n {
            let mut guard = None;
            let mut shard_newly = 0;
            for item in items.iter_mut() {
                let belongs = item
                    .as_ref()
                    .is_some_and(|(stream, _)| self.shard_of(stream.dst) == s);
                if !belongs {
                    continue;
                }
                let (stream, prio) = item.take().expect("checked above");
                let g = guard.get_or_insert_with(|| self.shards[s].shard.lock());
                shard_newly += Self::deliver_into(g, stream, prio);
            }
            if guard.is_some() {
                self.add_ready(s, shard_newly);
                newly += shard_newly;
            }
        }
        self.publish_ready(newly);
    }

    /// Pop the shard's best live heap entry into a claim (lazy
    /// deletion: entries superseded by a priority change or already
    /// claimed through a newer entry are skipped and dropped).
    fn pop_claim(g: &mut Shard) -> Option<Claim> {
        while let Some((prio, Reverse(id))) = g.heap.pop() {
            let slot = g.slots.get_mut(&id).expect("heap entry has a slot");
            if slot.state != SlotState::Ready || slot.priority != prio {
                continue;
            }
            slot.state = SlotState::Running;
            return Some(Claim {
                id,
                program: slot.program.take(),
                pending: std::mem::take(&mut slot.pending),
                initialized: slot.initialized,
            });
        }
        None
    }

    /// Claim up to `max` programs from shard `s` under one lock
    /// acquisition; returns how many were taken.
    fn take_from_shard_batch(&self, s: usize, max: usize, out: &mut Vec<Claim>) -> usize {
        let cell = &self.shards[s];
        let mut g = cell.shard.lock();
        let mut got = 0;
        while got < max {
            match Self::pop_claim(&mut g) {
                Some(claim) => {
                    out.push(claim);
                    got += 1;
                }
                None => break,
            }
        }
        if got > 0 {
            cell.ready.fetch_sub(got, Ordering::SeqCst);
            self.ready.fetch_sub(got, Ordering::SeqCst);
        }
        got
    }

    /// Non-blocking claim: `worker`'s own shard first, then steal from
    /// the others. Empty shards are skipped by their occupancy signal
    /// without touching their locks. Returns `None` when nothing is
    /// ready right now.
    pub fn try_take(&self, worker: usize) -> Option<Claim> {
        let mut one = Vec::with_capacity(1);
        if self.try_take_batch(worker, 1, &mut one) > 0 {
            one.pop()
        } else {
            None
        }
    }

    /// Non-blocking batched claim: pops up to `max` ready programs
    /// (priority order within their shard) under one lock acquisition
    /// per visited shard, appending to `out` — the worker-side
    /// counterpart of [`Pool::deliver_batch`]. Returns how many claims
    /// were appended.
    ///
    /// The batch is additionally capped at a fair share of what is
    /// ready (`ready / shards`), so when few heavy programs are
    /// active, workers still get one each instead of one worker
    /// hoarding the whole queue; deep queues batch fully.
    pub fn try_take_batch(&self, worker: usize, max: usize, out: &mut Vec<Claim>) -> usize {
        let ready = self.ready.load(Ordering::SeqCst);
        // A stopped pool hands out nothing, even with programs still
        // ready: healthy shutdown only happens quiesced (nothing is
        // ready), so this path abandons work exactly when an epoch
        // faulted mid-flight — where a never-halting program would
        // otherwise be re-claimed forever and wedge the join.
        if ready == 0 || self.stop.load(Ordering::SeqCst) {
            return 0;
        }
        let n = self.shards.len();
        let max = max.min((ready / n).max(1));
        let mut got = 0;
        for i in 0..n {
            if got >= max {
                break;
            }
            let s = (worker + i) % n;
            if self.shards[s].ready.load(Ordering::SeqCst) == 0 {
                continue;
            }
            got += self.take_from_shard_batch(s, max - got, out);
        }
        got
    }

    /// Blocking [`Pool::try_take_batch`]: waits until at least one
    /// program is claimed, or the pool stops with the queues drained
    /// (returning 0). Wait time is charged to `bd`'s `Idle` category.
    pub fn take_batch(
        &self,
        worker: usize,
        max: usize,
        out: &mut Vec<Claim>,
        bd: &mut Breakdown,
    ) -> usize {
        loop {
            let got = self.try_take_batch(worker, max, out);
            if got > 0 {
                return got;
            }
            let mut g = self.sleep.lock();
            // Register as a sleeper *before* the final re-check:
            // publishers bump `ready` and then look at `sleepers`, so
            // either they see us (and notify) or we see their update
            // here (and skip the wait).
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            // Stop wins over ready: once stopped, `try_take_batch`
            // refuses to hand out the abandoned ready work, so looping
            // on `ready > 0` would spin forever.
            if self.stop.load(Ordering::SeqCst) {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return 0;
            }
            if self.ready.load(Ordering::SeqCst) > 0 {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                drop(g);
                continue;
            }
            let t0 = Instant::now();
            self.cv.wait(&mut g);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            bd.add(Category::Idle, t0.elapsed().as_secs_f64());
        }
    }

    /// Claim the highest-priority ready program of `worker`'s shard
    /// (stealing across shards when it is empty), blocking while none
    /// is available anywhere. Returns `None` after [`Pool::stop`] once
    /// the queues are drained. Wait time is charged to `bd`'s `Idle`
    /// category.
    pub fn take(&self, worker: usize, bd: &mut Breakdown) -> Option<Claim> {
        let mut one = Vec::with_capacity(1);
        if self.take_batch(worker, 1, &mut one, bd) > 0 {
            one.pop()
        } else {
            None
        }
    }

    /// Return a program after a compute round. `halted` is the program's
    /// `vote_to_halt()`; it re-queues when it stays active or received
    /// streams while running.
    pub fn finish(&self, id: ProgramId, program: Box<dyn PatchProgram>, halted: bool) {
        self.finish_recycle(id, program, halted, Vec::new());
    }

    /// [`Pool::finish`] that also hands back the emptied `pending`
    /// buffer of the worker's [`Claim`], so the slot's next deliveries
    /// reuse its capacity instead of allocating a fresh `Vec` per
    /// claim cycle (a measurable share of per-stream cost).
    pub fn finish_recycle(
        &self,
        id: ProgramId,
        program: Box<dyn PatchProgram>,
        halted: bool,
        scratch: Vec<(ProgramId, Bytes)>,
    ) {
        debug_assert!(scratch.is_empty(), "recycled buffer must be drained");
        let s = self.shard_of(id);
        let requeued = {
            let mut g = self.shards[s].shard.lock();
            let requeued = Self::finish_into(
                &mut g,
                FinishEntry {
                    id,
                    program,
                    halted,
                    scratch,
                },
            );
            if requeued {
                self.add_ready(s, 1);
            }
            requeued
        };
        if requeued {
            // Running -> Ready: already counted active.
            self.wake(1);
        } else {
            self.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Apply one finish under an already-held shard guard; returns
    /// whether the program was re-queued.
    fn finish_into(g: &mut Shard, e: FinishEntry) -> bool {
        let slot = g.slots.get_mut(&e.id).expect("finishing unknown program");
        debug_assert_eq!(slot.state, SlotState::Running);
        slot.program = Some(e.program);
        slot.initialized = true;
        if slot.pending.is_empty() && e.scratch.capacity() > slot.pending.capacity() {
            slot.pending = e.scratch;
        }
        if !e.halted || !slot.pending.is_empty() {
            slot.state = SlotState::Ready;
            let prio = slot.priority;
            g.heap.push((prio, Reverse(e.id)));
            true
        } else {
            slot.state = SlotState::Idle;
            false
        }
    }

    /// Return a whole batch of programs after their compute rounds,
    /// locking each run of same-shard entries once (the worker-side
    /// counterpart of [`Pool::deliver_batch`] on the way out).
    /// Entries are drained; `entries` keeps its capacity.
    pub fn finish_batch(&self, entries: &mut Vec<FinishEntry>) {
        let mut requeued = 0;
        let mut idled = 0;
        let mut held: Option<(usize, parking_lot::MutexGuard<'_, Shard>)> = None;
        for e in entries.drain(..) {
            let s = self.shard_of(e.id);
            if held.as_ref().map(|(cur, _)| *cur) != Some(s) {
                // Release before acquiring a different shard's lock:
                // holding two shard locks at once would let workers
                // whose batches visit shards in different rotation
                // orders deadlock (ABBA).
                drop(held.take());
                held = Some((s, self.shards[s].shard.lock()));
            }
            let (_, g) = held.as_mut().expect("guard set above");
            if Self::finish_into(g, e) {
                self.add_ready(s, 1);
                requeued += 1;
            } else {
                idled += 1;
            }
        }
        drop(held);
        if requeued > 0 {
            // Running -> Ready: already counted active; `ready` was
            // bumped per entry under the shard locks.
            self.wake(requeued);
        }
        if idled > 0 {
            self.active.fetch_sub(idled, Ordering::SeqCst);
        }
    }

    /// A worker buffered a report (outputs/work/stat deltas not yet
    /// sent to the master). Must be called *before* the producing
    /// program's [`Pool::finish`], so quiescence is never visible
    /// while streams — or per-epoch accounting — sit in a
    /// worker-local batch.
    pub fn hold_report(&self) {
        self.held_reports.fetch_add(1, Ordering::SeqCst);
    }

    /// The buffered report left the worker (sent to the master).
    pub fn release_report(&self) {
        self.held_reports.fetch_sub(1, Ordering::SeqCst);
    }

    /// True when no program is ready or running and no worker holds a
    /// buffered report (the rank is quiescent apart from possible
    /// in-flight messages).
    pub fn is_quiet(&self) -> bool {
        self.active.load(Ordering::SeqCst) == 0 && self.held_reports.load(Ordering::SeqCst) == 0
    }

    /// Wake all workers and make further `take` calls return `None`
    /// once the queues are empty.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _g = self.sleep.lock();
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ComputeCtx, TaskTag};
    use jsweep_mesh::PatchId;

    struct Nop;
    impl PatchProgram for Nop {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {}
        fn compute(&mut self, _ctx: &mut ComputeCtx) {}
        fn vote_to_halt(&self) -> bool {
            true
        }
        fn remaining_work(&self) -> u64 {
            0
        }
    }

    fn pid(p: u32, t: u32) -> ProgramId {
        ProgramId::new(PatchId(p), TaskTag(t))
    }

    fn stream_to(dst: ProgramId) -> Stream {
        Stream {
            src: pid(999, 0),
            dst,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn take_returns_highest_priority_first() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 1);
        pool.activate(pid(1, 0), 10);
        pool.activate(pid(2, 0), 5);
        let mut bd = Breakdown::default();
        let a = pool.take(0, &mut bd).unwrap();
        assert_eq!(a.id, pid(1, 0));
        pool.finish(a.id, Box::new(Nop), true);
        let b = pool.take(0, &mut bd).unwrap();
        assert_eq!(b.id, pid(2, 0));
    }

    #[test]
    fn tie_break_lowest_program_id() {
        let pool = Pool::new(1);
        pool.activate(pid(7, 1), 3);
        pool.activate(pid(7, 0), 3);
        let mut bd = Breakdown::default();
        assert_eq!(pool.take(0, &mut bd).unwrap().id, pid(7, 0));
    }

    #[test]
    fn deliver_reactivates_idle_program() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(0, &mut bd).unwrap();
        pool.finish(claim.id, Box::new(Nop), true); // halts -> idle
        assert!(pool.is_quiet());
        pool.deliver(stream_to(pid(0, 0)), 0);
        assert!(!pool.is_quiet());
        let again = pool.take(0, &mut bd).unwrap();
        assert_eq!(again.id, pid(0, 0));
        assert_eq!(again.pending.len(), 1);
        assert!(again.initialized);
        assert!(again.program.is_some());
    }

    #[test]
    fn deliver_during_running_requeues_on_finish() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(0, &mut bd).unwrap();
        // Stream arrives while the program is running.
        pool.deliver(stream_to(pid(0, 0)), 0);
        pool.finish(claim.id, Box::new(Nop), true);
        // Despite voting to halt, the pending stream keeps it active.
        assert!(!pool.is_quiet());
        let again = pool.take(0, &mut bd).unwrap();
        assert_eq!(again.pending.len(), 1);
    }

    #[test]
    fn non_halting_program_requeues() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(0, &mut bd).unwrap();
        pool.finish(claim.id, Box::new(Nop), false);
        assert!(!pool.is_quiet());
    }

    #[test]
    fn stop_unblocks_takers() {
        let pool = std::sync::Arc::new(Pool::new(2));
        let p2 = pool.clone();
        let h = std::thread::spawn(move || {
            let mut bd = Breakdown::default();
            p2.take(0, &mut bd).is_none()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        pool.stop();
        assert!(h.join().unwrap());
    }

    #[test]
    fn activate_is_idempotent_while_ready() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 0);
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(0, &mut bd).unwrap();
        pool.finish(claim.id, Box::new(Nop), true);
        assert!(pool.is_quiet(), "double activation corrupted the queue");
    }

    /// Regression (this PR): re-activating a `Ready` program at a new
    /// priority used to leave the heap entry at the old priority, so
    /// scheduling order ignored the update. The fix re-queues at the
    /// new priority and lazily skips the stale entry.
    #[test]
    fn priority_change_while_ready_requeues_and_skips_stale_entry() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 1);
        pool.activate(pid(1, 0), 3);
        // Bump program 0 above program 1 while it is already Ready.
        pool.activate(pid(0, 0), 5);
        let mut bd = Breakdown::default();
        let first = pool.take(0, &mut bd).unwrap();
        assert_eq!(first.id, pid(0, 0), "new priority must win");
        pool.finish(first.id, Box::new(Nop), true);
        // The stale (1, pid 0) entry is still in the heap; popping it
        // must skip, not double-claim or panic.
        let second = pool.take(0, &mut bd).unwrap();
        assert_eq!(second.id, pid(1, 0));
        pool.finish(second.id, Box::new(Nop), true);
        assert!(pool.try_take(0).is_none());
        assert!(pool.is_quiet());
    }

    /// Lowering a priority must also take effect (the stale entry here
    /// sorts *above* the live one and must be skipped on pop).
    #[test]
    fn priority_drop_while_ready_is_honoured() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 10);
        pool.activate(pid(1, 0), 5);
        pool.activate(pid(0, 0), 1); // demote below program 1
        let mut bd = Breakdown::default();
        assert_eq!(pool.take(0, &mut bd).unwrap().id, pid(1, 0));
        assert_eq!(pool.take(0, &mut bd).unwrap().id, pid(0, 0));
    }

    #[test]
    fn deliver_batch_locks_per_shard_and_activates_all() {
        let pool = Pool::new(4);
        let batch: Vec<(Stream, i64)> = (0..32u32).map(|p| (stream_to(pid(p, 0)), 0)).collect();
        pool.deliver_batch(batch);
        let mut seen = 0;
        while pool.try_take(0).is_some() {
            seen += 1;
        }
        // Claimed but never finished: all 32 are Running.
        assert_eq!(seen, 32);
        assert!(!pool.is_quiet());
    }

    #[test]
    fn worker_steals_from_other_shards() {
        let pool = Pool::new(4);
        for p in 0..16u32 {
            pool.activate(pid(p, 0), 0);
        }
        // A single worker (index 0) must drain every shard.
        let mut drained = 0;
        while let Some(claim) = pool.try_take(0) {
            pool.finish(claim.id, Box::new(Nop), true);
            drained += 1;
        }
        assert_eq!(drained, 16);
        assert!(pool.is_quiet());
    }

    /// Regression: `finish_batch` once held a shard lock while
    /// acquiring the next shard's lock, so two workers whose batches
    /// visited shards in opposite rotation orders (worker 0 claims
    /// shard 0 first, worker 1 claims shard 1 first — exactly what
    /// `try_take_batch` produces) could deadlock ABBA-style.
    #[test]
    fn finish_batch_cross_shard_orders_do_not_deadlock() {
        let pool = std::sync::Arc::new(Pool::new(2));
        for p in 0..32u32 {
            pool.activate(pid(p, 0), 0);
        }
        let mut threads = Vec::new();
        for w in 0..2 {
            let pool = pool.clone();
            threads.push(std::thread::spawn(move || {
                let mut claims = Vec::new();
                let mut finishes = Vec::new();
                // halted=false keeps everything requeued: sustained
                // cross-shard finish batches from both directions.
                for _ in 0..3000 {
                    if pool.try_take_batch(w, 8, &mut claims) == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    for claim in claims.drain(..) {
                        finishes.push(FinishEntry {
                            id: claim.id,
                            program: Box::new(Nop),
                            halted: false,
                            scratch: Vec::new(),
                        });
                    }
                    pool.finish_batch(&mut finishes);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert!(!pool.is_quiet(), "programs stay active (halted=false)");
    }

    #[test]
    fn discard_poisons_slot_and_keeps_quiescence_consistent() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 0);
        let claim = pool.try_take(0).unwrap();
        assert!(!pool.is_quiet());
        pool.discard(claim.id);
        assert!(pool.is_quiet(), "discarded program must not count active");
        // Deliveries and re-activations to a poisoned slot are
        // swallowed: the program can never run again.
        pool.deliver(stream_to(pid(0, 0)), 0);
        pool.activate(pid(0, 0), 5);
        assert!(pool.is_quiet());
        assert!(pool.try_take(0).is_none());
        // An epoch reset drops the poisoned slot entirely.
        pool.reset_epoch(|id, _| panic!("poisoned slot {id:?} visited"));
    }

    #[test]
    fn held_reports_defer_quiescence() {
        let pool = Pool::new(1);
        assert!(pool.is_quiet());
        pool.hold_report();
        assert!(!pool.is_quiet(), "held worker outputs must block quiet");
        pool.release_report();
        assert!(pool.is_quiet());
    }

    #[test]
    fn reset_epoch_clears_stale_heap_entries_and_visits_residents() {
        let pool = Pool::new(2);
        pool.activate(pid(0, 0), 1);
        // Priority bump leaves a stale heap entry behind.
        pool.activate(pid(0, 0), 5);
        pool.activate(pid(1, 0), 2);
        let mut bd = Breakdown::default();
        while let Some(c) = pool.try_take(0) {
            pool.finish(c.id, Box::new(Nop), true);
        }
        assert!(pool.is_quiet());
        let mut seen = Vec::new();
        pool.reset_epoch(|id, _| seen.push(id));
        seen.sort_unstable();
        assert_eq!(seen, vec![pid(0, 0), pid(1, 0)]);
        // The pool still schedules correctly after the reset.
        pool.activate(pid(0, 0), 3);
        let again = pool.take(0, &mut bd).unwrap();
        assert_eq!(again.id, pid(0, 0));
        assert!(again.initialized, "resident program lost its instance");
        assert!(again.program.is_some());
    }

    #[test]
    #[should_panic(expected = "non-quiescent")]
    fn reset_epoch_rejects_running_programs() {
        let pool = Pool::new(1);
        pool.activate(pid(0, 0), 0);
        let _claim = pool.try_take(0).unwrap(); // leaves the slot Running
        pool.reset_epoch(|_, _| {});
    }

    #[test]
    fn batching_knobs_are_per_epoch_tunable() {
        let pool = Pool::new(1);
        assert_eq!(pool.flush_streams(), 32);
        assert_eq!(pool.claim_batch(), 8);
        pool.set_batching(Some(64), None);
        assert_eq!(pool.flush_streams(), 64);
        assert_eq!(pool.claim_batch(), 8, "None keeps the old value");
        pool.set_batching(Some(0), Some(0));
        assert_eq!(pool.flush_streams(), 1, "knobs clamp to 1");
        assert_eq!(pool.claim_batch(), 1);
    }

    #[test]
    fn epoch_input_round_trips_through_the_pool() {
        let pool = Pool::new(1);
        assert!(pool.epoch_input().is_none());
        pool.set_epoch_input(Some(std::sync::Arc::new(17u64)));
        let got = pool.epoch_input().expect("input set");
        assert_eq!(*got.downcast_ref::<u64>().unwrap(), 17);
        pool.set_epoch_input(None);
        assert!(pool.epoch_input().is_none());
    }

    #[test]
    fn activity_stamps_are_monotone_and_per_worker() {
        let pool = Pool::new(2);
        assert_eq!(pool.worker_last_activity_nanos(0), 0, "never active");
        assert_eq!(pool.worker_last_activity_nanos(1), 0);
        pool.note_worker_activity(0);
        let first = pool.worker_last_activity_nanos(0);
        assert!(first > 0);
        assert_eq!(pool.worker_last_activity_nanos(1), 0, "other untouched");
        std::thread::sleep(std::time::Duration::from_millis(2));
        pool.note_worker_activity(0);
        assert!(pool.worker_last_activity_nanos(0) > first);
        assert!(pool.now_nanos() >= pool.worker_last_activity_nanos(0));
        // Out-of-range worker ids are ignored, not a panic.
        pool.note_worker_activity(99);
        assert_eq!(pool.worker_last_activity_nanos(99), 0);
    }

    #[test]
    fn shard_mapping_is_stable_and_in_range() {
        let pool = Pool::new(3);
        for p in 0..100u32 {
            let a = pool.shard_of(pid(p, 1));
            let b = pool.shard_of(pid(p, 1));
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }
}
