//! Byte-level stream codec.
//!
//! Streams cross rank boundaries as packed byte buffers; packing and
//! unpacking time is one of the overhead categories the paper profiles
//! (Fig. 16 "pack/unpack"). The format is little-endian, length-prefix
//! free (the reader knows the layout from the stream header it reads
//! first).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Incremental writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Write a length-prefixed slice of `f64`.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Sequential reader over a received payload.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Wrap a payload.
    pub fn new(buf: Bytes) -> Reader {
        Reader { buf }
    }

    pub fn get_u32(&mut self) -> u32 {
        self.buf.get_u32_le()
    }

    pub fn get_u64(&mut self) -> u64 {
        self.buf.get_u64_le()
    }

    pub fn get_i64(&mut self) -> i64 {
        self.buf.get_i64_le()
    }

    pub fn get_f64(&mut self) -> f64 {
        self.buf.get_f64_le()
    }

    /// Read a length-prefixed slice of `f64`.
    pub fn get_f64_vec(&mut self) -> Vec<f64> {
        let n = self.get_u32() as usize;
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// True when fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.put_u32(42);
        w.put_u64(1 << 40);
        w.put_i64(-7);
        w.put_f64(std::f64::consts::PI);
        let mut r = Reader::new(w.finish());
        assert_eq!(r.get_u32(), 42);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_i64(), -7);
        assert_eq!(r.get_f64(), std::f64::consts::PI);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_f64_slice() {
        let mut w = Writer::new();
        w.put_f64_slice(&[1.0, -2.5, 1e300]);
        w.put_f64_slice(&[]);
        let mut r = Reader::new(w.finish());
        assert_eq!(r.get_f64_vec(), vec![1.0, -2.5, 1e300]);
        assert_eq!(r.get_f64_vec(), Vec::<f64>::new());
    }

    #[test]
    fn len_tracks_writes() {
        let mut w = Writer::with_capacity(64);
        assert!(w.is_empty());
        w.put_u32(1);
        assert_eq!(w.len(), 4);
        w.put_f64(0.0);
        assert_eq!(w.len(), 12);
    }

    #[test]
    fn remaining_decreases() {
        let mut w = Writer::new();
        w.put_u32(5);
        w.put_u32(6);
        let mut r = Reader::new(w.finish());
        assert_eq!(r.remaining(), 8);
        r.get_u32();
        assert_eq!(r.remaining(), 4);
    }
}
