//! Offline, API-compatible stand-in for the subset of the
//! [`crossbeam`] crate that jsweep uses: multi-producer,
//! multi-consumer unbounded [`channel`]s with blocking, non-blocking
//! and timed receives, and crossbeam's disconnect semantics (a channel
//! is dead once every `Sender` — or every `Receiver` — is dropped).
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

pub mod channel {
    //! Unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the undeliverable message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.inner.lock().unwrap();
            if g.receivers == 0 {
                return Err(SendError(msg));
            }
            g.queue.push_back(msg);
            drop(g);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.inner.lock().unwrap();
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.shared.inner.lock().unwrap();
            match g.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if g.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; fails once the channel is empty and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = g.queue.pop_front() {
                    return Ok(msg);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.shared.ready.wait(g).unwrap();
            }
        }

        /// Blocking receive with an upper bound on the wait.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = g.queue.pop_front() {
                    return Ok(msg);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self.shared.ready.wait_timeout(g, deadline - now).unwrap();
                g = guard;
                if result.timed_out() && g.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_ordering() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn disconnect_on_all_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(1).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u8>();
            let t0 = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(15));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }
    }
}
