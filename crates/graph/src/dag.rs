//! Generic DAG utilities over CSR adjacency.
//!
//! Used by priority computation (level/height sweeps over `G_{p,t}`),
//! the coarsened-graph acyclicity check, and the cycle breaker.

/// Compressed sparse row adjacency for a directed graph on `0..n`.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// Offsets, length `n + 1`.
    pub off: Vec<u32>,
    /// Concatenated successor lists.
    pub dst: Vec<u32>,
}

impl Csr {
    /// Build from an edge list over `0..n` vertices.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut counts = vec![0u32; n];
        for &(s, _) in edges {
            counts[s as usize] += 1;
        }
        let mut off = vec![0u32; n + 1];
        for v in 0..n {
            off[v + 1] = off[v] + counts[v];
        }
        let mut dst = vec![0u32; edges.len()];
        let mut cursor = off[..n].to_vec();
        for &(s, d) in edges {
            dst[cursor[s as usize] as usize] = d;
            cursor[s as usize] += 1;
        }
        Csr { off, dst }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.off.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.dst.len()
    }

    /// Successors of `v`.
    #[inline]
    pub fn succ(&self, v: u32) -> &[u32] {
        &self.dst[self.off[v as usize] as usize..self.off[v as usize + 1] as usize]
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices()];
        for &d in &self.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Reverse graph.
    pub fn reversed(&self) -> Csr {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges());
        for v in 0..n as u32 {
            for &d in self.succ(v) {
                edges.push((d, v));
            }
        }
        Csr::from_edges(n, &edges)
    }
}

/// Kahn topological sort. Returns the order, or `Err(remaining)` with
/// the set of vertices on or downstream of a cycle.
pub fn topo_sort(g: &Csr) -> Result<Vec<u32>, Vec<u32>> {
    let n = g.num_vertices();
    let mut deg = g.in_degrees();
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] == 0).collect();
    while let Some(v) = stack.pop() {
        order.push(v);
        for &d in g.succ(v) {
            deg[d as usize] -= 1;
            if deg[d as usize] == 0 {
                stack.push(d);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err((0..n as u32).filter(|&v| deg[v as usize] > 0).collect())
    }
}

/// True when the graph has no directed cycle.
pub fn is_acyclic(g: &Csr) -> bool {
    topo_sort(g).is_ok()
}

/// Longest path length (in edges) from any source to each vertex.
/// The graph must be acyclic.
pub fn longest_from_sources(g: &Csr) -> Vec<u32> {
    let order = topo_sort(g).expect("longest_from_sources requires a DAG");
    let mut dist = vec![0u32; g.num_vertices()];
    for &v in &order {
        for &d in g.succ(v) {
            dist[d as usize] = dist[d as usize].max(dist[v as usize] + 1);
        }
    }
    dist
}

/// Longest path length (in edges) from each vertex to any sink — the
/// "height" used by LDCP. The graph must be acyclic.
pub fn height_to_sinks(g: &Csr) -> Vec<u32> {
    let order = topo_sort(g).expect("height_to_sinks requires a DAG");
    let mut h = vec![0u32; g.num_vertices()];
    for &v in order.iter().rev() {
        for &d in g.succ(v) {
            h[v as usize] = h[v as usize].max(h[d as usize] + 1);
        }
    }
    h
}

/// BFS level (shortest distance in edges) from the source set to each
/// vertex; unreachable vertices get `u32::MAX`.
pub fn bfs_levels(g: &Csr, sources: &[u32]) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        if level[s as usize] == u32::MAX {
            level[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &d in g.succ(v) {
            if level[d as usize] == u32::MAX {
                level[d as usize] = level[v as usize] + 1;
                queue.push_back(d);
            }
        }
    }
    level
}

/// Multi-source BFS on the *reverse* graph: shortest downwind distance
/// from each vertex to the target set (vertices from which a target is
/// reachable get finite distance). Unreachable vertices get `u32::MAX`.
pub fn distance_to_targets(g: &Csr, targets: &[u32]) -> Vec<u32> {
    bfs_levels(&g.reversed(), targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
    fn diamond() -> Csr {
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_roundtrip() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.succ(0), &[1, 2]);
        assert_eq!(g.succ(3), &[] as &[u32]);
    }

    #[test]
    fn in_degrees_of_diamond() {
        assert_eq!(diamond().in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn reverse_twice_is_identity_up_to_order() {
        let g = diamond();
        let rr = g.reversed().reversed();
        for v in 0..4u32 {
            let mut a = g.succ(v).to_vec();
            let mut b = rr.succ(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn topo_sort_respects_edges() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for v in 0..4u32 {
            for &d in g.succ(v) {
                assert!(pos[v as usize] < pos[d as usize]);
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!is_acyclic(&g));
        let remaining = topo_sort(&g).unwrap_err();
        assert_eq!(remaining.len(), 3);
    }

    #[test]
    fn partial_cycle_reports_cycle_members_only_downstream() {
        // 0 -> 1 <-> 2 (cycle between 1 and 2), 3 isolated.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 1)]);
        let remaining = topo_sort(&g).unwrap_err();
        assert!(remaining.contains(&1) && remaining.contains(&2));
        assert!(!remaining.contains(&0) && !remaining.contains(&3));
    }

    #[test]
    fn longest_and_height_on_diamond() {
        let g = diamond();
        assert_eq!(longest_from_sources(&g), vec![0, 1, 1, 2]);
        assert_eq!(height_to_sinks(&g), vec![2, 1, 1, 0]);
    }

    #[test]
    fn bfs_levels_from_source() {
        let g = diamond();
        assert_eq!(bfs_levels(&g, &[0]), vec![0, 1, 1, 2]);
    }

    #[test]
    fn distance_to_targets_is_reverse_bfs() {
        let g = diamond();
        assert_eq!(distance_to_targets(&g, &[3]), vec![2, 1, 1, 0]);
        let d = distance_to_targets(&g, &[1]);
        assert_eq!(d[0], 1);
        assert_eq!(d[1], 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert!(topo_sort(&g).unwrap().is_empty());
    }

    #[test]
    fn chain_longest_path() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(longest_from_sources(&g), vec![0, 1, 2, 3, 4]);
        assert_eq!(height_to_sinks(&g), vec![4, 3, 2, 1, 0]);
    }
}
