//! Synthetic tetrahedral mesh generators.
//!
//! The paper evaluates JSNT-U on a tetrahedral **ball** and a **reactor
//! core** mesh (Fig. 11b/c). Production meshes come from CAD +
//! Delaunay pipelines we do not have; instead we voxelise the shape and
//! apply the **Kuhn subdivision** (6 tetrahedra per cube, all sharing the
//! main diagonal), which conforms across neighbouring cubes and yields a
//! genuinely unstructured cell graph: per-direction sweep DAGs have the
//! irregular, zig-zag dependency structure that motivates the
//! patch-centric data-driven approach (see DESIGN.md §2).

use crate::tet::TetMesh;
use std::collections::HashMap;

/// The six Kuhn tetrahedra of the unit cube, as corner bitmasks
/// (bit 0 = x, bit 1 = y, bit 2 = z). Each tet walks from corner 000 to
/// corner 111 adding one axis at a time, one tet per axis permutation.
const KUHN_PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// Generate a tetrahedral mesh covering every voxel `(i, j, k)` in
/// `0..n[0] × 0..n[1] × 0..n[2]` for which `keep` returns true.
///
/// Each kept voxel becomes 6 Kuhn tetrahedra; shared cube faces conform,
/// so the result is a valid conforming mesh. `origin`/`spacing` place the
/// voxel lattice in physical space.
pub fn tets_from_voxels(
    n: [usize; 3],
    origin: [f64; 3],
    spacing: [f64; 3],
    mut keep: impl FnMut(usize, usize, usize) -> bool,
) -> TetMesh {
    let mut vertex_ids: HashMap<(usize, usize, usize), u32> = HashMap::new();
    let mut vertices: Vec<[f64; 3]> = Vec::new();
    let mut tets: Vec<[u32; 4]> = Vec::new();

    let vid = |vertex_ids: &mut HashMap<(usize, usize, usize), u32>,
               vertices: &mut Vec<[f64; 3]>,
               key: (usize, usize, usize)|
     -> u32 {
        *vertex_ids.entry(key).or_insert_with(|| {
            let id = vertices.len() as u32;
            vertices.push([
                origin[0] + key.0 as f64 * spacing[0],
                origin[1] + key.1 as f64 * spacing[1],
                origin[2] + key.2 as f64 * spacing[2],
            ]);
            id
        })
    };

    for k in 0..n[2] {
        for j in 0..n[1] {
            for i in 0..n[0] {
                if !keep(i, j, k) {
                    continue;
                }
                // Corner lattice coordinates for bitmask 0..8.
                let corner =
                    |mask: usize| (i + (mask & 1), j + ((mask >> 1) & 1), k + ((mask >> 2) & 1));
                for perm in KUHN_PERMS {
                    let mut mask = 0usize;
                    let mut tet = [0u32; 4];
                    tet[0] = vid(&mut vertex_ids, &mut vertices, corner(0));
                    for (step, &axis) in perm.iter().enumerate() {
                        mask |= 1 << axis;
                        tet[step + 1] = vid(&mut vertex_ids, &mut vertices, corner(mask));
                    }
                    tets.push(tet);
                }
            }
        }
    }
    assert!(!tets.is_empty(), "generator produced an empty mesh");
    TetMesh::new(vertices, tets)
}

/// Tetrahedral mesh of an axis-aligned cube of `n³` voxels (6n³ tets).
pub fn cube(n: usize, edge: f64) -> TetMesh {
    let h = edge / n as f64;
    tets_from_voxels([n, n, n], [0.0; 3], [h; 3], |_, _, _| true)
}

/// Tetrahedral mesh of a ball of radius `radius`, voxelised at
/// `2*half_cells` voxels per diameter (Fig. 11c "Ball" stand-in).
///
/// A voxel is kept when its centre lies inside the sphere.
pub fn ball(half_cells: usize, radius: f64) -> TetMesh {
    let n = 2 * half_cells;
    let h = 2.0 * radius / n as f64;
    let centre = radius;
    tets_from_voxels([n, n, n], [0.0; 3], [h; 3], |i, j, k| {
        let d2 = [(i, 0), (j, 1), (k, 2)]
            .iter()
            .map(|&(c, _)| {
                let x = (c as f64 + 0.5) * h - centre;
                x * x
            })
            .sum::<f64>();
        d2 < radius * radius
    })
}

/// Tetrahedral mesh of a "reactor core"-like shape (Fig. 11b stand-in):
/// a cylinder of radius `radius` and height `height`, with `holes`
/// evenly spaced cylindrical channels of radius `radius/8` removed
/// (control-rod guide tubes). The holes make the boundary — and hence
/// the sweep DAGs — substantially more irregular than a plain cylinder.
pub fn reactor(cells_across: usize, radius: f64, height: f64, holes: usize) -> TetMesh {
    let n_xy = cells_across;
    let h_xy = 2.0 * radius / n_xy as f64;
    let n_z = ((height / h_xy).round() as usize).max(1);
    let h_z = height / n_z as f64;
    let centre = radius;
    let hole_r = radius / 8.0;
    let ring_r = radius / 2.0;
    let hole_centres: Vec<[f64; 2]> = (0..holes)
        .map(|a| {
            let phi = a as f64 / holes.max(1) as f64 * std::f64::consts::TAU;
            [centre + ring_r * phi.cos(), centre + ring_r * phi.sin()]
        })
        .collect();
    tets_from_voxels(
        [n_xy, n_xy, n_z],
        [0.0; 3],
        [h_xy, h_xy, h_z],
        |i, j, _k| {
            let x = (i as f64 + 0.5) * h_xy;
            let y = (j as f64 + 0.5) * h_xy;
            let r2 = (x - centre).powi(2) + (y - centre).powi(2);
            if r2 >= radius * radius {
                return false;
            }
            for hc in &hole_centres {
                if (x - hc[0]).powi(2) + (y - hc[1]).powi(2) < hole_r * hole_r {
                    return false;
                }
            }
            true
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_face_closure_residual, validate_topology, SweepTopology};

    #[test]
    fn cube_has_6n3_tets_and_conforms() {
        let m = cube(3, 1.0);
        assert_eq!(m.num_cells(), 6 * 27);
        validate_topology(&m).unwrap();
        assert!(max_face_closure_residual(&m) < 1e-12);
    }

    #[test]
    fn cube_volume_is_exact() {
        let m = cube(4, 2.0);
        assert!((m.total_volume() - 8.0).abs() < 1e-10);
    }

    #[test]
    fn cube_boundary_faces_count() {
        // A cube surface of n² voxel faces per side, each split into 2
        // triangles by the Kuhn subdivision: 6 sides * n² * 2.
        let n = 3;
        let m = cube(n, 1.0);
        assert_eq!(m.num_boundary_faces(), 6 * n * n * 2);
    }

    #[test]
    fn ball_is_roughly_spherical() {
        let m = ball(6, 1.0);
        validate_topology(&m).unwrap();
        let v = m.total_volume();
        let exact = 4.0 / 3.0 * std::f64::consts::PI;
        // Voxelised ball volume converges slowly; accept 15%.
        assert!(
            (v - exact).abs() / exact < 0.15,
            "ball volume {v} vs {exact}"
        );
    }

    #[test]
    fn ball_fits_in_bounding_cube() {
        let m = ball(5, 2.0);
        let (lo, hi) = m.bounding_box();
        for ax in 0..3 {
            assert!(lo[ax] >= -1e-12);
            assert!(hi[ax] <= 4.0 + 1e-12);
        }
    }

    #[test]
    fn reactor_has_holes() {
        let solid = reactor(16, 1.0, 1.0, 0);
        let holed = reactor(16, 1.0, 1.0, 4);
        assert!(holed.num_cells() < solid.num_cells());
        validate_topology(&holed).unwrap();
    }

    #[test]
    fn interior_cells_are_connected_across_voxels() {
        // In a 2x1x1 cube strip, some tets of voxel 0 must neighbour
        // tets of voxel 1 (the Kuhn subdivision conforms).
        let m = tets_from_voxels([2, 1, 1], [0.0; 3], [1.0; 3], |_, _, _| true);
        assert_eq!(m.num_cells(), 12);
        let cross = (0..6)
            .flat_map(|c| m.neighbors(c))
            .filter(|&nb| nb >= 6)
            .count();
        assert!(cross > 0, "no conforming faces across the voxel boundary");
        validate_topology(&m).unwrap();
    }

    #[test]
    #[should_panic(expected = "empty mesh")]
    fn empty_region_rejected() {
        tets_from_voxels([2, 2, 2], [0.0; 3], [1.0; 3], |_, _, _| false);
    }
}
