//! `SweepPatchProgram` — paper Listing 1, with real physics attached.
//!
//! A program is one `(patch, angle)` sweep task. Its local context is
//! the scheduling state ([`jsweep_graph::SweepState`]: counters + ready
//! priority queue) plus the physics state: incoming face-flux storage
//! for every local cell and the per-angle scalar-flux contribution.
//!
//! Stream payload format (see `jsweep_comm::pack`):
//! `u32 item_count`, then per item `u32 dst_cell`, `u32 src_cell`,
//! `groups × f64` face flux values.

use crate::kernel::{solve_cell, KernelKind};
use crate::xs::MaterialSet;
use bytes::Bytes;
use jsweep_comm::pack::{Reader, Writer};
use jsweep_core::{ComputeCtx, PatchProgram, ProgramFactory, ProgramId, Stream, TaskTag};
use jsweep_graph::{SweepProblem, SweepState};
use jsweep_mesh::{Neighbor, PatchId, SweepTopology};
use jsweep_quadrature::QuadratureSet;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-patch collection bin for scalar-flux contributions.
///
/// Each `(patch, angle)` program deposits `w_a · ψ̄` for its local
/// cells; the solver folds the bins in angle order after the sweep so
/// the floating-point result is independent of scheduling order.
pub type FluxBins = Vec<Mutex<Vec<(u32, Vec<f64>)>>>;

/// Everything the sweep programs of one source iteration share.
pub struct SweepSetup<T: SweepTopology + Send + Sync + 'static> {
    /// The mesh.
    pub mesh: Arc<T>,
    /// Compiled subgraphs + priorities.
    pub problem: Arc<SweepProblem>,
    /// Quadrature set (directions + weights).
    pub quadrature: QuadratureSet,
    /// Materials.
    pub materials: Arc<MaterialSet>,
    /// Emission density `(σ_s φ + Q)/4π` per `cell * groups + g`.
    pub emission: Arc<Vec<f64>>,
    /// Cell kernel.
    pub kernel: KernelKind,
    /// Vertex clustering grain `N`.
    pub grain: usize,
    /// Scalar-flux bins, indexed by patch.
    pub flux_bins: Arc<FluxBins>,
}

/// The factory handed to the JSweep runtime: one program per
/// `(patch, angle)`.
pub struct SweepFactory<T: SweepTopology + Send + Sync + 'static> {
    setup: SweepSetup<T>,
}

impl<T: SweepTopology + Send + Sync + 'static> SweepFactory<T> {
    /// Wrap a setup.
    pub fn new(setup: SweepSetup<T>) -> SweepFactory<T> {
        assert!(setup.grain > 0);
        assert_eq!(setup.materials.num_cells(), setup.mesh.num_cells());
        SweepFactory { setup }
    }

    fn max_faces(&self) -> usize {
        // Homogeneous element types in this reproduction: probe cell 0.
        self.setup.mesh.num_faces(0)
    }
}

/// The patch-program of one `(patch, angle)` sweep task.
pub struct SweepProgram<T: SweepTopology + Send + Sync + 'static> {
    id: ProgramId,
    setup_mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    materials: Arc<MaterialSet>,
    emission: Arc<Vec<f64>>,
    flux_bins: Arc<FluxBins>,
    kernel: KernelKind,
    grain: usize,
    groups: usize,
    weight: f64,
    dir: [f64; 3],
    max_faces: usize,
    /// Scheduling state (counters + ready queue).
    state: SweepState,
    /// Incoming face flux per `local_cell * max_faces * groups`.
    face_flux: Vec<f64>,
    /// Scalar-flux accumulation per `local_cell * groups` (w_a · ψ̄).
    phi_part: Vec<f64>,
    /// Scratch buffers.
    in_buf: Vec<f64>,
    out_buf: Vec<f64>,
    psi_buf: Vec<f64>,
}

impl<T: SweepTopology + Send + Sync + 'static> PatchProgram for SweepProgram<T> {
    fn init(&mut self) {
        // State is built in `create`; nothing further. Boundary faces
        // already hold the vacuum condition (zeros).
    }

    fn input(&mut self, _src: ProgramId, payload: Bytes) {
        let mut r = Reader::new(payload);
        let n = r.get_u32();
        for _ in 0..n {
            let dst_cell = r.get_u32() as usize;
            let src_cell = r.get_u32() as usize;
            let li = self.problem.patches.local_index(dst_cell);
            // Which face of dst_cell touches src_cell?
            let mut face = usize::MAX;
            for f in 0..self.setup_mesh.num_faces(dst_cell) {
                if self.setup_mesh.face(dst_cell, f).neighbor == Neighbor::Interior(src_cell) {
                    face = f;
                    break;
                }
            }
            assert!(face != usize::MAX, "stream item with non-adjacent cells");
            for g in 0..self.groups {
                self.face_flux[(li * self.max_faces + face) * self.groups + g] = r.get_f64();
            }
            self.state.receive(li as u32);
        }
    }

    fn compute(&mut self, ctx: &mut ComputeCtx) {
        let (p, a) = (self.id.patch.index(), self.id.task.0 as usize);
        let subs_arc = self.problem.subs[a].clone();
        let sub = &subs_arc[p];
        let mesh = self.setup_mesh.clone();
        let materials = self.materials.clone();
        let emission = self.emission.clone();
        let problem = self.problem.clone();
        let patches = &problem.patches;
        let broken = problem.broken[a].clone();
        // DAG bookkeeping: pop a cluster of ready vertices.
        let cluster = self.state.pop_cluster(sub, self.grain, |_, _| {});
        if cluster.is_empty() {
            return;
        }
        ctx.work_done = cluster.len() as u64;

        // Numerical kernel + stream assembly.
        let mut writers: HashMap<PatchId, Writer> = HashMap::new();
        let mut counts: HashMap<PatchId, u32> = HashMap::new();
        let groups = self.groups;
        let mf = self.max_faces;
        ctx.kernel(|| {
            for &v in &cluster {
                let cell = sub.cells[v as usize] as usize;
                let mat = materials.material(cell);
                self.in_buf.clear();
                self.in_buf.extend_from_slice(
                    &self.face_flux[(v as usize * mf) * groups..(v as usize * mf + mf) * groups],
                );
                self.out_buf.resize(mf * groups, 0.0);
                self.psi_buf.resize(groups, 0.0);
                let in_buf = std::mem::take(&mut self.in_buf);
                let mut out_buf = std::mem::take(&mut self.out_buf);
                let mut psi_buf = std::mem::take(&mut self.psi_buf);
                solve_cell(
                    mesh.as_ref(),
                    cell,
                    self.dir,
                    self.kernel,
                    &mat.sigma_t,
                    &emission[cell * groups..(cell + 1) * groups],
                    &in_buf,
                    &mut out_buf,
                    &mut psi_buf,
                );
                self.in_buf = in_buf;
                self.out_buf = out_buf;
                self.psi_buf = psi_buf;
                // Accumulate the angular-weighted cell flux.
                for g in 0..groups {
                    self.phi_part[v as usize * groups + g] += self.weight * self.psi_buf[g];
                }
                // Distribute outgoing face fluxes.
                for f in 0..mesh.num_faces(cell) {
                    let face = mesh.face(cell, f);
                    if face.flow(self.dir) <= 0.0 {
                        continue;
                    }
                    let Some(nb) = face.neighbor.cell() else {
                        continue;
                    };
                    if !broken.is_empty() && broken.contains(&(cell as u32, nb as u32)) {
                        // Cycle-broken edge: the consumer treats this
                        // face as vacuum; do not write or stream it.
                        continue;
                    }
                    let nb_patch = patches.patch_of(nb);
                    if nb_patch == self.id.patch {
                        // Local downwind neighbour: write straight into
                        // its incoming face slot.
                        let nli = patches.local_index(nb);
                        let mut nface = usize::MAX;
                        for f2 in 0..mesh.num_faces(nb) {
                            if mesh.face(nb, f2).neighbor == Neighbor::Interior(cell) {
                                nface = f2;
                                break;
                            }
                        }
                        for g in 0..groups {
                            self.face_flux[(nli * mf + nface) * groups + g] =
                                self.out_buf[f * groups + g];
                        }
                    } else {
                        // Remote: append to the per-patch stream.
                        let w = writers.entry(nb_patch).or_insert_with(|| {
                            let mut w = Writer::with_capacity(64);
                            w.put_u32(0); // patched below
                            w
                        });
                        w.put_u32(nb as u32);
                        w.put_u32(cell as u32);
                        for g in 0..groups {
                            w.put_f64(self.out_buf[f * groups + g]);
                        }
                        *counts.entry(nb_patch).or_default() += 1;
                    }
                }
            }
        });

        // Emit one stream per target patch (clustering aggregates
        // messages, §V-C benefit 2).
        let mut targets: Vec<(PatchId, Writer)> = writers.into_iter().collect();
        targets.sort_by_key(|(p, _)| *p);
        for (patch, w) in targets {
            let mut bytes = w.finish().to_vec();
            bytes[..4].copy_from_slice(&counts[&patch].to_le_bytes());
            ctx.send(Stream {
                src: self.id,
                dst: ProgramId::new(patch, self.id.task),
                payload: Bytes::from(bytes),
            });
        }

        // On completion, deposit the scalar-flux contribution.
        if self.state.is_complete() {
            let mut part = Vec::new();
            std::mem::swap(&mut part, &mut self.phi_part);
            let mut bin = self.flux_bins[self.id.patch.index()].lock();
            bin.push((self.id.task.0, part));
        }
    }

    fn vote_to_halt(&self) -> bool {
        !self.state.has_ready()
    }

    fn remaining_work(&self) -> u64 {
        self.state.remaining()
    }
}

impl<T: SweepTopology + Send + Sync + 'static> ProgramFactory for SweepFactory<T> {
    type Program = SweepProgram<T>;

    fn create(&self, id: ProgramId) -> SweepProgram<T> {
        let s = &self.setup;
        let (p, a) = (id.patch.index(), id.task.0 as usize);
        let sub = &s.problem.subs[a][p];
        let prio = s.problem.vprio[a][p].clone();
        let state = SweepState::new(sub, prio);
        let groups = s.materials.num_groups();
        let mf = self.max_faces();
        let n = sub.num_vertices();
        SweepProgram {
            id,
            setup_mesh: s.mesh.clone(),
            problem: s.problem.clone(),
            materials: s.materials.clone(),
            emission: s.emission.clone(),
            flux_bins: s.flux_bins.clone(),
            kernel: s.kernel,
            grain: s.grain,
            groups,
            weight: s
                .quadrature
                .ordinate(jsweep_quadrature::AngleId(id.task.0))
                .weight,
            dir: s
                .quadrature
                .direction(jsweep_quadrature::AngleId(id.task.0)),
            max_faces: mf,
            state,
            face_flux: vec![0.0; n * mf * groups],
            phi_part: vec![0.0; n * groups],
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            psi_buf: Vec::new(),
        }
    }

    fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
        let s = &self.setup;
        let mut ids = Vec::new();
        for p in s.problem.patches.patches_on_rank(rank) {
            for a in 0..s.problem.num_angles {
                ids.push(ProgramId::new(p, TaskTag(a as u32)));
            }
        }
        ids
    }

    fn rank_of(&self, id: ProgramId) -> usize {
        self.setup.problem.patches.rank_of(id.patch)
    }

    fn priority(&self, id: ProgramId) -> i64 {
        self.setup.problem.pprio[id.task.0 as usize][id.patch.index()]
    }

    fn initial_workload(&self, id: ProgramId) -> u64 {
        let (p, a) = (id.patch.index(), id.task.0 as usize);
        self.setup.problem.subs[a][p].num_vertices() as u64
    }
}
