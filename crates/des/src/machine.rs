//! The virtual machine model: what one rank, worker, master and link
//! cost in seconds.

/// Cost model of the simulated cluster.
///
/// Defaults are calibrated to the paper's platform class (Tianhe-II:
/// 12-core Xeon E5-2692v2 per MPI process, TH-Express-II interconnect)
/// and to the granularity of Sn sweep kernels: a diamond-difference
/// cell-angle update is a few hundred FLOPs (~0.2 µs), an MPI fine-grain
/// message costs a couple of microseconds of latency, and the master
/// thread spends a fraction of a microsecond routing each stream.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Number of MPI ranks (processes).
    pub ranks: usize,
    /// Worker threads per rank; the master gets its own reserved core,
    /// so one rank occupies `workers_per_rank + 1` cores.
    pub workers_per_rank: usize,
    /// Seconds of kernel work per (cell, angle) vertex.
    pub t_vertex: f64,
    /// Seconds of DAG bookkeeping per vertex (counter updates).
    pub t_graph: f64,
    /// Fixed scheduling overhead per compute call (queue pop, program
    /// switch).
    pub t_sched: f64,
    /// Master overhead per stream handled (route-table lookup,
    /// activation).
    pub t_route: f64,
    /// Master pack/unpack cost per byte.
    pub t_pack_per_byte: f64,
    /// Network latency per message (seconds).
    pub latency: f64,
    /// Network bandwidth (bytes/second).
    pub bandwidth: f64,
    /// Payload bytes per stream item (one face datum; 8 bytes per group
    /// value plus addressing).
    pub bytes_per_item: f64,
    /// Fixed header bytes per stream message.
    pub header_bytes: f64,
}

impl MachineModel {
    /// Tianhe-II-class defaults for the given process/thread layout.
    pub fn cluster(ranks: usize, workers_per_rank: usize) -> MachineModel {
        assert!(ranks > 0 && workers_per_rank > 0);
        MachineModel {
            ranks,
            workers_per_rank,
            t_vertex: 2.0e-7,
            t_graph: 2.0e-8,
            t_sched: 1.0e-6,
            t_route: 3.0e-7,
            t_pack_per_byte: 2.0e-10,
            latency: 2.0e-6,
            bandwidth: 5.0e9,
            bytes_per_item: 16.0,
            header_bytes: 64.0,
        }
    }

    /// Layout matching the paper's deployment on `cores` cores: one MPI
    /// process per 12-core processor, one core reserved for the master,
    /// 11 workers.
    pub fn tianhe2(cores: usize) -> MachineModel {
        assert!(
            cores >= 12 && cores.is_multiple_of(12),
            "Tianhe-II allocates whole 12-core processors"
        );
        MachineModel::cluster(cores / 12, 11)
    }

    /// Total cores this model occupies.
    pub fn cores(&self) -> usize {
        self.ranks * (self.workers_per_rank + 1)
    }

    /// Bytes of a stream message with `items` face data items.
    pub fn message_bytes(&self, items: usize) -> f64 {
        self.header_bytes + items as f64 * self.bytes_per_item
    }

    /// Scale the kernel cost (e.g. to emulate more expensive multigroup
    /// kernels or a proportionally larger mesh).
    pub fn with_vertex_cost(mut self, t_vertex: f64) -> MachineModel {
        self.t_vertex = t_vertex;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_counts_master() {
        let m = MachineModel::cluster(4, 11);
        assert_eq!(m.cores(), 48);
    }

    #[test]
    fn tianhe_layout() {
        let m = MachineModel::tianhe2(768);
        assert_eq!(m.ranks, 64);
        assert_eq!(m.workers_per_rank, 11);
        assert_eq!(m.cores(), 768);
    }

    #[test]
    #[should_panic(expected = "12-core")]
    fn tianhe_rejects_partial_processors() {
        MachineModel::tianhe2(100);
    }

    #[test]
    fn message_bytes_scale_with_items() {
        let m = MachineModel::cluster(1, 1);
        assert_eq!(m.message_bytes(0), m.header_bytes);
        assert!(m.message_bytes(10) > m.message_bytes(1));
    }
}
