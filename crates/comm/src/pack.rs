//! Byte-level stream codec.
//!
//! Streams cross rank boundaries as packed byte buffers; packing and
//! unpacking time is one of the overhead categories the paper profiles
//! (Fig. 16 "pack/unpack"). The format is little-endian, length-prefix
//! free (the reader knows the layout from the stream header it reads
//! first).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Incremental writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Append a little-endian `f64` (bit-exact, NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Append raw bytes verbatim (e.g. an already-encoded payload).
    pub fn put_bytes(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Write a length-prefixed slice of `f64`.
    ///
    /// Values are staged into a stack block and appended in byte
    /// chunks, so the cost is one bounds check and one memcpy per
    /// block instead of per element (the pack half of the Fig. 16
    /// "pack/unpack" overhead).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        const BLOCK: usize = 64;
        self.put_u32(vs.len() as u32);
        let mut staged = [0u8; BLOCK * 8];
        for block in vs.chunks(BLOCK) {
            for (i, &v) in block.iter().enumerate() {
                staged[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
            }
            self.buf.extend_from_slice(&staged[..block.len() * 8]);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Freeze everything written so far and reset the writer to empty,
    /// keeping it usable for the next message. This is what lets one
    /// long-lived writer per destination serve every outbound frame
    /// instead of allocating a fresh buffer per stream.
    pub fn take(&mut self) -> Bytes {
        std::mem::take(&mut self.buf).freeze()
    }
}

/// Sequential reader over a received payload.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Wrap a payload.
    pub fn new(buf: Bytes) -> Reader {
        Reader { buf }
    }

    /// Read the next little-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        self.buf.get_u32_le()
    }

    /// Read the next little-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        self.buf.get_u64_le()
    }

    /// Read the next little-endian `i64`.
    pub fn get_i64(&mut self) -> i64 {
        self.buf.get_i64_le()
    }

    /// Read the next little-endian `f64` (bit-exact).
    pub fn get_f64(&mut self) -> f64 {
        self.buf.get_f64_le()
    }

    /// Read a length-prefixed slice of `f64`.
    ///
    /// Decodes straight out of the underlying buffer in one pass
    /// (single bounds check + one cursor advance) rather than one
    /// `get_f64` call per element.
    pub fn get_f64_vec(&mut self) -> Vec<f64> {
        let n = self.get_u32() as usize;
        let raw = &self.buf.chunk()[..n * 8];
        let out = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        self.buf.advance(n * 8);
        out
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// True when fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.put_u32(42);
        w.put_u64(1 << 40);
        w.put_i64(-7);
        w.put_f64(std::f64::consts::PI);
        let mut r = Reader::new(w.finish());
        assert_eq!(r.get_u32(), 42);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_i64(), -7);
        assert_eq!(r.get_f64(), std::f64::consts::PI);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_f64_slice() {
        let mut w = Writer::new();
        w.put_f64_slice(&[1.0, -2.5, 1e300]);
        w.put_f64_slice(&[]);
        let mut r = Reader::new(w.finish());
        assert_eq!(r.get_f64_vec(), vec![1.0, -2.5, 1e300]);
        assert_eq!(r.get_f64_vec(), Vec::<f64>::new());
    }

    #[test]
    fn len_tracks_writes() {
        let mut w = Writer::with_capacity(64);
        assert!(w.is_empty());
        w.put_u32(1);
        assert_eq!(w.len(), 4);
        w.put_f64(0.0);
        assert_eq!(w.len(), 12);
    }

    #[test]
    fn take_resets_writer_for_reuse() {
        let mut w = Writer::new();
        w.put_u32(1);
        let first = w.take();
        assert_eq!(first.len(), 4);
        assert!(w.is_empty(), "take must leave the writer empty");
        w.put_u32(2);
        w.put_bytes(b"xy");
        let second = w.take();
        let mut r = Reader::new(second);
        assert_eq!(r.get_u32(), 2);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn put_f64_slice_crosses_block_boundaries() {
        // 64 values per staged block: check lengths around the seam.
        for n in [0usize, 1, 63, 64, 65, 200] {
            let vs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 3.0).collect();
            let mut w = Writer::new();
            w.put_f64_slice(&vs);
            assert_eq!(w.len(), 4 + 8 * n);
            let mut r = Reader::new(w.finish());
            assert_eq!(r.get_f64_vec(), vs);
            assert!(r.is_exhausted());
        }
    }

    mod properties {
        use super::super::{Reader, Writer};
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn f64_slice_roundtrips_bit_exact(
                vs in prop::collection::vec(any::<f64>(), 0..300),
            ) {
                let mut w = Writer::new();
                w.put_f64_slice(&vs);
                let mut r = Reader::new(w.finish());
                let back = r.get_f64_vec();
                prop_assert!(r.is_exhausted());
                prop_assert_eq!(back.len(), vs.len());
                // Bit-exact (NaN payloads included), not value-equal.
                for (a, b) in back.iter().zip(&vs) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn remaining_decreases() {
        let mut w = Writer::new();
        w.put_u32(5);
        w.put_u32(6);
        let mut r = Reader::new(w.finish());
        assert_eq!(r.remaining(), 8);
        r.get_u32();
        assert_eq!(r.remaining(), 4);
    }
}
