//! Octants of the unit sphere.
//!
//! Sweep directions are grouped by octant: all directions in one octant
//! induce the *same* dependency DAG on an axis-aligned structured mesh,
//! which the KBA baseline and several priority heuristics exploit.

/// One of the eight octants of direction space, encoded by the signs of
/// the three direction cosines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Octant(u8);

impl Octant {
    /// All eight octants, in index order.
    pub const ALL: [Octant; 8] = [
        Octant(0),
        Octant(1),
        Octant(2),
        Octant(3),
        Octant(4),
        Octant(5),
        Octant(6),
        Octant(7),
    ];

    /// Octant from a raw index in `0..8`.
    ///
    /// Bit `b` of the index is set when the direction component along
    /// axis `b` is negative.
    pub fn from_index(i: usize) -> Octant {
        assert!(i < 8, "octant index {i} out of range");
        Octant(i as u8)
    }

    /// Octant containing the direction `d`.
    ///
    /// Zero components are treated as positive; quadrature sets never
    /// place ordinates exactly on an axis plane.
    pub fn of(d: [f64; 3]) -> Octant {
        let mut bits = 0u8;
        for (axis, &c) in d.iter().enumerate() {
            if c < 0.0 {
                bits |= 1 << axis;
            }
        }
        Octant(bits)
    }

    /// Raw index in `0..8`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Sign of each direction component in this octant (`+1.0` or `-1.0`).
    pub fn signs(self) -> [f64; 3] {
        let mut s = [1.0; 3];
        for (axis, v) in s.iter_mut().enumerate() {
            if self.0 & (1 << axis) != 0 {
                *v = -1.0;
            }
        }
        s
    }

    /// Reflect a first-octant direction into this octant.
    pub fn apply(self, d: [f64; 3]) -> [f64; 3] {
        let s = self.signs();
        [d[0] * s[0], d[1] * s[1], d[2] * s[2]]
    }

    /// The octant pointing exactly opposite to this one.
    pub fn opposite(self) -> Octant {
        Octant(self.0 ^ 0b111)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_and_signs_agree() {
        for oct in Octant::ALL {
            let d = oct.apply([0.3, 0.5, 0.8]);
            assert_eq!(Octant::of(d), oct);
            let s = oct.signs();
            for axis in 0..3 {
                assert_eq!(d[axis].signum(), s[axis]);
            }
        }
    }

    #[test]
    fn opposite_flips_all_signs() {
        for oct in Octant::ALL {
            let a = oct.signs();
            let b = oct.opposite().signs();
            for axis in 0..3 {
                assert_eq!(a[axis], -b[axis]);
            }
        }
    }

    #[test]
    fn all_octants_distinct() {
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert_ne!(Octant::from_index(i), Octant::from_index(j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_large() {
        Octant::from_index(8);
    }
}
