//! JSNT-U-style multigroup transport on an unstructured reactor mesh.
//!
//! ```text
//! cargo run --release --example reactor_unstructured [cells_across] [ranks]
//! ```
//!
//! Generates the reactor-core tetrahedral mesh (cylinder with guide-
//! tube holes, Fig. 11b stand-in), BFS-partitions it into ~500-cell
//! patches (the paper's JSNT-U default), and runs a 4-group S4 solve
//! on the JSweep runtime. Prints decomposition quality and the flux in
//! each radial ring.

use jsweep::mesh::stats::partition_stats;
use jsweep::mesh::tetgen;
use jsweep::prelude::*;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let across: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(14);
    let ranks: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(2);

    let mesh = Arc::new(tetgen::reactor(across, 1.0, 1.0, 4));
    println!(
        "reactor mesh: {} tetrahedra, {} boundary faces",
        mesh.num_cells(),
        mesh.num_boundary_faces()
    );

    let patches = decompose_unstructured(mesh.as_ref(), 500, ranks);
    let stats = partition_stats(&patches, mesh.as_ref());
    println!(
        "decomposition: {} patches (min {} / mean {:.0} / max {} cells), \
         rank imbalance {:.3}, rank edge-cut {}",
        stats.num_patches,
        stats.patch_cells_min,
        stats.patch_cells_mean,
        stats.patch_cells_max,
        stats.rank_imbalance,
        stats.rank_edge_cut
    );

    // 4-group data: a fast group with low absorption down to a slow,
    // more absorbing group; uniform fission-like source in group 0.
    let groups = 4;
    let material = Material {
        sigma_t: vec![0.5, 0.8, 1.2, 2.0],
        sigma_s: vec![0.3, 0.5, 0.7, 1.0],
        source: vec![1.0, 0.0, 0.0, 0.0],
    };
    let materials = Arc::new(MaterialSet::homogeneous(mesh.num_cells(), material));
    let quad = QuadratureSet::sn(4);
    let problem = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            vertex_strategy: PriorityStrategy::Slbd,
            patch_strategy: PriorityStrategy::Slbd,
            ..Default::default()
        },
    ));
    let config = SnConfig {
        max_iterations: 25,
        tolerance: 1e-7,
        grain: 64,
        workers_per_rank: 2,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let solution = solve_parallel(mesh.clone(), problem, &quad, materials, &config);
    println!(
        "solved in {} iterations, {:.2}s host time, residual {:.2e}",
        solution.iterations,
        t0.elapsed().as_secs_f64(),
        solution.residual
    );

    // Radial flux profile, volume-averaged per ring, group by group.
    let rings = 6;
    let centre = 1.0; // cylinder axis at (radius, radius)
    let mut ring_flux = vec![vec![0.0f64; groups]; rings];
    let mut ring_vol = vec![0.0f64; rings];
    for c in 0..mesh.num_cells() {
        let p = mesh.cell_centroid(c);
        let r = ((p[0] - centre).powi(2) + (p[1] - centre).powi(2)).sqrt();
        let ring = ((r / 1.0) * rings as f64) as usize;
        let ring = ring.min(rings - 1);
        let v = mesh.cell_volume(c);
        ring_vol[ring] += v;
        for (g, rf) in ring_flux[ring].iter_mut().enumerate() {
            *rf += solution.phi[c * groups + g] * v;
        }
    }
    println!("\nradially averaged flux per energy group:");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "ring", "g0", "g1", "g2", "g3"
    );
    for ring in 0..rings {
        if ring_vol[ring] == 0.0 {
            continue;
        }
        print!("{:>10}", format!("r{}", ring));
        for flux in &ring_flux[ring] {
            print!("  {:>10.4}", flux / ring_vol[ring]);
        }
        println!();
    }
}
