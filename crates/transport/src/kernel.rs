//! Per-(cell, angle) transport kernels.
//!
//! Both kernels solve the within-cell balance equation for the angular
//! flux given incoming face fluxes, then express outgoing face fluxes:
//!
//! * [`KernelKind::Step`] (upwind/step characteristic): first-order,
//!   positive, works on any polyhedral cell — the JSNT-U choice for
//!   tetrahedra;
//! * [`KernelKind::DiamondDifference`] — the classic second-order
//!   structured-mesh scheme (TORT/JSNT-S family) with a set-to-zero
//!   negative-flux fixup. Requires the structured face pairing
//!   (`face ^ 1` is the opposite face).
//!
//! Two code paths produce bit-identical results:
//!
//! * [`solve_cell`] — the scalar reference: groups outermost, face
//!   geometry fetched per group. Retained as the fallback and as the
//!   oracle every blocked result is differentially tested against.
//! * [`solve_cell_block`] / [`solve_cell_block_geom`] — the hot path:
//!   per-(cell, angle) geometry is hoisted once into a [`CellGeom`]
//!   and the innermost loops run over [`GROUP_BLOCK`]-wide contiguous
//!   group blocks of plain-indexed `f64` slices, which autovectorize.
//!   Group counts that are not a multiple of the block width fall back
//!   to a width-1 scalar tail (the same monomorphized routine at
//!   `B = 1`). Both paths execute the same floating-point operations
//!   in the same order, so they agree to [`KERNEL_MAX_ULPS`] — which
//!   is zero: bit-identical.

use jsweep_mesh::SweepTopology;

/// Width of the contiguous group blocks the blocked kernel iterates
/// over. Eight `f64`s span one 64-byte cache line and map onto one
/// AVX-512 register or two AVX2 registers; the block loops are plain
/// counted loops over stack arrays of this width, which LLVM
/// autovectorizes without any `std::simd` dependency.
pub const GROUP_BLOCK: usize = 8;

/// Maximum number of faces per cell the hoisted [`CellGeom`] supports
/// (hexahedra; tetrahedra use 4 of the 6 slots).
pub const KERNEL_MAX_FACES: usize = 6;

/// Maximum per-element ULP distance between [`solve_cell`] and
/// [`solve_cell_block`] results, asserted by the differential tests
/// (`tests/properties.rs`) and the kernel bench. The blocked path
/// performs the identical operation sequence per group — hoisting only
/// values that are themselves deterministic functions of the inputs —
/// so the bound is zero: any widening of this constant must come with
/// a measured justification.
pub const KERNEL_MAX_ULPS: u64 = 0;

/// Distance in units-in-the-last-place between two finite `f64`s.
/// Returns 0 for bitwise-equal values (and for `+0.0` vs `-0.0`),
/// `u64::MAX` when the values differ in sign or either is NaN.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() || a.is_sign_positive() != b.is_sign_positive() {
        return u64::MAX;
    }
    let mag = |x: f64| x.to_bits() & !(1u64 << 63);
    mag(a).abs_diff(mag(b))
}

/// Per-(cell, angle) geometry hoisted out of the group loop: face
/// flows `A Ω·n`, the cell volume, and (for hexahedra) the
/// diamond-difference upwind pairing — everything [`solve_cell`]
/// re-derives from [`SweepTopology::face`] per *group*, computed once
/// per *cell*.
#[derive(Debug, Clone, Copy)]
pub struct CellGeom {
    /// Cell volume.
    pub volume: f64,
    /// Number of faces (≤ [`KERNEL_MAX_FACES`]).
    pub nf: usize,
    /// Signed face flow `A Ω·n` per face; slots beyond `nf` are zero.
    pub flow: [f64; KERNEL_MAX_FACES],
    /// Diamond-difference upwind face per axis (hex cells only).
    dd_up: [usize; 3],
    /// Diamond-difference coupling coefficient per axis (hex only).
    dd_coef: [f64; 3],
}

impl CellGeom {
    /// Hoist the geometry of `cell` for direction `dir`.
    pub fn new<T: SweepTopology + ?Sized>(mesh: &T, cell: usize, dir: [f64; 3]) -> CellGeom {
        let nf = mesh.num_faces(cell);
        assert!(
            nf <= KERNEL_MAX_FACES,
            "cell with {nf} faces exceeds KERNEL_MAX_FACES"
        );
        let mut flow = [0.0; KERNEL_MAX_FACES];
        for (f, fl) in flow.iter_mut().enumerate().take(nf) {
            *fl = mesh.face(cell, f).flow(dir);
        }
        let mut dd_up = [0usize; 3];
        let mut dd_coef = [0f64; 3];
        if nf == 6 {
            // Per axis: upwind face u, downwind face d = u ^ 1; the
            // expressions match the scalar kernel's exactly.
            for ax in 0..3 {
                let f0 = 2 * ax;
                if flow[f0] < 0.0 {
                    dd_up[ax] = f0;
                    dd_coef[ax] = -flow[f0];
                } else {
                    dd_up[ax] = f0 + 1;
                    dd_coef[ax] = flow[f0].max(flow[f0 + 1].abs());
                }
            }
        }
        CellGeom {
            volume: mesh.cell_volume(cell),
            nf,
            flow,
            dd_up,
            dd_coef,
        }
    }
}

/// Which cell kernel the sweep applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// First-order upwind; any cell shape.
    Step,
    /// Diamond difference with negative-flux fixup; structured
    /// hexahedra only.
    DiamondDifference,
}

/// Solve one cell for one direction and `g` groups.
///
/// * `incoming[f * groups + g]` — incoming angular flux on face `f`
///   (only consulted for upwind faces; boundary faces must be
///   pre-filled with the boundary condition, 0 for vacuum);
/// * `q[g]` — total emission density (scattering + external) / 4π;
/// * `sigma_t[g]` — total cross section;
/// * `psi_out[f * groups + g]` — outgoing angular flux written for
///   every downwind face (untouched for upwind faces);
/// * `psi_cell[g]` — cell-average angular flux written on return.
#[allow(clippy::too_many_arguments)]
pub fn solve_cell<T: SweepTopology + ?Sized>(
    mesh: &T,
    cell: usize,
    dir: [f64; 3],
    kind: KernelKind,
    sigma_t: &[f64],
    q: &[f64],
    incoming: &[f64],
    psi_out: &mut [f64],
    psi_cell: &mut [f64],
) {
    let groups = sigma_t.len();
    let nf = mesh.num_faces(cell);
    debug_assert_eq!(incoming.len(), nf * groups);
    debug_assert_eq!(psi_out.len(), nf * groups);
    let volume = mesh.cell_volume(cell);

    match kind {
        KernelKind::Step => {
            // ψ_c = (q V + Σ_in |Ω·n A| ψ_in) / (σ_t V + Σ_out Ω·n A),
            // ψ_out = ψ_c on every downwind face.
            for g in 0..groups {
                let mut num = q[g] * volume;
                let mut den = sigma_t[g] * volume;
                for f in 0..nf {
                    let face = mesh.face(cell, f);
                    let flow = face.flow(dir);
                    if flow < 0.0 {
                        num += (-flow) * incoming[f * groups + g];
                    } else {
                        den += flow;
                    }
                }
                let psi = if den > 0.0 { num / den } else { 0.0 };
                psi_cell[g] = psi;
                for f in 0..nf {
                    let face = mesh.face(cell, f);
                    if face.flow(dir) > 0.0 {
                        psi_out[f * groups + g] = psi;
                    }
                }
            }
        }
        KernelKind::DiamondDifference => {
            assert_eq!(nf, 6, "diamond difference needs hexahedral cells");
            // Per axis: upwind face u, downwind face d = u ^ 1.
            // ψ_c = (q V + Σ_ax 2 |Ω·n A| ψ_in) / (σ_t V + Σ_ax 2 |Ω·n A|)
            // ψ_out = 2 ψ_c − ψ_in (clamped at 0: set-to-zero fixup).
            let mut up = [0usize; 3];
            let mut coef = [0f64; 3];
            for ax in 0..3 {
                let f0 = 2 * ax;
                let face = mesh.face(cell, f0);
                let flow = face.flow(dir);
                if flow < 0.0 {
                    up[ax] = f0;
                    coef[ax] = -flow;
                } else {
                    up[ax] = f0 + 1;
                    coef[ax] = flow.max(mesh.face(cell, f0 + 1).flow(dir).abs());
                }
            }
            for g in 0..groups {
                let mut num = q[g] * volume;
                let mut den = sigma_t[g] * volume;
                for ax in 0..3 {
                    num += 2.0 * coef[ax] * incoming[up[ax] * groups + g];
                    den += 2.0 * coef[ax];
                }
                let psi = if den > 0.0 { num / den } else { 0.0 };
                psi_cell[g] = psi;
                for ax in 0..3 {
                    let d = up[ax] ^ 1;
                    let out = 2.0 * psi - incoming[up[ax] * groups + g];
                    // Negative-flux fixup.
                    psi_out[d * groups + g] = out.max(0.0);
                }
            }
        }
    }
}

/// Step kernel over one `B`-wide group block. All accumulators are
/// stack arrays indexed by plain counted loops, so the body
/// autovectorizes; `B = 1` is the scalar tail. `incoming`/`psi_out`
/// are indexed `face * stride + j` (the caller folds the block's
/// group offset into the slice base), `sigma_t`/`q`/`psi_cell` are
/// exactly the block.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn step_block<const B: usize>(
    geom: &CellGeom,
    sigma_t: &[f64],
    q: &[f64],
    incoming: &[f64],
    in_stride: usize,
    psi_out: &mut [f64],
    out_stride: usize,
    psi_cell: &mut [f64],
) {
    let mut num = [0.0f64; B];
    let mut den = [0.0f64; B];
    for j in 0..B {
        num[j] = q[j] * geom.volume;
        den[j] = sigma_t[j] * geom.volume;
    }
    for f in 0..geom.nf {
        let flow = geom.flow[f];
        if flow < 0.0 {
            let inc = &incoming[f * in_stride..f * in_stride + B];
            for j in 0..B {
                num[j] += (-flow) * inc[j];
            }
        } else {
            for d in den.iter_mut() {
                *d += flow;
            }
        }
    }
    let mut psi = [0.0f64; B];
    for j in 0..B {
        // `den == 0` void guard: a zero-cross-section cell with no
        // outflow carries no flux. The division is unconditional-safe
        // (IEEE, no trap), so this if-converts to a select.
        psi[j] = if den[j] > 0.0 { num[j] / den[j] } else { 0.0 };
    }
    psi_cell[..B].copy_from_slice(&psi);
    for f in 0..geom.nf {
        if geom.flow[f] > 0.0 {
            psi_out[f * out_stride..f * out_stride + B].copy_from_slice(&psi);
        }
    }
}

/// Diamond-difference kernel over one `B`-wide group block; same
/// indexing contract as [`step_block`]. The negative-flux fixup is a
/// per-lane `max(0.0)`, so a block may mix fixed-up and untouched
/// groups freely.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dd_block<const B: usize>(
    geom: &CellGeom,
    sigma_t: &[f64],
    q: &[f64],
    incoming: &[f64],
    in_stride: usize,
    psi_out: &mut [f64],
    out_stride: usize,
    psi_cell: &mut [f64],
) {
    let mut num = [0.0f64; B];
    let mut den = [0.0f64; B];
    for j in 0..B {
        num[j] = q[j] * geom.volume;
        den[j] = sigma_t[j] * geom.volume;
    }
    for ax in 0..3 {
        let coef = geom.dd_coef[ax];
        let inc = &incoming[geom.dd_up[ax] * in_stride..geom.dd_up[ax] * in_stride + B];
        for j in 0..B {
            num[j] += 2.0 * coef * inc[j];
            den[j] += 2.0 * coef;
        }
    }
    let mut psi = [0.0f64; B];
    for j in 0..B {
        psi[j] = if den[j] > 0.0 { num[j] / den[j] } else { 0.0 };
    }
    psi_cell[..B].copy_from_slice(&psi);
    for ax in 0..3 {
        let u = geom.dd_up[ax];
        let d = u ^ 1;
        let inc = &incoming[u * in_stride..u * in_stride + B];
        let out = &mut psi_out[d * out_stride..d * out_stride + B];
        for j in 0..B {
            // Negative-flux fixup, per lane.
            out[j] = (2.0 * psi[j] - inc[j]).max(0.0);
        }
    }
}

/// Solve one group block of one cell from pre-hoisted geometry.
///
/// * `sigma_t`, `q`, `psi_cell` — exactly the block (length `b`,
///   `1 ≤ b ≤ GROUP_BLOCK`), already sliced to `[g0, g0 + b)`;
/// * `incoming[f * in_stride + j]` / `psi_out[f * out_stride + j]` —
///   face-major views whose base the caller has offset to the block's
///   first group, so a group block is a plain sub-slice of the dense
///   `face * groups + g` layouts (no transposition, no copies).
///
/// Full blocks run the [`GROUP_BLOCK`]-wide vector body; partial
/// blocks degrade to the width-1 scalar tail per group, which is the
/// scalar path's exact operation sequence.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn solve_cell_block_geom(
    geom: &CellGeom,
    kind: KernelKind,
    sigma_t: &[f64],
    q: &[f64],
    incoming: &[f64],
    in_stride: usize,
    psi_out: &mut [f64],
    out_stride: usize,
    psi_cell: &mut [f64],
) {
    let b = sigma_t.len();
    debug_assert!(b <= GROUP_BLOCK);
    debug_assert_eq!(q.len(), b);
    debug_assert!(psi_cell.len() >= b);
    match kind {
        KernelKind::Step => {
            if b == GROUP_BLOCK {
                step_block::<GROUP_BLOCK>(
                    geom, sigma_t, q, incoming, in_stride, psi_out, out_stride, psi_cell,
                );
            } else {
                for j in 0..b {
                    step_block::<1>(
                        geom,
                        &sigma_t[j..j + 1],
                        &q[j..j + 1],
                        &incoming[j..],
                        in_stride,
                        &mut psi_out[j..],
                        out_stride,
                        &mut psi_cell[j..j + 1],
                    );
                }
            }
        }
        KernelKind::DiamondDifference => {
            assert_eq!(geom.nf, 6, "diamond difference needs hexahedral cells");
            if b == GROUP_BLOCK {
                dd_block::<GROUP_BLOCK>(
                    geom, sigma_t, q, incoming, in_stride, psi_out, out_stride, psi_cell,
                );
            } else {
                for j in 0..b {
                    dd_block::<1>(
                        geom,
                        &sigma_t[j..j + 1],
                        &q[j..j + 1],
                        &incoming[j..],
                        in_stride,
                        &mut psi_out[j..],
                        out_stride,
                        &mut psi_cell[j..j + 1],
                    );
                }
            }
        }
    }
}

/// Blocked drop-in for [`solve_cell`]: same buffers, same contract,
/// bit-identical result (see [`KERNEL_MAX_ULPS`]) — with the geometry
/// hoisted once per cell and the group loop innermost over
/// [`GROUP_BLOCK`]-wide contiguous blocks plus a scalar tail for
/// `groups % GROUP_BLOCK != 0`.
#[allow(clippy::too_many_arguments)]
pub fn solve_cell_block<T: SweepTopology + ?Sized>(
    mesh: &T,
    cell: usize,
    dir: [f64; 3],
    kind: KernelKind,
    sigma_t: &[f64],
    q: &[f64],
    incoming: &[f64],
    psi_out: &mut [f64],
    psi_cell: &mut [f64],
) {
    let groups = sigma_t.len();
    let nf = mesh.num_faces(cell);
    debug_assert_eq!(incoming.len(), nf * groups);
    debug_assert_eq!(psi_out.len(), nf * groups);
    let geom = CellGeom::new(mesh, cell, dir);
    let mut g0 = 0;
    while g0 < groups {
        let b = GROUP_BLOCK.min(groups - g0);
        solve_cell_block_geom(
            &geom,
            kind,
            &sigma_t[g0..g0 + b],
            &q[g0..g0 + b],
            &incoming[g0..],
            groups,
            &mut psi_out[g0..],
            groups,
            &mut psi_cell[g0..g0 + b],
        );
        g0 += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::StructuredMesh;

    fn one_cell() -> StructuredMesh {
        StructuredMesh::unit(1, 1, 1)
    }

    #[test]
    fn step_infinite_medium_limit() {
        // With incoming flux equal to q/σt on all upwind faces, the cell
        // flux is exactly q/σt (the infinite-medium solution).
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let q = 2.0;
        let st = 4.0;
        let expected = q / st;
        let mut incoming = vec![0.0; 6];
        for (f, inc) in incoming.iter_mut().enumerate() {
            if m.face(0, f).flow(dir) < 0.0 {
                *inc = expected;
            }
        }
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &[st],
            &[q],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!((psi[0] - expected).abs() < 1e-14);
        assert!((out[1] - expected).abs() < 1e-14); // +x face downwind
    }

    #[test]
    fn dd_infinite_medium_limit() {
        let m = one_cell();
        let dir = [0.6, 0.64, 0.48];
        let q = 3.0;
        let st = 1.5;
        let expected = q / st;
        let mut incoming = vec![0.0; 6];
        for (f, inc) in incoming.iter_mut().enumerate() {
            if m.face(0, f).flow(dir) < 0.0 {
                *inc = expected;
            }
        }
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::DiamondDifference,
            &[st],
            &[q],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!((psi[0] - expected).abs() < 1e-13);
        for (f, o) in out.iter().enumerate() {
            if m.face(0, f).flow(dir) > 0.0 {
                assert!((o - expected).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn step_attenuates_without_source() {
        // No source: outgoing must be strictly below incoming.
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let mut incoming = vec![0.0; 6];
        incoming[0] = 1.0; // -x face is upwind for +x direction
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &[2.0],
            &[0.0],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!(psi[0] > 0.0 && psi[0] < 1.0);
        assert!(out[1] < 1.0);
    }

    #[test]
    fn dd_fixup_never_negative() {
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let mut incoming = vec![0.0; 6];
        incoming[0] = 1.0;
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        // Strong absorber drives the diamond extrapolation negative.
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::DiamondDifference,
            &[50.0],
            &[0.0],
            &incoming,
            &mut out,
            &mut psi,
        );
        for v in &out {
            assert!(*v >= 0.0, "fixup failed: {out:?}");
        }
    }

    #[test]
    fn step_vacuum_and_void_passes_flux_through() {
        // Zero cross section, zero source: flux is transported without
        // attenuation (conservation through a void cell).
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let mut incoming = vec![0.0; 6];
        incoming[0] = 0.7;
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &[0.0],
            &[0.0],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!((out[1] - 0.7).abs() < 1e-14);
    }

    #[test]
    fn multigroup_groups_are_independent() {
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let groups = 3;
        let sigma_t = [1.0, 2.0, 4.0];
        let q = [1.0, 2.0, 4.0];
        let incoming = vec![0.0; 6 * groups];
        let mut out = vec![0.0; 6 * groups];
        let mut psi = vec![0.0; groups];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &sigma_t,
            &q,
            &incoming,
            &mut out,
            &mut psi,
        );
        // Each group must match an independent single-group solve.
        for g in 0..groups {
            let inc1 = vec![0.0; 6];
            let mut out1 = vec![0.0; 6];
            let mut psi1 = vec![0.0];
            solve_cell(
                &m,
                0,
                dir,
                KernelKind::Step,
                &[sigma_t[g]],
                &[q[g]],
                &inc1,
                &mut out1,
                &mut psi1,
            );
            assert!((psi[g] - psi1[0]).abs() < 1e-14, "group {g}");
            for f in 0..6 {
                assert!((out[f * groups + g] - out1[f]).abs() < 1e-14);
            }
        }
    }

    /// Both paths over identical inputs; asserts every output element
    /// within [`KERNEL_MAX_ULPS`] (i.e. bit-identical).
    fn assert_blocked_matches_scalar<T: SweepTopology + ?Sized>(
        mesh: &T,
        cell: usize,
        dir: [f64; 3],
        kind: KernelKind,
        sigma_t: &[f64],
        q: &[f64],
        incoming: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let groups = sigma_t.len();
        let nf = mesh.num_faces(cell);
        let mut out_s = vec![0.0; nf * groups];
        let mut psi_s = vec![0.0; groups];
        solve_cell(
            mesh, cell, dir, kind, sigma_t, q, incoming, &mut out_s, &mut psi_s,
        );
        let mut out_b = vec![0.0; nf * groups];
        let mut psi_b = vec![0.0; groups];
        solve_cell_block(
            mesh, cell, dir, kind, sigma_t, q, incoming, &mut out_b, &mut psi_b,
        );
        // `<=` so the bound tracks KERNEL_MAX_ULPS if the exactness
        // contract is ever relaxed (it is 0 today, making this `==`).
        #[allow(clippy::absurd_extreme_comparisons)]
        fn within_bound(a: f64, b: f64) -> bool {
            ulp_distance(a, b) <= KERNEL_MAX_ULPS
        }
        for g in 0..groups {
            assert!(
                within_bound(psi_s[g], psi_b[g]),
                "psi_cell[{g}]: scalar {} vs blocked {}",
                psi_s[g],
                psi_b[g]
            );
        }
        for i in 0..nf * groups {
            assert!(
                within_bound(out_s[i], out_b[i]),
                "psi_out[{i}]: scalar {} vs blocked {}",
                out_s[i],
                out_b[i]
            );
        }
        (psi_b, out_b)
    }

    #[test]
    fn blocked_den_zero_void_guard_inside_a_block() {
        // A zero direction zeroes every face flow, so `den` reduces to
        // `σ_t V` — mixing σ_t = 0 (void: den == 0, guarded to ψ = 0)
        // and σ_t > 0 lanes inside one full GROUP_BLOCK-wide block.
        let m = one_cell();
        let dir = [0.0, 0.0, 0.0];
        let sigma_t = [1.0, 0.0, 2.0, 0.0, 4.0, 0.0, 0.5, 0.0];
        let q = [1.0; GROUP_BLOCK];
        let incoming = vec![0.3; 6 * GROUP_BLOCK];
        let (psi, _) =
            assert_blocked_matches_scalar(&m, 0, dir, KernelKind::Step, &sigma_t, &q, &incoming);
        for (g, &st) in sigma_t.iter().enumerate() {
            if st == 0.0 {
                assert_eq!(psi[g], 0.0, "void lane {g} must be guarded to zero");
            } else {
                assert!((psi[g] - 1.0 / st).abs() < 1e-14, "absorbing lane {g}");
            }
        }
    }

    #[test]
    fn blocked_dd_fixup_fires_for_only_some_groups_of_a_block() {
        // One full block whose σ_t spans optically thin to thick: the
        // diamond extrapolation 2ψ − ψ_in goes negative only for the
        // thick groups, so the set-to-zero fixup must fire per lane,
        // not per block.
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let sigma_t = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0];
        let q = [0.0; GROUP_BLOCK];
        let mut incoming = vec![0.0; 6 * GROUP_BLOCK];
        incoming[..GROUP_BLOCK].fill(1.0); // -x face (index 0) is upwind for +x.
        let (_, out) = assert_blocked_matches_scalar(
            &m,
            0,
            dir,
            KernelKind::DiamondDifference,
            &sigma_t,
            &q,
            &incoming,
        );
        // +x face (index 1) is the downwind face carrying the fixup.
        let downwind = &out[GROUP_BLOCK..2 * GROUP_BLOCK];
        assert!(
            downwind[0] > 0.0,
            "thin group must pass flux through untouched: {downwind:?}"
        );
        assert_eq!(
            downwind[GROUP_BLOCK - 1],
            0.0,
            "thick group must be fixed up to zero: {downwind:?}"
        );
        assert!(
            downwind.iter().any(|&v| v > 0.0) && downwind.contains(&0.0),
            "block must mix fixed-up and untouched lanes: {downwind:?}"
        );
    }

    #[test]
    fn blocked_single_group_degenerates_to_scalar_path() {
        // groups = 1 exercises only the width-1 tail; groups = 9 runs
        // one full block plus a width-1 tail. Both must be
        // bit-identical to the scalar oracle.
        let m = one_cell();
        let dir = [0.6, 0.64, 0.48];
        for kind in [KernelKind::Step, KernelKind::DiamondDifference] {
            for groups in [1usize, 9] {
                let sigma_t: Vec<f64> = (0..groups).map(|g| 0.5 + g as f64).collect();
                let q: Vec<f64> = (0..groups).map(|g| 1.0 + 0.5 * g as f64).collect();
                let incoming: Vec<f64> = (0..6 * groups).map(|i| 0.1 * (i % 7) as f64).collect();
                assert_blocked_matches_scalar(&m, 0, dir, kind, &sigma_t, &q, &incoming);
            }
        }
    }

    #[test]
    fn blocked_matches_scalar_on_tets() {
        let m = jsweep_mesh::tetgen::cube(2, 1.0);
        let dir = [0.3, 0.5, 0.81];
        let groups = 11; // full block + 3-wide tail
        let sigma_t: Vec<f64> = (0..groups).map(|g| 0.2 + 0.3 * g as f64).collect();
        let q: Vec<f64> = (0..groups).map(|g| 0.5 + 0.1 * g as f64).collect();
        for c in 0..m.num_cells() {
            let incoming: Vec<f64> = (0..4 * groups).map(|i| 0.05 * (i % 11) as f64).collect();
            assert_blocked_matches_scalar(&m, c, dir, KernelKind::Step, &sigma_t, &q, &incoming);
        }
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, -1.0), u64::MAX);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn step_works_on_tets() {
        let m = jsweep_mesh::tetgen::cube(1, 1.0);
        let dir = [0.3, 0.5, 0.81];
        let mut psi = vec![0.0];
        for c in 0..m.num_cells() {
            let incoming = vec![0.5; 4];
            let mut out = vec![0.0; 4];
            solve_cell(
                &m,
                c,
                dir,
                KernelKind::Step,
                &[1.0],
                &[0.5],
                &incoming,
                &mut out,
                &mut psi,
            );
            assert!(psi[0] > 0.0 && psi[0].is_finite());
        }
    }
}
