//! Source-iteration drivers.
//!
//! The fixed-source Sn problem `Ω·∇ψ + σ_t ψ = (σ_s φ + Q)/4π` is
//! solved by source iteration: sweep all angles with the current
//! emission density, rebuild `φ = Σ_a w_a ψ_a`, repeat until the scalar
//! flux converges.
//!
//! Two drivers share the kernels and problem setup:
//!
//! * [`solve_serial`] — single-threaded reference: a plain topological
//!   sweep per angle. Bit-for-bit deterministic; the golden result in
//!   tests.
//! * [`solve_parallel`] — the JSweep solver: every sweep runs as a set
//!   of `(patch, angle)` patch-programs on the threaded runtime
//!   ([`jsweep_core`]), with vertex clustering, two-level priorities
//!   and either termination detector.

#![allow(clippy::type_complexity)]

use crate::kernel::{solve_cell, KernelKind};
use crate::program::{FluxBins, SweepEpoch, SweepFactory, SweepMode, SweepSetup};
use crate::replay::{
    build_plan, collect_traces, new_trace_bins, plan_key, CoarsePlan, PlanCache, PlanKey, TraceBins,
};
use crate::xs::MaterialSet;
use jsweep_core::fault::{EpochFault, FaultPlan};
use jsweep_core::telemetry::EventKind;
use jsweep_core::{
    fabric_for, run_universe, EpochTuning, RunStats, RuntimeConfig, SpmdRank, TelemetryHandle,
    TerminationKind, TransportKind, Universe,
};
use jsweep_graph::coarse::ClusterTrace;
use jsweep_graph::SweepProblem;
use jsweep_mesh::SweepTopology;
use jsweep_quadrature::QuadratureSet;
use std::sync::Arc;

/// Pool claim batch used for coarse-replay iterations.
///
/// Measured on the quickstart-scale replay scenario (16³ cells, 4³
/// patches, 2 ranks × 2 workers, grain 16; best-of-5 per run, see the
/// README knobs section): claim batch 2/8/16 are within noise at
/// flush 32–64, while eager flushing loses ~15%, so the fine-path
/// claim batch is kept. The "fewer, larger compute calls want a tiny
/// claim batch" hypothesis did not survive measurement — already-ready
/// claims are batched opportunistically, so a larger cap costs nothing
/// when the coarse ready queue is sparse.
pub const REPLAY_CLAIM_BATCH: usize = 8;

/// Worker report-flush threshold for coarse-replay iterations.
///
/// A coarse compute call emits one large stream per outgoing coarse
/// edge; measurement (same scenario as [`REPLAY_CLAIM_BATCH`]: flush
/// 1/4/8 ≈ 9.2–9.9 ms per replay iteration, 32 ≈ 8.1–8.3 ms, 64 ≈
/// 7.9–8.1 ms) shows batching *more* aggressively than the fine-path
/// default of 32 wins: master-channel sends, not stream latency,
/// dominate the replay data plane.
pub const REPLAY_REPORT_FLUSH_STREAMS: usize = 64;

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SnConfig {
    /// Vertex clustering grain `N`.
    pub grain: usize,
    /// Maximum source iterations.
    pub max_iterations: usize,
    /// Relative L2 convergence tolerance on the scalar flux.
    pub tolerance: f64,
    /// Cell kernel.
    pub kernel: KernelKind,
    /// Worker threads per rank (parallel solver).
    pub workers_per_rank: usize,
    /// Termination detector (parallel solver).
    pub termination: TerminationKind,
    /// Detect and break cyclic sweep dependencies (needed for deformed
    /// meshes; adds a per-direction analysis pass).
    pub break_cycles: bool,
    /// Coarse-graph replay (§V-E, parallel solver): record the first
    /// iteration's vertex clusters, cache them as a coarsened task
    /// graph, and run iterations ≥ 2 on it — skipping per-vertex
    /// scheduling. Bit-identical flux either way; `false` keeps every
    /// iteration on the fine DAG path.
    pub coarsen: bool,
    /// Persistent universe (parallel solver, default on): launch one
    /// resident runtime ([`jsweep_core::Universe`]) for the whole
    /// solve and run every source iteration as an epoch against the
    /// same live programs — no per-iteration thread spawn/teardown, no
    /// program reallocation. `false` respawns a one-shot
    /// [`run_universe`] per iteration (the pre-persistent behaviour,
    /// kept for goldens and the `universe` bench). Bit-identical flux
    /// either way.
    pub resident: bool,
    /// Epoch watchdog deadline (default off): a rank whose pool holds
    /// active work but makes no progress for this long converts the
    /// hang into an [`EpochFault`] instead of blocking the epoch
    /// forever. See [`jsweep_core::RuntimeConfig::watchdog`].
    pub watchdog: Option<std::time::Duration>,
    /// Deterministic fault-injection plan (default none). With the
    /// `fault-inject` feature compiled out this is carried but never
    /// consulted — the runtime hooks are inert.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Transport fabric the resident universe's ranks communicate
    /// over (default [`TransportKind::Thread`]). See `docs/transport.md`
    /// for the backend matrix; [`TransportKind::Socket`] exercises the
    /// process-grade wire protocol while still hosting every rank in
    /// this process ([`solve_parallel_spmd`] is the one-rank-per-
    /// process entry point).
    pub transport: TransportKind,
    /// Telemetry attachment threaded into the runtime (default
    /// detached). Inert unless the `telemetry` feature is on and the
    /// attached recorder is armed; see
    /// [`jsweep_core::TelemetryHandle`].
    pub telemetry: TelemetryHandle,
}

impl Default for SnConfig {
    fn default() -> Self {
        SnConfig {
            grain: 64,
            max_iterations: 50,
            tolerance: 1e-6,
            kernel: KernelKind::Step,
            workers_per_rank: 2,
            termination: TerminationKind::Counting,
            break_cycles: false,
            coarsen: true,
            resident: true,
            watchdog: None,
            fault_plan: None,
            transport: TransportKind::default(),
            telemetry: TelemetryHandle::default(),
        }
    }
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct SnSolution {
    /// Scalar flux per `cell * groups + g`.
    pub phi: Vec<f64>,
    /// Source iterations performed.
    pub iterations: usize,
    /// Relative change of the last iteration.
    pub residual: f64,
    /// Runtime statistics per iteration (parallel solver only; one
    /// entry per iteration, aggregated over ranks).
    pub stats: Vec<RunStats>,
    /// Host seconds spent building the coarse replay plan (parallel
    /// solver with [`SnConfig::coarsen`]; `0.0` otherwise — in
    /// particular when the plan came out of a [`PlanCache`], which is
    /// the point of caching).
    pub coarse_build_seconds: f64,
    /// True when the replay plan was served by the [`PlanCache`] handed
    /// to [`solve_parallel_cached`]: no recording iteration ran and no
    /// plan was compiled — every iteration replayed from the start.
    pub plan_from_cache: bool,
}

/// Emission density `(σ_s φ + Q)/4π` per cell and group.
fn emission_density(materials: &MaterialSet, phi: &[f64]) -> Vec<f64> {
    let groups = materials.num_groups();
    let n = materials.num_cells();
    let mut q = vec![0.0; n * groups];
    let inv_4pi = 1.0 / (4.0 * std::f64::consts::PI);
    for c in 0..n {
        let m = materials.material(c);
        for g in 0..groups {
            q[c * groups + g] = (m.sigma_s[g] * phi[c * groups + g] + m.source[g]) * inv_4pi;
        }
    }
    q
}

/// Relative L2 difference between successive flux iterates.
fn relative_change(new: &[f64], old: &[f64]) -> f64 {
    let mut diff = 0.0;
    let mut norm = 0.0;
    for (a, b) in new.iter().zip(old) {
        diff += (a - b) * (a - b);
        norm += a * a;
    }
    if norm == 0.0 {
        0.0
    } else {
        (diff / norm).sqrt()
    }
}

/// Serial reference solver: topological sweeps, no decomposition.
///
/// When `config.break_cycles` is set, directions whose dependency
/// graphs are cyclic (deformed meshes) are fixed by the cycle breaker:
/// broken upwind faces are treated as vacuum. The same breaks are
/// applied by the parallel solver when the problem was built with
/// `ProblemOptions::check_cycles`, so the two stay comparable.
pub fn solve_serial<T: SweepTopology + ?Sized>(
    mesh: &T,
    quadrature: &QuadratureSet,
    materials: &MaterialSet,
    config: &SnConfig,
) -> SnSolution {
    let n = mesh.num_cells();
    let groups = materials.num_groups();
    assert_eq!(materials.num_cells(), n);
    let mut phi = vec![0.0; n * groups];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    // Precompute per-angle cycle breaks and topological orders
    // (constant across iterations, like the cached DAG of §V-E).
    let broken: Vec<std::collections::HashSet<(u32, u32)>> = quadrature
        .iter()
        .map(|(_, o)| {
            if config.break_cycles {
                jsweep_graph::cycles::broken_edges_for_direction(mesh, o.dir)
            } else {
                Default::default()
            }
        })
        .collect();
    let orders: Vec<Vec<u32>> = quadrature
        .iter()
        .zip(&broken)
        .map(|((_, o), br)| topological_order(mesh, o.dir, br))
        .collect();

    let mf = mesh.num_faces(0);
    for _ in 0..config.max_iterations {
        let q = emission_density(materials, &phi);
        let mut phi_new = vec![0.0; n * groups];
        let mut face_flux = vec![0.0; n * mf * groups];
        let mut out = vec![0.0; mf * groups];
        let mut psi = vec![0.0; groups];
        let mut incoming = vec![0.0; mf * groups];
        for (((ai, ord), order), br) in quadrature.iter().zip(&orders).zip(&broken) {
            let _ = ai;
            face_flux.iter_mut().for_each(|x| *x = 0.0);
            for &cu in order {
                let c = cu as usize;
                let mat = materials.material(c);
                incoming.copy_from_slice(&face_flux[c * mf * groups..(c + 1) * mf * groups]);
                solve_cell(
                    mesh,
                    c,
                    ord.dir,
                    config.kernel,
                    &mat.sigma_t,
                    &q[c * groups..(c + 1) * groups],
                    &incoming,
                    &mut out,
                    &mut psi,
                );
                for g in 0..groups {
                    phi_new[c * groups + g] += ord.weight * psi[g];
                }
                // Push outgoing face fluxes to downwind neighbours.
                for f in 0..mesh.num_faces(c) {
                    let face = mesh.face(c, f);
                    if face.flow(ord.dir) <= 0.0 {
                        continue;
                    }
                    let Some(nb) = face.neighbor.cell() else {
                        continue;
                    };
                    if !br.is_empty() && br.contains(&(c as u32, nb as u32)) {
                        continue;
                    }
                    if let Some(f2) = jsweep_mesh::face_toward(mesh, nb, c) {
                        for g in 0..groups {
                            face_flux[(nb * mf + f2) * groups + g] = out[f * groups + g];
                        }
                    }
                }
            }
        }
        iterations += 1;
        residual = relative_change(&phi_new, &phi);
        phi = phi_new;
        if residual < config.tolerance {
            break;
        }
    }

    SnSolution {
        phi,
        iterations,
        residual,
        stats: Vec::new(),
        coarse_build_seconds: 0.0,
        plan_from_cache: false,
    }
}

/// Global topological order of cells for one direction (Kahn),
/// honouring cycle-broken edges.
fn topological_order<T: SweepTopology + ?Sized>(
    mesh: &T,
    dir: [f64; 3],
    broken: &std::collections::HashSet<(u32, u32)>,
) -> Vec<u32> {
    let n = mesh.num_cells();
    let mut indeg = vec![0u32; n];
    for (c, deg) in indeg.iter_mut().enumerate() {
        for up in mesh.upwind_neighbors(c, dir) {
            if broken.is_empty() || !broken.contains(&(up as u32, c as u32)) {
                *deg += 1;
            }
        }
    }
    let mut stack: Vec<u32> = (0..n as u32).filter(|&c| indeg[c as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(c) = stack.pop() {
        order.push(c);
        for nb in mesh.downwind_neighbors(c as usize, dir) {
            if !broken.is_empty() && broken.contains(&(c, nb as u32)) {
                continue;
            }
            indeg[nb] -= 1;
            if indeg[nb] == 0 {
                stack.push(nb as u32);
            }
        }
    }
    assert_eq!(
        order.len(),
        n,
        "cyclic sweep dependencies; enable SnConfig::break_cycles"
    );
    order
}

/// Run one parallel sweep iteration in the given scheduling mode:
/// build the factory, run the universe, fold the per-(patch, angle)
/// flux contributions in angle order (schedule-independent
/// floating-point result). Returns the aggregated stats and `φ_new`.
fn sweep_iteration<T: SweepTopology + Send + Sync + 'static>(
    mesh: &Arc<T>,
    problem: &Arc<SweepProblem>,
    quadrature: &QuadratureSet,
    materials: &Arc<MaterialSet>,
    config: &SnConfig,
    phi: &[f64],
    mode: SweepMode,
) -> (RunStats, Vec<f64>) {
    let n = mesh.num_cells();
    let groups = materials.num_groups();
    let num_ranks = problem.patches.num_ranks();
    let emission = Arc::new(emission_density(materials, phi));
    let flux_bins = Arc::new(FluxBins::new(problem.num_patches()));
    let runtime = match &mode {
        // Default batching knobs: frame aggregation + report batching
        // are pure overhead wins for fine-grained sweeps.
        SweepMode::Fine { .. } => RuntimeConfig {
            num_workers: config.workers_per_rank,
            termination: config.termination,
            watchdog: config.watchdog,
            fault_plan: config.fault_plan.clone(),
            telemetry: config.telemetry.clone(),
            ..Default::default()
        },
        // Replay iterations issue far fewer, larger compute calls and
        // far fewer streams; measurement (see REPLAY_CLAIM_BATCH /
        // REPLAY_REPORT_FLUSH_STREAMS) favours batching reports even
        // harder than the fine path, not less.
        SweepMode::Coarse { .. } => RuntimeConfig {
            num_workers: config.workers_per_rank,
            termination: config.termination,
            claim_batch: REPLAY_CLAIM_BATCH,
            report_flush_streams: REPLAY_REPORT_FLUSH_STREAMS,
            watchdog: config.watchdog,
            fault_plan: config.fault_plan.clone(),
            telemetry: config.telemetry.clone(),
            ..Default::default()
        },
    };
    let factory = Arc::new(SweepFactory::new(SweepSetup {
        mesh: mesh.clone(),
        problem: problem.clone(),
        quadrature: quadrature.clone(),
        materials: materials.clone(),
        emission,
        kernel: config.kernel,
        grain: config.grain,
        flux_bins: flux_bins.clone(),
        mode,
    }));
    let stats = if config.transport == TransportKind::Thread {
        run_universe(num_ranks, factory, runtime)
    } else {
        // One-shot universe over the configured fabric (run_universe
        // is hard-wired to the thread world).
        let mut u =
            Universe::launch_with_fabric(num_ranks, factory, runtime, fabric_for(config.transport));
        let stats = u
            .run_epoch(Arc::new(()))
            .unwrap_or_else(|f| panic!("sweep epoch faulted: {f}"));
        u.shutdown();
        stats
    };
    let phi_new = flux_bins.fold(problem, n, groups);
    (RunStats::aggregate(&stats), phi_new)
}

/// The per-epoch batching tuning matching `mode` (see
/// [`REPLAY_CLAIM_BATCH`] / [`REPLAY_REPORT_FLUSH_STREAMS`] for the
/// replay measurements; fine epochs run the `RuntimeConfig` defaults).
fn tuning_for(mode: &SweepMode, base: &RuntimeConfig) -> EpochTuning {
    match mode {
        SweepMode::Fine { .. } => EpochTuning {
            report_flush_streams: Some(base.report_flush_streams),
            claim_batch: Some(base.claim_batch),
            ..Default::default()
        },
        SweepMode::Coarse { .. } => EpochTuning {
            report_flush_streams: Some(REPLAY_REPORT_FLUSH_STREAMS),
            claim_batch: Some(REPLAY_CLAIM_BATCH),
            ..Default::default()
        },
    }
}

/// Pick the next iteration's scheduling mode: replay when a plan
/// exists, record when coarsening wants one, plain fine otherwise.
fn select_mode(
    plan: &Option<Arc<CoarsePlan>>,
    coarsen: bool,
    num_tasks: usize,
) -> (SweepMode, Option<Arc<TraceBins>>) {
    match (plan, coarsen) {
        (Some(p), _) => (SweepMode::Coarse { plan: p.clone() }, None),
        (None, true) => {
            let b = Arc::new(new_trace_bins(num_tasks));
            (
                SweepMode::Fine {
                    trace_bins: Some(b.clone()),
                },
                Some(b),
            )
        }
        (None, false) => (SweepMode::Fine { trace_bins: None }, None),
    }
}

/// The JSweep parallel solver.
///
/// `problem` carries the decomposition and priorities (see
/// [`jsweep_graph::problem::SweepProblem::build`]); the patch set's rank
/// distribution determines the number of simulated MPI ranks.
///
/// With [`SnConfig::coarsen`] (the default), the first iteration runs
/// the fine DAG-driven sweep while recording each canonical angle's
/// cluster formation (one trace per octant under shared DAGs); the
/// recorded clusters are compiled into a coarse replay plan (§V-E,
/// with the Theorem-1 acyclicity check), and every later iteration
/// replays it — same flux bit-for-bit, with the graph-op share of the
/// [`RunStats`] breakdown visibly reduced. To reuse the plan *across*
/// solves, use [`solve_parallel_cached`].
///
/// With [`SnConfig::resident`] (also the default), all of this runs
/// inside **one persistent universe** ([`jsweep_core::Universe`]):
/// rank threads, workers and every `SweepProgram` are launched once
/// and every source iteration is an epoch against the same live
/// programs — see `docs/replay.md` for the epoch lifecycle.
pub fn solve_parallel<T: SweepTopology + Send + Sync + 'static>(
    mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    quadrature: &QuadratureSet,
    materials: Arc<MaterialSet>,
    config: &SnConfig,
) -> SnSolution {
    solve_parallel_impl(mesh, problem, quadrature, materials, config, None)
}

/// [`solve_parallel`] with a cross-solve [`PlanCache`].
///
/// The first solve of a given problem shape (mesh generation +
/// decomposition + quadrature + grain — see
/// [`crate::replay::plan_key`]) records iteration 1 on the fine path,
/// compiles the replay plan and stores it in `cache`; every later
/// solve of the same shape starts in coarse-replay mode **from
/// iteration 1**, paying neither the recording iteration nor the plan
/// compile. This is the multi-solve workhorse: time steps, eigenvalue
/// iterations and material sweeps reuse one plan.
///
/// Invalidation is structural: refining (or rebuilding) the mesh
/// yields a fresh generation stamp, so the rebuilt problem's key
/// misses the cache and that solve records fresh. A stale plan is
/// rebuilt, never replayed.
pub fn solve_parallel_cached<T: SweepTopology + Send + Sync + 'static>(
    mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    quadrature: &QuadratureSet,
    materials: Arc<MaterialSet>,
    config: &SnConfig,
    cache: &PlanCache,
) -> SnSolution {
    solve_parallel_impl(mesh, problem, quadrature, materials, config, Some(cache))
}

/// The resident scheduling world parallel solves run epochs against:
/// one problem shape (mesh + decomposition + quadrature + solver
/// knobs), one set of shared flux bins, and at most one resident
/// [`Universe`]. [`solve_parallel_impl`] builds one per solve; a
/// [`crate::session::SolverSession`] keeps one alive across many
/// queued solves and retires it only on shutdown or refinement.
pub(crate) struct EpochWorld<T: SweepTopology + Send + Sync + 'static> {
    pub(crate) mesh: Arc<T>,
    pub(crate) problem: Arc<SweepProblem>,
    pub(crate) quadrature: QuadratureSet,
    pub(crate) config: SnConfig,
    flux_bins: Arc<FluxBins>,
    base: RuntimeConfig,
    universe: Option<Universe>,
    /// Group count the resident programs were built with (`None` while
    /// no universe is live). Resident programs cannot change their
    /// group count ([`crate::program::SweepEpoch::materials`]), so a
    /// session must reject mismatched requests before they reach the
    /// runtime.
    resident_groups: Option<usize>,
    /// Cache key of this world's replay plan; `None` with coarsening
    /// off.
    key: Option<PlanKey>,
}

impl<T: SweepTopology + Send + Sync + 'static> EpochWorld<T> {
    pub(crate) fn new(
        mesh: Arc<T>,
        problem: Arc<SweepProblem>,
        quadrature: QuadratureSet,
        config: SnConfig,
    ) -> Self {
        assert_eq!(
            mesh.generation(),
            problem.mesh_generation,
            "mesh topology changed since SweepProblem::build; rebuild the problem"
        );
        let flux_bins = Arc::new(FluxBins::new(problem.num_patches()));
        let base = RuntimeConfig {
            num_workers: config.workers_per_rank,
            termination: config.termination,
            watchdog: config.watchdog,
            fault_plan: config.fault_plan.clone(),
            telemetry: config.telemetry.clone(),
            ..Default::default()
        };
        let key = config.coarsen.then(|| plan_key(&problem, config.grain));
        EpochWorld {
            mesh,
            problem,
            quadrature,
            config,
            flux_bins,
            base,
            universe: None,
            resident_groups: None,
            key,
        }
    }

    /// Start a solve against this world: look the replay plan up in
    /// `cache` (when coarsening is on) and build the zero-flux starting
    /// state.
    pub(crate) fn begin_solve(
        &self,
        materials: Arc<MaterialSet>,
        max_iterations: usize,
        tolerance: f64,
        cache: Option<&PlanCache>,
    ) -> SolveProgress {
        assert_eq!(
            materials.num_cells(),
            self.mesh.num_cells(),
            "materials must cover the mesh"
        );
        let plan: Option<Arc<CoarsePlan>> = match (cache, &self.key) {
            (Some(c), Some(k)) => {
                let p = c.get(k);
                let kind = if p.is_some() {
                    EventKind::CacheHit
                } else {
                    EventKind::CacheMiss
                };
                self.config
                    .telemetry
                    .global_instant(kind, k.mesh_generation(), 0);
                p
            }
            _ => None,
        };
        if let Some(p) = &plan {
            // Defense in depth: the generation is part of the key, so a
            // stale plan cannot be looked up — but never replay one even
            // if a caller assembled the cache by hand.
            assert_eq!(
                p.mesh_generation, self.problem.mesh_generation,
                "stale replay plan (mesh was refined); plans must be rebuilt, not replayed"
            );
        }
        let n = self.mesh.num_cells();
        let groups = materials.num_groups();
        SolveProgress {
            phi: vec![0.0; n * groups],
            iterations: 0,
            residual: f64::INFINITY,
            stats: Vec::new(),
            coarse_build_seconds: 0.0,
            plan_from_cache: plan.is_some(),
            plan,
            materials,
            max_iterations,
            tolerance,
            span: 0,
        }
    }

    /// Whether a resident universe is currently live.
    pub(crate) fn has_universe(&self) -> bool {
        self.universe.is_some()
    }

    /// Group count of the live resident programs, if any.
    pub(crate) fn resident_groups(&self) -> Option<usize> {
        self.resident_groups
    }

    /// Shut the resident universe down (idempotent). Scrubs the flux
    /// bins afterwards: a retire forced by a fault abandons in-flight
    /// programs, and those keep depositing until the join — so the
    /// authoritative scrub can only happen here, after every thread
    /// is gone. (After a healthy epoch the bins are already empty.)
    pub(crate) fn retire(&mut self) {
        if let Some(mut u) = self.universe.take() {
            u.shutdown();
            self.clear_flux_bins();
        }
        self.resident_groups = None;
    }

    /// Drop any partial flux deposits. A faulted epoch abandons
    /// in-flight programs, so the shared bins may hold a *subset* of
    /// the epoch's contributions — folding them into a later epoch
    /// would corrupt that solve's flux. Best-effort on the fault
    /// return path; [`EpochWorld::retire`] repeats it post-join to
    /// catch stragglers that deposited after the epoch aborted.
    pub(crate) fn clear_flux_bins(&self) {
        self.flux_bins.clear();
    }

    /// Accumulator buffers the shared flux bins allocated fresh (pool
    /// misses) over the world's lifetime — see
    /// [`FluxBins::fresh_allocations`]. Steady state for a resident
    /// universe is one per `(patch, angle)` program.
    pub fn fresh_flux_allocations(&self) -> u64 {
        self.flux_bins.fresh_allocations()
    }
}

/// Mutable state of one in-flight solve: the flux iterate, its
/// convergence trackers, and the replay plan it records or replays.
/// One per queued request in a session; [`solve_parallel_impl`] owns
/// exactly one.
pub(crate) struct SolveProgress {
    pub(crate) materials: Arc<MaterialSet>,
    pub(crate) max_iterations: usize,
    pub(crate) tolerance: f64,
    pub(crate) phi: Vec<f64>,
    pub(crate) iterations: usize,
    pub(crate) residual: f64,
    pub(crate) stats: Vec<RunStats>,
    pub(crate) plan: Option<Arc<CoarsePlan>>,
    pub(crate) plan_from_cache: bool,
    pub(crate) coarse_build_seconds: f64,
    /// Trace span id stamped on this solve's epochs (`0` = none); a
    /// session driver assigns one per ticket so a request's epochs can
    /// be found in an exported Chrome trace.
    pub(crate) span: u64,
}

impl SolveProgress {
    /// Seal the solve into its public result.
    pub(crate) fn into_solution(self) -> SnSolution {
        SnSolution {
            phi: self.phi,
            iterations: self.iterations,
            residual: self.residual,
            stats: self.stats,
            coarse_build_seconds: self.coarse_build_seconds,
            plan_from_cache: self.plan_from_cache,
        }
    }
}

/// What [`advance_one_epoch`] did.
pub(crate) struct EpochOutcome {
    /// The solve is finished: converged below its tolerance, or out of
    /// iterations.
    pub(crate) done: bool,
    /// The epoch replayed a coarse plan (vs running the fine path).
    pub(crate) replayed: bool,
}

/// Run exactly one source iteration of `progress` against `world`:
/// pick the scheduling mode, run the sweep as an epoch of the resident
/// universe (launching it lazily on the first epoch; the non-resident
/// configuration spawns a one-shot runtime instead), fold the flux,
/// update the convergence trackers, and compile/store the replay plan
/// when this was the recording iteration. This is the loop body of
/// [`solve_parallel`], exposed step-wise so a
/// [`crate::session::SolverSession`] can interleave epochs of many
/// concurrent solves on one world — running a request's epochs through
/// this function back-to-back is *exactly* a [`solve_parallel_cached`]
/// call, which is what makes session results bit-identical to solo
/// solves.
///
/// `Err` means the epoch was poisoned (see
/// [`jsweep_core::universe::Universe::run_epoch`]): `progress` is left
/// exactly as it was before the epoch — no stats entry, no iteration
/// count, no flux update — and the shared bins are scrubbed of partial
/// deposits, so the caller may retry the same iteration on a
/// relaunched universe and still get the bit-identical flux sequence.
/// The faulted universe itself is *not* retired here; the caller
/// decides between retry, relaunch and teardown.
pub(crate) fn advance_one_epoch<T: SweepTopology + Send + Sync + 'static>(
    world: &mut EpochWorld<T>,
    progress: &mut SolveProgress,
    cache: Option<&PlanCache>,
) -> Result<EpochOutcome, EpochFault> {
    let n = world.mesh.num_cells();
    let groups = progress.materials.num_groups();
    let (mode, bins) = select_mode(
        &progress.plan,
        world.config.coarsen,
        world.problem.num_tasks(),
    );
    let replayed = matches!(mode, SweepMode::Coarse { .. });
    let (stats, phi_new) = if world.config.resident {
        let emission = Arc::new(emission_density(&progress.materials, &progress.phi));
        let materials = progress.materials.clone();
        let u = world.universe.get_or_insert_with(|| {
            let factory = Arc::new(SweepFactory::new(SweepSetup {
                mesh: world.mesh.clone(),
                problem: world.problem.clone(),
                quadrature: world.quadrature.clone(),
                materials: materials.clone(),
                emission: emission.clone(),
                kernel: world.config.kernel,
                grain: world.config.grain,
                flux_bins: world.flux_bins.clone(),
                mode: mode.clone(),
            }));
            Universe::launch_with_fabric(
                world.problem.patches.num_ranks(),
                factory,
                world.base.clone(),
                fabric_for(world.config.transport),
            )
        });
        world.resident_groups = Some(groups);
        let mut tuning = tuning_for(&mode, &world.base);
        tuning.span = progress.span;
        // The epoch input carries the materials so a resident program
        // built for an earlier request adopts this solve's cross
        // sections on reset (first-epoch programs get them through the
        // factory instead).
        let rank_stats = match u.run_epoch_tuned(
            Arc::new(SweepEpoch {
                emission,
                mode,
                materials: Some(materials),
            }),
            tuning,
        ) {
            Ok(s) => s,
            Err(f) => {
                // Abandoned programs may have deposited a subset of
                // this epoch's flux; scrub it so the bins are clean
                // for whatever the caller runs next.
                world.clear_flux_bins();
                return Err(f);
            }
        };
        let phi_new = world.flux_bins.fold(&world.problem, n, groups);
        (RunStats::aggregate(&rank_stats), phi_new)
    } else {
        sweep_iteration(
            &world.mesh,
            &world.problem,
            &world.quadrature,
            &progress.materials,
            &world.config,
            &progress.phi,
            mode,
        )
    };
    progress.stats.push(stats);

    progress.iterations += 1;
    progress.residual = relative_change(&phi_new, &progress.phi);
    progress.phi = phi_new;
    let done =
        progress.residual < progress.tolerance || progress.iterations >= progress.max_iterations;

    // Compile the replay plan once the recording iteration is in.
    // Without a cache this is skipped when no iteration remains to
    // replay it (converged, or max_iterations exhausted); with a cache
    // the plan is still compiled and offered — future solves replay it
    // even if this one is done — but only *opportunistically*: a plan
    // this solve will never replay must not evict plans other requests
    // are actively hitting out of an at-capacity cache.
    if let Some(b) = bins {
        if !done || cache.is_some() {
            let tc0 = world.config.telemetry.global_now();
            let traces = collect_traces(&world.problem, &b);
            let built = Arc::new(build_plan(&world.problem, &traces, world.mesh.as_ref()));
            world.config.telemetry.global_span(
                EventKind::PlanCompile,
                tc0,
                world.problem.mesh_generation,
                0,
            );
            progress.coarse_build_seconds = built.build_seconds;
            if let (Some(c), Some(k)) = (cache, world.key) {
                if done {
                    c.insert_opportunistic(k, built.clone());
                } else {
                    c.insert(k, built.clone());
                }
            }
            progress.plan = Some(built);
        }
    }
    Ok(EpochOutcome { done, replayed })
}

fn solve_parallel_impl<T: SweepTopology + Send + Sync + 'static>(
    mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    quadrature: &QuadratureSet,
    materials: Arc<MaterialSet>,
    config: &SnConfig,
    cache: Option<&PlanCache>,
) -> SnSolution {
    let mut world = EpochWorld::new(mesh, problem, quadrature.clone(), config.clone());
    let mut progress = world.begin_solve(materials, config.max_iterations, config.tolerance, cache);
    while progress.iterations < progress.max_iterations {
        // The solo API keeps fail-fast semantics: there is exactly one
        // request, so nothing is saved by containing its fault. The
        // session driver is the caller that maps `Err` to a per-ticket
        // failure instead.
        match advance_one_epoch(&mut world, &mut progress, cache) {
            Ok(o) if o.done => break,
            Ok(_) => {}
            Err(f) => {
                world.retire();
                panic!("sweep epoch faulted: {f}");
            }
        }
    }
    world.retire();
    progress.into_solution()
}

/// One rank's share of a parallel solve, for worlds where ranks are
/// **separate processes** connected by a process-grade [`jsweep_comm::Comm`]
/// (typically [`jsweep_comm::socket::SocketUniverse::connect`]).
///
/// Every process calls this with the *same* mesh, problem, quadrature,
/// materials and config, plus its own endpoint; the function runs the
/// full source-iteration loop SPMD-style — each iteration sweeps this
/// rank's patches as one epoch of a resident [`SpmdRank`], folds the
/// local flux contributions, and completes the iterate with
/// [`jsweep_comm::Comm::allreduce_sum_f64_slice`] (per-patch supports are disjoint
/// and the reduction accumulates in rank order, so the summed flux is
/// bit-identical to the single-process solve's angle-ordered fold).
/// Convergence decisions are therefore identical in every process, and
/// the returned [`SnSolution::phi`] is the **global** flux.
///
/// Always runs the fine scheduling path ([`SnConfig::coarsen`] is
/// ignored): replay recording assumes the single-process fold.
/// [`SnSolution::stats`] carries *this rank's* per-iteration stats.
///
/// # Panics
///
/// Fail-fast like [`solve_parallel`]: a poisoned epoch or a dead peer
/// panics this process (peers then observe the death through the
/// transport). Session-tier containment wraps the thread-backed
/// universe instead.
pub fn solve_parallel_spmd<T: SweepTopology + Send + Sync + 'static>(
    mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    quadrature: &QuadratureSet,
    materials: Arc<MaterialSet>,
    config: &SnConfig,
    comm: jsweep_comm::Comm,
) -> SnSolution {
    let n = mesh.num_cells();
    let groups = materials.num_groups();
    assert_eq!(materials.num_cells(), n, "materials must cover the mesh");
    assert_eq!(
        comm.size(),
        problem.patches.num_ranks(),
        "comm world size must match the problem's rank decomposition"
    );
    let flux_bins = Arc::new(FluxBins::new(problem.num_patches()));
    let base = RuntimeConfig {
        num_workers: config.workers_per_rank,
        termination: config.termination,
        watchdog: config.watchdog,
        fault_plan: config.fault_plan.clone(),
        telemetry: config.telemetry.clone(),
        ..Default::default()
    };
    let mut phi = vec![0.0; n * groups];
    let factory = Arc::new(SweepFactory::new(SweepSetup {
        mesh: mesh.clone(),
        problem: problem.clone(),
        quadrature: quadrature.clone(),
        materials: materials.clone(),
        emission: Arc::new(emission_density(&materials, &phi)),
        kernel: config.kernel,
        grain: config.grain,
        flux_bins: flux_bins.clone(),
        mode: SweepMode::Fine { trace_bins: None },
    }));
    let tuning = EpochTuning {
        report_flush_streams: Some(base.report_flush_streams),
        claim_batch: Some(base.claim_batch),
        ..Default::default()
    };
    let mut rank = SpmdRank::launch(comm, factory, &base);
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    let mut stats = Vec::new();
    for _ in 0..config.max_iterations {
        // The first epoch runs the factory-fresh programs (which carry
        // this emission already); later epochs adopt it through reset.
        let input: Arc<jsweep_core::EpochInput> = Arc::new(SweepEpoch {
            emission: Arc::new(emission_density(&materials, &phi)),
            mode: SweepMode::Fine { trace_bins: None },
            materials: Some(materials.clone()),
        });
        let rank_stats = rank
            .run_epoch(&input, tuning)
            .unwrap_or_else(|f| panic!("sweep epoch faulted: {f}"));
        stats.push(rank_stats);
        // Local patches deposited into their bins; remote patches' bins
        // are empty, so the fold yields this rank's disjoint share and
        // the rank-ordered reduction completes the global iterate.
        let mut phi_new = flux_bins.fold(&problem, n, groups);
        rank.comm_mut()
            .allreduce_sum_f64_slice(&mut phi_new)
            .unwrap_or_else(|e| panic!("flux reduction failed: {e}"));
        iterations += 1;
        residual = relative_change(&phi_new, &phi);
        phi = phi_new;
        if residual < config.tolerance {
            break;
        }
    }
    rank.shutdown();
    SnSolution {
        phi,
        iterations,
        residual,
        stats,
        coarse_build_seconds: 0.0,
        plan_from_cache: false,
    }
}

/// Run a single fine-mode parallel sweep iteration (zero incoming
/// flux) recording every task's cluster formation; returns the traces
/// as `traces[angle][patch]` — the layout
/// [`crate::replay::build_plan`] and
/// [`jsweep_graph::coarse::build_coarse`] consume.
///
/// This is the recording half of §V-E exposed on its own, for tests
/// and benchmarks that want to inspect real solver traces (e.g. the
/// Theorem-1 property test).
pub fn record_cluster_traces<T: SweepTopology + Send + Sync + 'static>(
    mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    quadrature: &QuadratureSet,
    materials: Arc<MaterialSet>,
    config: &SnConfig,
) -> Vec<Vec<ClusterTrace>> {
    let bins = Arc::new(new_trace_bins(problem.num_tasks()));
    let phi = vec![0.0; mesh.num_cells() * materials.num_groups()];
    let _ = sweep_iteration(
        &mesh,
        &problem,
        quadrature,
        &materials,
        config,
        &phi,
        SweepMode::Fine {
            trace_bins: Some(bins.clone()),
        },
    );
    let mut traces = collect_traces(&problem, &bins);
    // Only canonical angles record; fill octant members with their
    // canonical trace (valid for the shared DAG) so every angle's
    // entry covers its subgraph — the layout contract of this API.
    for a in 0..problem.num_angles {
        let c = problem.canonical_angle(a);
        if c < a {
            traces[a] = traces[c].clone();
        }
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xs::Material;
    use jsweep_graph::problem::ProblemOptions;
    use jsweep_mesh::{partition, StructuredMesh};

    fn simple_config() -> SnConfig {
        SnConfig {
            max_iterations: 8,
            tolerance: 1e-9,
            grain: 16,
            ..Default::default()
        }
    }

    #[test]
    fn serial_infinite_medium() {
        // Pure absorber with uniform source: φ → Q V-independent value
        // in the interior... with vacuum boundaries the flux is below
        // Q/σ_a; just verify positivity, symmetry and convergence.
        let m = StructuredMesh::unit(6, 6, 6);
        let mats = MaterialSet::homogeneous(216, Material::uniform(1, 1.0, 0.5, 1.0));
        let q = QuadratureSet::sn(2);
        let sol = solve_serial(&m, &q, &mats, &simple_config());
        assert!(sol.phi.iter().all(|&x| x > 0.0));
        // Centre flux above face-adjacent flux (leakage at the border).
        let centre = m.cell_id(3, 3, 3);
        let corner = m.cell_id(0, 0, 0);
        assert!(sol.phi[centre] > sol.phi[corner]);
        // Mirror symmetry of the cube problem.
        let a = m.cell_id(1, 2, 3);
        let b = m.cell_id(4, 3, 2);
        assert!((sol.phi[a] - sol.phi[b]).abs() < 1e-10 * sol.phi[a].abs());
    }

    #[test]
    fn serial_no_scattering_converges_in_two_iterations() {
        // Without scattering the source never changes: iteration 2 sees
        // zero change.
        let m = StructuredMesh::unit(4, 4, 4);
        let mats = MaterialSet::homogeneous(64, Material::uniform(1, 2.0, 0.0, 1.0));
        let q = QuadratureSet::sn(2);
        let sol = solve_serial(&m, &q, &mats, &simple_config());
        assert_eq!(sol.iterations, 2);
        assert!(sol.residual < 1e-15);
    }

    #[test]
    fn parallel_matches_serial_structured() {
        let m = Arc::new(StructuredMesh::unit(6, 6, 6));
        let mats = Arc::new(MaterialSet::homogeneous(
            216,
            Material::uniform(1, 1.0, 0.4, 1.0),
        ));
        let quad = QuadratureSet::sn(2);
        let cfg = simple_config();
        let serial = solve_serial(m.as_ref(), &quad, &mats, &cfg);

        let ps = partition::decompose_structured(&m, (3, 3, 3), 2);
        let prob = Arc::new(SweepProblem::build(
            m.as_ref(),
            ps,
            &quad,
            &ProblemOptions {
                share_octant_dags: true,
                ..Default::default()
            },
        ));
        let parallel = solve_parallel(m.clone(), prob, &quad, mats, &cfg);
        assert_eq!(parallel.iterations, serial.iterations);
        for (a, b) in parallel.phi.iter().zip(&serial.phi) {
            assert!(
                (a - b).abs() <= 1e-11 * b.abs().max(1e-30),
                "flux mismatch {a} vs {b}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_unstructured() {
        let m = Arc::new(jsweep_mesh::tetgen::ball(3, 1.0));
        let n = m.num_cells();
        let mats = Arc::new(MaterialSet::homogeneous(
            n,
            Material::uniform(2, 1.5, 0.6, 2.0),
        ));
        let quad = QuadratureSet::sn(2);
        let cfg = simple_config();
        let serial = solve_serial(m.as_ref(), &quad, &mats, &cfg);
        let ps = partition::decompose_unstructured(m.as_ref(), 60, 2);
        let prob = Arc::new(SweepProblem::build(
            m.as_ref(),
            ps,
            &quad,
            &ProblemOptions::default(),
        ));
        let parallel = solve_parallel(m.clone(), prob, &quad, mats, &cfg);
        for (a, b) in parallel.phi.iter().zip(&serial.phi) {
            assert!(
                (a - b).abs() <= 1e-11 * b.abs().max(1e-30),
                "flux mismatch {a} vs {b}"
            );
        }
    }

    #[test]
    fn parallel_deterministic_across_runs() {
        let m = Arc::new(StructuredMesh::unit(4, 4, 4));
        let mats = Arc::new(MaterialSet::homogeneous(
            64,
            Material::uniform(1, 1.0, 0.3, 1.0),
        ));
        let quad = QuadratureSet::sn(2);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let prob = Arc::new(SweepProblem::build(
            m.as_ref(),
            ps,
            &quad,
            &ProblemOptions::default(),
        ));
        let cfg = simple_config();
        let a = solve_parallel(m.clone(), prob.clone(), &quad, mats.clone(), &cfg);
        let b = solve_parallel(m.clone(), prob, &quad, mats, &cfg);
        assert_eq!(
            a.phi, b.phi,
            "angle-ordered reduction must be deterministic"
        );
    }

    #[test]
    fn final_iteration_plan_compile_respects_cache_capacity() {
        // A solve that ends on its recording iteration still compiles
        // its plan for future solves — but only opportunistically: at
        // LruBytes capacity the compile must not thrash a plan other
        // requests are hitting. Pinned here because the original
        // insert-then-evict path evicted the resident plan first.
        use crate::replay::{EvictionPolicy, PlanCache};
        let m = Arc::new(StructuredMesh::unit(4, 4, 4));
        let mats = Arc::new(MaterialSet::homogeneous(
            64,
            Material::uniform(1, 1.0, 0.3, 1.0),
        ));
        let quad = QuadratureSet::sn(2);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let prob = Arc::new(SweepProblem::build(
            m.as_ref(),
            ps,
            &quad,
            &ProblemOptions::default(),
        ));
        // `max_iterations: 1` makes the recording iteration the last
        // one, forcing the opportunistic-compile path.
        let cfg = SnConfig {
            max_iterations: 1,
            grain: 16,
            ..Default::default()
        };
        // The resident "hot" plan of some other shape, filling the
        // budget exactly.
        let hot_key = plan_key(&prob, 999);
        let hot_plan = Arc::new(CoarsePlan {
            tasks: Vec::new(),
            build_seconds: 0.0,
            mesh_generation: prob.mesh_generation,
        });
        let full = PlanCache::with_policy(EvictionPolicy::LruBytes {
            max_bytes: hot_plan.memory_bytes(),
        });
        full.insert(hot_key, hot_plan);
        let sol = solve_parallel_cached(m.clone(), prob.clone(), &quad, mats.clone(), &cfg, &full);
        assert_eq!(sol.iterations, 1);
        assert!(
            sol.coarse_build_seconds > 0.0,
            "plan was still compiled for the caller"
        );
        assert_eq!(full.len(), 1, "declined insert leaves the cache as found");
        assert!(full.get(&hot_key).is_some(), "hot plan survives");
        assert_eq!(full.evictions(), 0);
        // With headroom the same solve's plan is cached and the next
        // solve replays it from iteration 1.
        let roomy = PlanCache::with_policy(EvictionPolicy::LruBytes {
            max_bytes: usize::MAX,
        });
        let a = solve_parallel_cached(m.clone(), prob.clone(), &quad, mats.clone(), &cfg, &roomy);
        assert!(!a.plan_from_cache);
        assert_eq!(roomy.len(), 1);
        let b = solve_parallel_cached(m.clone(), prob.clone(), &quad, mats.clone(), &cfg, &roomy);
        assert!(b.plan_from_cache, "second solve replays the cached plan");
        assert_eq!(a.phi, b.phi, "fine and replay iterations are bit-identical");
    }

    #[test]
    fn diamond_difference_differs_from_step_but_agrees_in_parallel() {
        let m = Arc::new(StructuredMesh::unit(4, 4, 4));
        let mats = Arc::new(MaterialSet::homogeneous(
            64,
            Material::uniform(1, 1.0, 0.3, 1.0),
        ));
        let quad = QuadratureSet::sn(2);
        let mut cfg = simple_config();
        cfg.kernel = KernelKind::DiamondDifference;
        let serial = solve_serial(m.as_ref(), &quad, &mats, &cfg);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let prob = Arc::new(SweepProblem::build(
            m.as_ref(),
            ps,
            &quad,
            &ProblemOptions::default(),
        ));
        let parallel = solve_parallel(m.clone(), prob, &quad, mats.clone(), &cfg);
        for (a, b) in parallel.phi.iter().zip(&serial.phi) {
            assert!((a - b).abs() <= 1e-11 * b.abs().max(1e-30));
        }
        // And DD really is a different discretisation from Step.
        let mut cfg2 = simple_config();
        cfg2.kernel = KernelKind::Step;
        let step = solve_serial(m.as_ref(), &quad, &mats, &cfg2);
        let diff: f64 = step
            .phi
            .iter()
            .zip(&serial.phi)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "DD and Step should differ");
    }
}
