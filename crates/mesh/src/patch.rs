//! Patches: the unit of mesh management, scheduling and communication.
//!
//! A [`PatchSet`] is a partition of the mesh's cells into patches plus an
//! assignment of patches to ranks (processes). Terminology follows the
//! paper (§II-A): *local cells* are the cells owned by a patch; *ghost
//! cells* are the cells of neighbouring patches reachable through one
//! face, known to a patch so it can address incoming upwind data.

use crate::SweepTopology;

/// Identifier of a patch within a [`PatchSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatchId(pub u32);

impl PatchId {
    /// The id as a `usize` array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A partition of cells into patches, with an optional rank assignment.
#[derive(Debug, Clone)]
pub struct PatchSet {
    /// `cell -> patch` map.
    patch_of: Vec<u32>,
    /// Concatenated cell lists, one contiguous run per patch.
    cells: Vec<u32>,
    /// CSR offsets into `cells`, length `num_patches + 1`.
    offsets: Vec<u32>,
    /// `cell -> index within its patch's cell list`.
    local_index: Vec<u32>,
    /// `patch -> rank`; all zeros until [`PatchSet::distribute`] is called.
    rank_of: Vec<u32>,
    /// Number of ranks patches are distributed over.
    num_ranks: usize,
}

impl PatchSet {
    /// Build from a `cell -> patch` assignment.
    ///
    /// # Panics
    /// Panics when `num_patches == 0`, when an assignment is out of
    /// range, or when some patch ends up empty.
    pub fn from_assignment(patch_of: Vec<u32>, num_patches: usize) -> PatchSet {
        assert!(num_patches > 0, "no patches");
        assert!(!patch_of.is_empty(), "no cells");
        let mut counts = vec![0u32; num_patches];
        for (cell, &p) in patch_of.iter().enumerate() {
            assert!(
                (p as usize) < num_patches,
                "cell {cell}: patch {p} out of range ({num_patches} patches)"
            );
            counts[p as usize] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert!(c > 0, "patch {p} is empty");
        }
        let mut offsets = vec![0u32; num_patches + 1];
        for p in 0..num_patches {
            offsets[p + 1] = offsets[p] + counts[p];
        }
        let mut cells = vec![0u32; patch_of.len()];
        let mut local_index = vec![0u32; patch_of.len()];
        let mut cursor = offsets[..num_patches].to_vec();
        for (cell, &p) in patch_of.iter().enumerate() {
            let slot = cursor[p as usize];
            cells[slot as usize] = cell as u32;
            local_index[cell] = slot - offsets[p as usize];
            cursor[p as usize] += 1;
        }
        PatchSet {
            patch_of,
            cells,
            offsets,
            local_index,
            rank_of: vec![0; num_patches],
            num_ranks: 1,
        }
    }

    /// One patch containing every cell (serial / baseline setups).
    pub fn single(num_cells: usize) -> PatchSet {
        PatchSet::from_assignment(vec![0; num_cells], 1)
    }

    /// Number of patches.
    pub fn num_patches(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of cells in the underlying mesh.
    pub fn num_cells(&self) -> usize {
        self.patch_of.len()
    }

    /// All patch ids.
    pub fn patches(&self) -> impl Iterator<Item = PatchId> {
        (0..self.num_patches() as u32).map(PatchId)
    }

    /// Cells owned by patch `p` (its *local cells*).
    #[inline]
    pub fn cells(&self, p: PatchId) -> &[u32] {
        let lo = self.offsets[p.index()] as usize;
        let hi = self.offsets[p.index() + 1] as usize;
        &self.cells[lo..hi]
    }

    /// The patch owning a cell.
    #[inline]
    pub fn patch_of(&self, cell: usize) -> PatchId {
        PatchId(self.patch_of[cell])
    }

    /// Index of `cell` within its owning patch's cell list.
    #[inline]
    pub fn local_index(&self, cell: usize) -> usize {
        self.local_index[cell] as usize
    }

    /// Ghost cells of patch `p`: cells of other patches sharing a face
    /// with a local cell, deduplicated and sorted.
    pub fn ghost_cells<T: SweepTopology + ?Sized>(&self, p: PatchId, mesh: &T) -> Vec<u32> {
        let mut ghosts: Vec<u32> = self
            .cells(p)
            .iter()
            .flat_map(|&c| mesh.neighbors(c as usize))
            .filter(|&nb| self.patch_of[nb] != p.0)
            .map(|nb| nb as u32)
            .collect();
        ghosts.sort_unstable();
        ghosts.dedup();
        ghosts
    }

    /// Patches adjacent to `p` (sharing at least one cell face).
    pub fn neighbor_patches<T: SweepTopology + ?Sized>(
        &self,
        p: PatchId,
        mesh: &T,
    ) -> Vec<PatchId> {
        let mut nbs: Vec<u32> = self
            .ghost_cells(p, mesh)
            .iter()
            .map(|&g| self.patch_of[g as usize])
            .collect();
        nbs.sort_unstable();
        nbs.dedup();
        nbs.into_iter().map(PatchId).collect()
    }

    /// Assign patches to ranks explicitly.
    ///
    /// # Panics
    /// Panics when the assignment length differs from the patch count,
    /// a rank is out of range, or some rank receives no patch.
    pub fn distribute(&mut self, rank_of: Vec<u32>, num_ranks: usize) {
        assert_eq!(rank_of.len(), self.num_patches(), "assignment length");
        assert!(num_ranks > 0);
        let mut seen = vec![false; num_ranks];
        for (p, &r) in rank_of.iter().enumerate() {
            assert!((r as usize) < num_ranks, "patch {p}: rank {r} out of range");
            seen[r as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some rank received no patches; use fewer ranks"
        );
        self.rank_of = rank_of;
        self.num_ranks = num_ranks;
    }

    /// Distribute patches over ranks in contiguous runs of the given
    /// patch order (e.g. a space-filling-curve order), balancing cell
    /// counts.
    pub fn distribute_in_order(&mut self, order: &[usize], num_ranks: usize) {
        assert_eq!(order.len(), self.num_patches());
        assert!(num_ranks > 0 && num_ranks <= self.num_patches());
        let total = self.num_cells();
        let per_rank = total as f64 / num_ranks as f64;
        let mut rank_of = vec![0u32; self.num_patches()];
        let mut acc = 0usize;
        for &p in order {
            // Rank by cumulative cell midpoint, clamped to range.
            let mid = acc + self.cells(PatchId(p as u32)).len() / 2;
            let r = ((mid as f64 / per_rank) as usize).min(num_ranks - 1);
            rank_of[p] = r as u32;
            acc += self.cells(PatchId(p as u32)).len();
        }
        // Contiguous runs can leave a rank empty when patches are few;
        // repair by stealing from the most loaded neighbour run.
        repair_empty_ranks(&mut rank_of, num_ranks, order);
        self.distribute(rank_of, num_ranks);
    }

    /// Rank owning patch `p`.
    #[inline]
    pub fn rank_of(&self, p: PatchId) -> usize {
        self.rank_of[p.index()] as usize
    }

    /// Number of ranks in the current distribution.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Patches assigned to rank `r`.
    pub fn patches_on_rank(&self, r: usize) -> Vec<PatchId> {
        self.rank_of
            .iter()
            .enumerate()
            .filter(|&(_, &rk)| rk as usize == r)
            .map(|(p, _)| PatchId(p as u32))
            .collect()
    }
}

/// Ensure every rank owns at least one patch by reassigning single
/// patches from the start of over-full runs, walking the given order.
fn repair_empty_ranks(rank_of: &mut [u32], num_ranks: usize, order: &[usize]) {
    loop {
        let mut counts = vec![0usize; num_ranks];
        for &r in rank_of.iter() {
            counts[r as usize] += 1;
        }
        let Some(empty) = counts.iter().position(|&c| c == 0) else {
            return;
        };
        // Take one patch from the largest rank.
        let donor = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(r, _)| r)
            .unwrap();
        let victim = order
            .iter()
            .find(|&&p| rank_of[p] as usize == donor)
            .copied()
            .expect("donor rank must own a patch");
        rank_of[victim] = empty as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::StructuredMesh;

    fn striped(nx: usize) -> (StructuredMesh, PatchSet) {
        // 1-D stripes along x of a nx×2×2 mesh, one patch per x index.
        let m = StructuredMesh::unit(nx, 2, 2);
        let patch_of: Vec<u32> = (0..m.num_cells())
            .map(|c| (m.cell_ijk(c).0) as u32)
            .collect();
        let ps = PatchSet::from_assignment(patch_of, nx);
        (m, ps)
    }

    #[test]
    fn csr_lists_are_consistent() {
        let (_, ps) = striped(4);
        assert_eq!(ps.num_patches(), 4);
        let mut seen = vec![false; ps.num_cells()];
        for p in ps.patches() {
            for (li, &c) in ps.cells(p).iter().enumerate() {
                assert_eq!(ps.patch_of(c as usize), p);
                assert_eq!(ps.local_index(c as usize), li);
                assert!(!seen[c as usize]);
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ghost_cells_are_face_neighbors_in_other_patches() {
        let (m, ps) = striped(4);
        let ghosts = ps.ghost_cells(PatchId(1), &m);
        // Stripe 1 borders stripes 0 and 2: 4 cells each.
        assert_eq!(ghosts.len(), 8);
        for &g in &ghosts {
            assert_ne!(ps.patch_of(g as usize), PatchId(1));
        }
    }

    #[test]
    fn neighbor_patches_of_stripes() {
        let (m, ps) = striped(4);
        assert_eq!(ps.neighbor_patches(PatchId(0), &m), vec![PatchId(1)]);
        assert_eq!(
            ps.neighbor_patches(PatchId(2), &m),
            vec![PatchId(1), PatchId(3)]
        );
    }

    #[test]
    fn distribute_round_trip() {
        let (_, mut ps) = striped(4);
        ps.distribute(vec![0, 0, 1, 1], 2);
        assert_eq!(ps.rank_of(PatchId(0)), 0);
        assert_eq!(ps.rank_of(PatchId(3)), 1);
        assert_eq!(ps.patches_on_rank(1), vec![PatchId(2), PatchId(3)]);
    }

    #[test]
    fn distribute_in_order_balances_cells() {
        let (_, mut ps) = striped(8);
        let order: Vec<usize> = (0..8).collect();
        ps.distribute_in_order(&order, 4);
        for r in 0..4 {
            assert_eq!(ps.patches_on_rank(r).len(), 2, "rank {r}");
        }
    }

    #[test]
    fn distribute_in_order_leaves_no_rank_empty() {
        let (_, mut ps) = striped(5);
        ps.distribute_in_order(&[0, 1, 2, 3, 4], 5);
        for r in 0..5 {
            assert!(!ps.patches_on_rank(r).is_empty(), "rank {r} empty");
        }
    }

    #[test]
    fn single_patch_owns_everything() {
        let ps = PatchSet::single(10);
        assert_eq!(ps.num_patches(), 1);
        assert_eq!(ps.cells(PatchId(0)).len(), 10);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_patch_rejected() {
        PatchSet::from_assignment(vec![0, 0, 2], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_rejected() {
        PatchSet::from_assignment(vec![0, 5], 2);
    }
}
