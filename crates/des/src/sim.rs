//! The discrete-event simulation core.
//!
//! Events are processed in virtual-time order from a binary heap. The
//! simulated resources per rank are `W` interchangeable workers and one
//! master thread (a serial resource whose queueing delay is modelled by
//! a "free from" clock). Scheduling decisions — which task a freed
//! worker picks, which vertices a compute call pops — are made by the
//! *real* scheduler code ([`jsweep_graph::SweepState`] + the two-level
//! priorities), so contention, pipeline fill and idle time emerge
//! rather than being assumed.

use crate::machine::MachineModel;
use jsweep_graph::coarse::{ClusterTrace, CoarseSweepState, CoarsenedTask};
use jsweep_graph::problem::SweepProblem;
use jsweep_graph::SweepState;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Vertex clustering grain `N` (paper §V-C).
    pub grain: usize,
    /// Record clustering traces (needed to build the coarsened graph).
    pub record_traces: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            grain: 64,
            record_traces: false,
        }
    }
}

/// Core-seconds per activity class (the data of Fig. 16).
#[derive(Debug, Clone, Default)]
pub struct DesBreakdown {
    /// Numerical kernel time (workers).
    pub kernel: f64,
    /// DAG bookkeeping + scheduling overhead (workers).
    pub graph_op: f64,
    /// Stream pack/unpack time (masters).
    pub pack_unpack: f64,
    /// Stream routing/handling time (masters).
    pub comm: f64,
    /// Idle core time (workers waiting + masters between streams).
    pub idle: f64,
}

impl DesBreakdown {
    /// Total core-seconds.
    pub fn total(&self) -> f64 {
        self.kernel + self.graph_op + self.pack_unpack + self.comm + self.idle
    }
}

/// Result of one simulated sweep iteration.
#[derive(Debug, Clone, Default)]
pub struct DesResult {
    /// Virtual wall-clock of the sweep (seconds).
    pub time: f64,
    /// Vertices computed.
    pub vertices: u64,
    /// Compute calls (patch-program executions).
    pub compute_calls: u64,
    /// Inter-rank messages.
    pub messages: u64,
    /// Inter-rank bytes.
    pub bytes: f64,
    /// Core-seconds breakdown.
    pub breakdown: DesBreakdown,
    /// Clustering traces (`traces[angle][patch]`), when recorded.
    pub traces: Vec<Vec<ClusterTrace>>,
}

impl DesResult {
    /// Parallel efficiency versus a reference point:
    /// `(t_ref · cores_ref) / (t · cores)`.
    pub fn efficiency_vs(&self, reference: &DesResult, cores: usize, cores_ref: usize) -> f64 {
        (reference.time * cores_ref as f64) / (self.time * cores as f64)
    }
}

/// One outgoing stream group of a compute call.
struct OutGroup {
    dst_tid: usize,
    /// Receive keys at the target (fine: local vertex ids; coarse: the
    /// target cluster, once).
    keys: Vec<u32>,
    /// Face-data items carried (for message sizing).
    items: usize,
}

/// What the simulator needs from a task collection. Implemented by the
/// fine (per-vertex) and coarse (per-cluster) models.
trait TaskModel {
    fn num_tasks(&self) -> usize;
    fn rank_of(&self, tid: usize) -> usize;
    fn priority(&self, tid: usize) -> i64;
    /// Execute one compute call; returns (work units popped, outputs).
    fn pop(&mut self, tid: usize, grain: usize) -> (u64, Vec<OutGroup>);
    fn receive(&mut self, tid: usize, keys: &[u32]);
    fn has_ready(&self, tid: usize) -> bool;
    fn verify_complete(&self) -> Result<(), String>;
    /// DAG-bookkeeping units charged for a compute call that popped
    /// `work` vertices: the fine model updates one counter set per
    /// vertex; the coarse model touches only cluster-level counters
    /// (the §V-E saving), so it charges a single unit per call.
    fn graph_units(&self, work: u64) -> f64 {
        work as f64
    }
    /// Hand back recorded clustering traces (fine model only).
    fn take_traces(&mut self) -> Vec<Vec<ClusterTrace>> {
        Vec::new()
    }
}

/// Fine (DAG) model: one `SweepState` per (patch, angle).
struct FineModel<'a> {
    prob: &'a SweepProblem,
    states: Vec<SweepState>,
    traces: Option<Vec<Vec<ClusterTrace>>>,
    /// Scratch: group buffer reused across pops.
    groups: std::collections::HashMap<usize, Vec<u32>>,
}

impl<'a> FineModel<'a> {
    fn new(prob: &'a SweepProblem, record_traces: bool) -> FineModel<'a> {
        let mut states = Vec::with_capacity(prob.num_tasks());
        for a in 0..prob.num_angles {
            let subs = &prob.subs[a];
            let prios = &prob.vprio[a];
            for p in 0..prob.num_patches() {
                states.push(SweepState::new(&subs[p], prios[p].clone()));
            }
        }
        let traces = record_traces
            .then(|| vec![vec![ClusterTrace::default(); prob.num_patches()]; prob.num_angles]);
        FineModel {
            prob,
            states,
            traces,
            groups: Default::default(),
        }
    }
}

impl TaskModel for FineModel<'_> {
    fn num_tasks(&self) -> usize {
        self.prob.num_tasks()
    }

    fn rank_of(&self, tid: usize) -> usize {
        let (p, _) = self.prob.patch_angle(tid);
        self.prob.patches.rank_of(jsweep_mesh::PatchId(p as u32))
    }

    fn priority(&self, tid: usize) -> i64 {
        let (p, a) = self.prob.patch_angle(tid);
        self.prob.pprio[a][p]
    }

    fn pop(&mut self, tid: usize, grain: usize) -> (u64, Vec<OutGroup>) {
        let (p, a) = self.prob.patch_angle(tid);
        let sub = &self.prob.subs[a][p];
        let patches = &self.prob.patches;
        self.groups.clear();
        let groups = &mut self.groups;
        let cluster = self.states[tid].pop_cluster(sub, grain, |_v, re| {
            let dst_local = patches.local_index(re.cell as usize) as u32;
            groups.entry(re.patch.index()).or_default().push(dst_local);
        });
        if let Some(traces) = &mut self.traces {
            traces[a][p].record(cluster.clone());
        }
        let mut out: Vec<OutGroup> = groups
            .drain()
            .map(|(dst_patch, keys)| OutGroup {
                dst_tid: self.prob.tid(dst_patch, a),
                items: keys.len(),
                keys,
            })
            .collect();
        out.sort_by_key(|g| g.dst_tid);
        (cluster.len() as u64, out)
    }

    fn receive(&mut self, tid: usize, keys: &[u32]) {
        for &k in keys {
            self.states[tid].receive(k);
        }
    }

    fn has_ready(&self, tid: usize) -> bool {
        self.states[tid].has_ready()
    }

    fn verify_complete(&self) -> Result<(), String> {
        for (tid, st) in self.states.iter().enumerate() {
            if !st.is_complete() {
                let (p, a) = self.prob.patch_angle(tid);
                return Err(format!(
                    "deadlock: task (patch {p}, angle {a}) has {} vertices left",
                    st.remaining()
                ));
            }
        }
        Ok(())
    }

    fn take_traces(&mut self) -> Vec<Vec<ClusterTrace>> {
        self.traces.take().unwrap_or_default()
    }
}

/// Coarse (CG) model: one `CoarseSweepState` per (patch, angle).
struct CoarseModel<'a> {
    prob: &'a SweepProblem,
    /// `tasks[angle][patch]`.
    tasks: &'a [Vec<CoarsenedTask>],
    states: Vec<CoarseSweepState>,
}

impl<'a> CoarseModel<'a> {
    fn new(prob: &'a SweepProblem, tasks: &'a [Vec<CoarsenedTask>]) -> CoarseModel<'a> {
        assert_eq!(tasks.len(), prob.num_angles);
        let mut states = Vec::with_capacity(prob.num_tasks());
        for at in tasks {
            assert_eq!(at.len(), prob.num_patches());
            for t in at {
                states.push(CoarseSweepState::new(t));
            }
        }
        CoarseModel {
            prob,
            tasks,
            states,
        }
    }
}

impl TaskModel for CoarseModel<'_> {
    fn num_tasks(&self) -> usize {
        self.prob.num_tasks()
    }

    fn rank_of(&self, tid: usize) -> usize {
        let (p, _) = self.prob.patch_angle(tid);
        self.prob.patches.rank_of(jsweep_mesh::PatchId(p as u32))
    }

    fn priority(&self, tid: usize) -> i64 {
        let (p, a) = self.prob.patch_angle(tid);
        self.prob.pprio[a][p]
    }

    fn pop(&mut self, tid: usize, _grain: usize) -> (u64, Vec<OutGroup>) {
        let (p, a) = self.prob.patch_angle(tid);
        let task = &self.tasks[a][p];
        let Some(cv) = self.states[tid].pop(task) else {
            return (0, Vec::new());
        };
        let work = task.clusters[cv as usize].len() as u64;
        // One stream per target patch-program: coarse edges to several
        // clusters of the same program travel together.
        let mut grouped: std::collections::HashMap<usize, (Vec<u32>, usize)> = Default::default();
        for re in &task.remote[cv as usize] {
            let e = grouped.entry(re.patch.index()).or_default();
            e.0.push(re.cluster);
            e.1 += re.items.len();
        }
        let mut out: Vec<OutGroup> = grouped
            .into_iter()
            .map(|(dst_patch, (keys, items))| OutGroup {
                dst_tid: self.prob.tid(dst_patch, a),
                keys,
                items,
            })
            .collect();
        out.sort_by_key(|g| g.dst_tid);
        (work, out)
    }

    fn receive(&mut self, tid: usize, keys: &[u32]) {
        for &k in keys {
            self.states[tid].receive(k);
        }
    }

    fn has_ready(&self, tid: usize) -> bool {
        self.states[tid].has_ready()
    }

    fn verify_complete(&self) -> Result<(), String> {
        for (tid, st) in self.states.iter().enumerate() {
            if !st.is_complete() {
                let (p, a) = self.prob.patch_angle(tid);
                return Err(format!(
                    "deadlock: coarse task (patch {p}, angle {a}) has {} clusters left",
                    st.remaining()
                ));
            }
        }
        Ok(())
    }

    fn graph_units(&self, _work: u64) -> f64 {
        1.0
    }
}

/// Event payloads.
enum EventKind {
    /// A worker finished a compute call.
    Complete {
        rank: usize,
        tid: usize,
        out: Vec<OutGroup>,
    },
    /// A remote message reached the destination rank's NIC.
    Arrive {
        rank: usize,
        tid: usize,
        keys: Vec<u32>,
        bytes: f64,
    },
    /// The destination master handed the stream to the pool.
    Deliver { tid: usize, keys: Vec<u32> },
}

struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via Reverse at the call site; order by (time, seq).
        self.time
            .partial_cmp(&other.time)
            .expect("non-finite event time")
            .then(self.seq.cmp(&other.seq))
    }
}

/// The generic simulator core.
struct Sim<'m, M: TaskModel> {
    model: M,
    machine: &'m MachineModel,
    grain: usize,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Ready-task queues per rank (max-heap on priority, tie → lowest tid).
    queues: Vec<BinaryHeap<(i64, Reverse<usize>)>>,
    /// Idle workers per rank (count; all free ≤ current time).
    idle_workers: Vec<usize>,
    /// Task active flags (queued or running).
    active: Vec<bool>,
    /// Master "free from" clocks.
    master_free: Vec<f64>,
    /// Stats.
    result: DesResult,
    busy_worker_seconds: f64,
}

impl<'m, M: TaskModel> Sim<'m, M> {
    fn new(model: M, machine: &'m MachineModel, grain: usize) -> Sim<'m, M> {
        let ranks = machine.ranks;
        Sim {
            model,
            machine,
            grain,
            events: BinaryHeap::new(),
            seq: 0,
            queues: (0..ranks).map(|_| BinaryHeap::new()).collect(),
            idle_workers: vec![machine.workers_per_rank; ranks],
            active: Vec::new(),
            master_free: vec![0.0; ranks],
            result: DesResult::default(),
            busy_worker_seconds: 0.0,
        }
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn dispatch(&mut self, rank: usize, now: f64) {
        while self.idle_workers[rank] > 0 {
            let Some((_, Reverse(tid))) = self.queues[rank].pop() else {
                break;
            };
            self.idle_workers[rank] -= 1;
            let (work, out) = self.model.pop(tid, self.grain);
            let m = self.machine;
            let graph_units = self.model.graph_units(work);
            let dur = m.t_sched + work as f64 * m.t_vertex + graph_units * m.t_graph;
            self.result.vertices += work;
            self.result.compute_calls += 1;
            self.result.breakdown.kernel += work as f64 * m.t_vertex;
            self.result.breakdown.graph_op += graph_units * m.t_graph + m.t_sched;
            self.busy_worker_seconds += dur;
            self.push_event(now + dur, EventKind::Complete { rank, tid, out });
        }
    }

    /// Route one stream group from `src_rank` at time `t`.
    fn route(&mut self, t: f64, src_rank: usize, group: OutGroup) {
        let dst_rank = self.model.rank_of(group.dst_tid);
        let m = self.machine;
        let bytes = m.message_bytes(group.items);
        if dst_rank == src_rank {
            // Local stream: master routes without pack/unpack.
            let handle = m.t_route;
            let done = self.master_free[src_rank].max(t) + handle;
            self.master_free[src_rank] = done;
            self.result.breakdown.comm += handle;
            self.push_event(
                done,
                EventKind::Deliver {
                    tid: group.dst_tid,
                    keys: group.keys,
                },
            );
        } else {
            let pack = bytes * m.t_pack_per_byte;
            let handle = m.t_route + pack;
            let sent = self.master_free[src_rank].max(t) + handle;
            self.master_free[src_rank] = sent;
            self.result.breakdown.comm += m.t_route;
            self.result.breakdown.pack_unpack += pack;
            self.result.messages += 1;
            self.result.bytes += bytes;
            let arrive = sent + m.latency + bytes / m.bandwidth;
            self.push_event(
                arrive,
                EventKind::Arrive {
                    rank: dst_rank,
                    tid: group.dst_tid,
                    keys: group.keys,
                    bytes,
                },
            );
        }
    }

    fn run(mut self) -> Result<DesResult, String> {
        // All tasks start active (§III-A) and are queued on their rank.
        let n = self.model.num_tasks();
        self.active = vec![true; n];
        for tid in 0..n {
            let rank = self.model.rank_of(tid);
            let prio = self.model.priority(tid);
            self.queues[rank].push((prio, Reverse(tid)));
        }
        let mut end_time = 0.0f64;
        for rank in 0..self.machine.ranks {
            self.dispatch(rank, 0.0);
        }

        while let Some(Reverse(ev)) = self.events.pop() {
            end_time = end_time.max(ev.time);
            match ev.kind {
                EventKind::Complete { rank, tid, out } => {
                    for group in out {
                        self.route(ev.time, rank, group);
                    }
                    if self.model.has_ready(tid) {
                        let prio = self.model.priority(tid);
                        self.queues[rank].push((prio, Reverse(tid)));
                    } else {
                        self.active[tid] = false;
                    }
                    self.idle_workers[rank] += 1;
                    self.dispatch(rank, ev.time);
                }
                EventKind::Arrive {
                    rank,
                    tid,
                    keys,
                    bytes,
                } => {
                    let m = self.machine;
                    let unpack = bytes * m.t_pack_per_byte;
                    let handle = m.t_route + unpack;
                    let done = self.master_free[rank].max(ev.time) + handle;
                    self.master_free[rank] = done;
                    self.result.breakdown.comm += m.t_route;
                    self.result.breakdown.pack_unpack += unpack;
                    self.push_event(done, EventKind::Deliver { tid, keys });
                }
                EventKind::Deliver { tid, keys } => {
                    self.model.receive(tid, &keys);
                    if !self.active[tid] && self.model.has_ready(tid) {
                        self.active[tid] = true;
                        let rank = self.model.rank_of(tid);
                        let prio = self.model.priority(tid);
                        self.queues[rank].push((prio, Reverse(tid)));
                        self.dispatch(rank, ev.time);
                    }
                }
            }
        }

        self.model.verify_complete()?;
        self.result.time = end_time;
        // Idle = total core-seconds − busy (workers) − master handling.
        let worker_cores = (self.machine.ranks * self.machine.workers_per_rank) as f64;
        let master_cores = self.machine.ranks as f64;
        let master_busy = self.result.breakdown.comm + self.result.breakdown.pack_unpack;
        self.result.breakdown.idle = (worker_cores * end_time - self.busy_worker_seconds)
            + (master_cores * end_time - master_busy).max(0.0);
        self.result.traces = self.model.take_traces();
        Ok(self.result)
    }
}

/// Simulate one DAG-driven sweep iteration of `problem` on `machine`.
pub fn simulate(problem: &SweepProblem, machine: &MachineModel, opts: &SimOptions) -> DesResult {
    assert_eq!(
        machine.ranks,
        problem.patches.num_ranks(),
        "machine rank count must match the patch distribution"
    );
    let model = FineModel::new(problem, opts.record_traces);
    let sim = Sim::new(model, machine, opts.grain);
    sim.run().expect("sweep simulation deadlocked")
}

/// Simulate one coarsened-graph sweep iteration (§V-E): the clusters of
/// `tasks` (built from a fine run's traces) execute as units.
pub fn simulate_coarse(
    problem: &SweepProblem,
    tasks: &[Vec<CoarsenedTask>],
    machine: &MachineModel,
    grain: usize,
) -> DesResult {
    let model = CoarseModel::new(problem, tasks);
    let sim = Sim::new(model, machine, grain);
    sim.run().expect("coarse sweep simulation deadlocked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_graph::problem::ProblemOptions;
    use jsweep_mesh::{partition, StructuredMesh};
    use jsweep_quadrature::QuadratureSet;

    fn small_problem(ranks: usize) -> SweepProblem {
        let m = StructuredMesh::unit(8, 8, 8);
        let ps = partition::decompose_structured(&m, (4, 4, 4), ranks);
        let q = QuadratureSet::sn(2);
        SweepProblem::build(
            &m,
            ps,
            &q,
            &ProblemOptions {
                share_octant_dags: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn simulation_computes_every_vertex() {
        let prob = small_problem(2);
        let machine = MachineModel::cluster(2, 3);
        let r = simulate(&prob, &machine, &SimOptions::default());
        assert_eq!(r.vertices, prob.total_vertices);
        assert!(r.time > 0.0);
        assert!(r.compute_calls > 0);
    }

    #[test]
    fn more_workers_is_not_slower() {
        let prob = small_problem(2);
        let slow = simulate(&prob, &MachineModel::cluster(2, 1), &SimOptions::default());
        let fast = simulate(&prob, &MachineModel::cluster(2, 8), &SimOptions::default());
        assert!(
            fast.time <= slow.time * 1.05,
            "8 workers ({}) slower than 1 ({})",
            fast.time,
            slow.time
        );
    }

    #[test]
    fn determinism() {
        let prob = small_problem(2);
        let machine = MachineModel::cluster(2, 3);
        let a = simulate(&prob, &machine, &SimOptions::default());
        let b = simulate(&prob, &machine, &SimOptions::default());
        assert_eq!(a.time, b.time);
        assert_eq!(a.compute_calls, b.compute_calls);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn breakdown_accounts_all_core_time() {
        let prob = small_problem(2);
        let machine = MachineModel::cluster(2, 3);
        let r = simulate(&prob, &machine, &SimOptions::default());
        let total_core_seconds = machine.cores() as f64 * r.time;
        assert!((r.breakdown.total() - total_core_seconds).abs() < 1e-9 * total_core_seconds);
    }

    #[test]
    fn larger_grain_fewer_compute_calls() {
        let prob = small_problem(1);
        let machine = MachineModel::cluster(1, 2);
        let small = simulate(
            &prob,
            &machine,
            &SimOptions {
                grain: 1,
                record_traces: false,
            },
        );
        let large = simulate(
            &prob,
            &machine,
            &SimOptions {
                grain: 512,
                record_traces: false,
            },
        );
        assert!(large.compute_calls < small.compute_calls / 4);
    }

    #[test]
    fn messages_flow_between_ranks() {
        let prob = small_problem(2);
        let machine = MachineModel::cluster(2, 2);
        let r = simulate(&prob, &machine, &SimOptions::default());
        assert!(r.messages > 0);
        assert!(r.bytes > 0.0);
    }

    #[test]
    fn efficiency_vs_reference() {
        let a = DesResult {
            time: 10.0,
            ..Default::default()
        };
        let b = DesResult {
            time: 2.0,
            ..Default::default()
        };
        // 5x speedup on 8x the cores = 62.5% efficiency.
        assert!((b.efficiency_vs(&a, 8, 1) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn deformed_mesh_simulates_with_cycle_breaking() {
        use jsweep_graph::problem::ProblemOptions as PO;
        let m = jsweep_mesh::deformed::DeformedMesh::jittered(6, 6, 6, 0.3, 21);
        let ps = jsweep_mesh::partition::rcb(&m, 4);
        let mut ps = ps;
        ps.distribute(vec![0, 0, 1, 1], 2);
        let q = jsweep_quadrature::QuadratureSet::sn(2);
        let prob = SweepProblem::build(
            &m,
            ps,
            &q,
            &PO {
                check_cycles: true,
                ..Default::default()
            },
        );
        let machine = MachineModel::cluster(2, 3);
        let r = simulate(&prob, &machine, &SimOptions::default());
        assert_eq!(r.vertices, prob.total_vertices);
    }

    #[test]
    fn coarse_replay_matches_vertex_count_and_is_cheaper() {
        let prob = small_problem(2);
        let machine = MachineModel::cluster(2, 3);
        let fine = simulate(
            &prob,
            &machine,
            &SimOptions {
                grain: 32,
                record_traces: true,
            },
        );
        assert_eq!(fine.traces.len(), prob.num_angles);
        let tasks: Vec<Vec<CoarsenedTask>> = (0..prob.num_angles)
            .map(|a| jsweep_graph::coarse::build_coarse(&prob.subs[a], &fine.traces[a]))
            .collect();
        let coarse = simulate_coarse(&prob, &tasks, &machine, 32);
        assert_eq!(coarse.vertices, fine.vertices);
        // The §V-E claim: cluster-level scheduling removes the
        // per-vertex DAG bookkeeping and aggregates messages.
        assert!(
            coarse.breakdown.graph_op < fine.breakdown.graph_op,
            "coarse graph-op {} should undercut fine {}",
            coarse.breakdown.graph_op,
            fine.breakdown.graph_op
        );
        assert!(coarse.messages <= fine.messages);
        assert!(
            (coarse.compute_calls as f64) < 1.1 * fine.compute_calls as f64,
            "coarse calls {} vs fine {}",
            coarse.compute_calls,
            fine.compute_calls
        );
    }
}
