//! Execution-time accounting (the data behind Fig. 16).
//!
//! Every runtime thread accumulates wall time into a small set of
//! categories. Master threads use `Comm`/`Pack`/`Unpack`/`Route`/`Idle`;
//! worker threads use `Kernel`/`GraphOp`/`Input`/`Output`/`Idle`/`Other`.

use std::time::Instant;

/// A time category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// User numerical kernel (worker).
    Kernel,
    /// DAG bookkeeping inside compute, minus the kernel (worker);
    /// "graph-op" in the paper's breakdown.
    GraphOp,
    /// Stream ingestion (`input`) time (worker).
    Input,
    /// Output collection/forwarding time (worker).
    Output,
    /// Serialisation of outgoing streams (master).
    Pack,
    /// Deserialisation of incoming messages (master).
    Unpack,
    /// Channel/network send+receive time (master).
    Comm,
    /// Route-table lookup, activation, progress tracking (master).
    Route,
    /// Blocked with nothing to do.
    Idle,
    /// Everything else (scheduling glue).
    Other,
}

/// All categories, in display order.
pub const CATEGORIES: [Category; 10] = [
    Category::Kernel,
    Category::GraphOp,
    Category::Input,
    Category::Output,
    Category::Pack,
    Category::Unpack,
    Category::Comm,
    Category::Route,
    Category::Idle,
    Category::Other,
];

impl Category {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Kernel => "kernel",
            Category::GraphOp => "graph-op",
            Category::Input => "input",
            Category::Output => "output",
            Category::Pack => "pack",
            Category::Unpack => "unpack",
            Category::Comm => "comm",
            Category::Route => "route",
            Category::Idle => "idle",
            Category::Other => "other",
        }
    }

    fn index(self) -> usize {
        CATEGORIES.iter().position(|&c| c == self).unwrap()
    }
}

/// Seconds accumulated per category for one thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    seconds: [f64; CATEGORIES.len()],
}

impl Breakdown {
    /// Add `dt` seconds to a category.
    pub fn add(&mut self, cat: Category, dt: f64) {
        self.seconds[cat.index()] += dt;
    }

    /// Time a closure into a category.
    pub fn timed<R>(&mut self, cat: Category, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(cat, t0.elapsed().as_secs_f64());
        r
    }

    /// Seconds in one category.
    pub fn get(&self, cat: Category) -> f64 {
        self.seconds[cat.index()]
    }

    /// Total accounted seconds.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &Breakdown) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a += b;
        }
    }
}

/// Aggregate statistics of one rank's run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// This rank's id.
    pub rank: usize,
    /// Wall time of the whole run on this rank (seconds).
    pub wall_seconds: f64,
    /// Master-thread time breakdown.
    pub master: Breakdown,
    /// Per-worker time breakdowns.
    pub workers: Vec<Breakdown>,
    /// Compute invocations (patch-program executions).
    pub compute_calls: u64,
    /// Workload units completed (vertices for sweeps).
    pub work_done: u64,
    /// Streams routed locally (worker → same-rank program).
    pub streams_local: u64,
    /// Streams sent to other ranks.
    pub streams_sent: u64,
    /// Streams received from other ranks.
    pub streams_received: u64,
    /// Multi-stream frames sent to other ranks. Aggregation (§II)
    /// shows up as `frames_sent < streams_sent`: each frame carries
    /// every stream bound to one destination in one drain round.
    pub frames_sent: u64,
    /// Frames received from other ranks.
    pub frames_received: u64,
    /// Bytes sent to other ranks (stream payloads + record headers;
    /// framing itself adds no bytes).
    pub bytes_sent: u64,
    /// Per-worker end-of-epoch drain: seconds between a worker's last
    /// productive act (its last report hand-off to the pool) and the
    /// epoch's quiesce close, clamped to the epoch. Workers hold back
    /// idle-only reports, so this tail cannot be attributed through
    /// the report channel without bleeding into the next epoch; the
    /// rank stamps it at the fence instead, keeping the Fig.-16-style
    /// idle breakdown exact per epoch. A worker that never ran in an
    /// epoch drains for the whole epoch.
    pub worker_drain_seconds: Vec<f64>,
}

impl RunStats {
    /// Merge the breakdowns of all workers into one.
    pub fn workers_merged(&self) -> Breakdown {
        let mut acc = Breakdown::default();
        for w in &self.workers {
            acc.merge(w);
        }
        acc
    }

    /// Total seconds booked to `cat` across the master and every
    /// worker thread. The one-line way to compare a category between
    /// runs — e.g. watching `GraphOp` shrink when coarse-graph replay
    /// (§V-E) replaces per-vertex scheduling.
    pub fn category_seconds(&self, cat: Category) -> f64 {
        self.master.get(cat) + self.workers.iter().map(|w| w.get(cat)).sum::<f64>()
    }

    /// Sum the stats of several ranks (for reporting).
    pub fn aggregate(all: &[RunStats]) -> RunStats {
        let mut acc = RunStats::default();
        for s in all {
            acc.wall_seconds = acc.wall_seconds.max(s.wall_seconds);
            acc.master.merge(&s.master);
            acc.workers.extend(s.workers.iter().cloned());
            acc.compute_calls += s.compute_calls;
            acc.work_done += s.work_done;
            acc.streams_local += s.streams_local;
            acc.streams_sent += s.streams_sent;
            acc.streams_received += s.streams_received;
            acc.frames_sent += s.frames_sent;
            acc.frames_received += s.frames_received;
            acc.bytes_sent += s.bytes_sent;
            acc.worker_drain_seconds
                .extend(s.worker_drain_seconds.iter().copied());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = Breakdown::default();
        b.add(Category::Kernel, 1.5);
        b.add(Category::Kernel, 0.5);
        b.add(Category::Idle, 3.0);
        assert_eq!(b.get(Category::Kernel), 2.0);
        assert_eq!(b.total(), 5.0);
    }

    #[test]
    fn timed_measures_elapsed() {
        let mut b = Breakdown::default();
        let v = b.timed(Category::Comm, || {
            std::thread::sleep(std::time::Duration::from_millis(3));
            7
        });
        assert_eq!(v, 7);
        assert!(b.get(Category::Comm) >= 0.003);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = Breakdown::default();
        a.add(Category::Pack, 1.0);
        let mut b = Breakdown::default();
        b.add(Category::Pack, 2.0);
        b.add(Category::Idle, 1.0);
        a.merge(&b);
        assert_eq!(a.get(Category::Pack), 3.0);
        assert_eq!(a.get(Category::Idle), 1.0);
    }

    #[test]
    fn aggregate_takes_max_wall_and_sums_counters() {
        let a = RunStats {
            rank: 0,
            wall_seconds: 2.0,
            work_done: 10,
            streams_sent: 1,
            ..Default::default()
        };
        let b = RunStats {
            rank: 1,
            wall_seconds: 3.0,
            work_done: 5,
            streams_received: 1,
            ..Default::default()
        };
        let agg = RunStats::aggregate(&[a, b]);
        assert_eq!(agg.wall_seconds, 3.0);
        assert_eq!(agg.work_done, 15);
        assert_eq!(agg.streams_sent, 1);
        assert_eq!(agg.streams_received, 1);
    }

    #[test]
    fn aggregate_concatenates_worker_drains_like_workers() {
        let a = RunStats {
            rank: 0,
            worker_drain_seconds: vec![0.5, 0.25],
            ..Default::default()
        };
        let b = RunStats {
            rank: 1,
            worker_drain_seconds: vec![0.125],
            ..Default::default()
        };
        let agg = RunStats::aggregate(&[a, b]);
        assert_eq!(agg.worker_drain_seconds, vec![0.5, 0.25, 0.125]);
    }

    #[test]
    fn merge_disjoint_categories_keeps_both() {
        // Master-side and worker-side categories never overlap in
        // practice; merging them must lose neither and leave the
        // untouched categories at zero.
        let mut a = Breakdown::default();
        a.add(Category::Kernel, 1.0);
        a.add(Category::GraphOp, 0.5);
        let mut b = Breakdown::default();
        b.add(Category::Comm, 2.0);
        b.add(Category::Route, 0.25);
        a.merge(&b);
        assert_eq!(a.get(Category::Kernel), 1.0);
        assert_eq!(a.get(Category::GraphOp), 0.5);
        assert_eq!(a.get(Category::Comm), 2.0);
        assert_eq!(a.get(Category::Route), 0.25);
        assert_eq!(a.total(), 3.75);
        for cat in [Category::Pack, Category::Unpack, Category::Idle] {
            assert_eq!(a.get(cat), 0.0);
        }
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = Breakdown::default();
        a.add(Category::Input, 0.75);
        let before = a.clone();
        a.merge(&Breakdown::default());
        assert_eq!(a, before, "merging zeros changes nothing");
        let mut zero = Breakdown::default();
        zero.merge(&before);
        assert_eq!(zero, before, "merging into zeros copies");
    }

    #[test]
    fn aggregate_of_empty_slice_is_default() {
        let agg = RunStats::aggregate(&[]);
        assert_eq!(agg.wall_seconds, 0.0);
        assert_eq!(agg.compute_calls, 0);
        assert!(agg.workers.is_empty());
        assert!(agg.worker_drain_seconds.is_empty());
        assert_eq!(agg.master.total(), 0.0);
    }

    #[test]
    fn aggregate_concatenates_mismatched_worker_counts() {
        // Ranks need not run the same worker count (e.g. after an
        // uneven decomposition); the aggregate concatenates rather
        // than zips, so no per-worker breakdown is silently dropped.
        let mut w0 = Breakdown::default();
        w0.add(Category::Kernel, 1.0);
        let mut w1 = Breakdown::default();
        w1.add(Category::Idle, 2.0);
        let a = RunStats {
            rank: 0,
            workers: vec![w0.clone(), w1.clone()],
            worker_drain_seconds: vec![0.1, 0.2],
            ..Default::default()
        };
        let b = RunStats {
            rank: 1,
            workers: vec![w1.clone()],
            worker_drain_seconds: vec![0.3],
            ..Default::default()
        };
        let agg = RunStats::aggregate(&[a, b]);
        assert_eq!(agg.workers.len(), 3);
        assert_eq!(agg.worker_drain_seconds, vec![0.1, 0.2, 0.3]);
        let merged = agg.workers_merged();
        assert_eq!(merged.get(Category::Kernel), 1.0);
        assert_eq!(merged.get(Category::Idle), 4.0);
        // category_seconds spans master + all concatenated workers.
        assert_eq!(agg.category_seconds(Category::Idle), 4.0);
    }

    #[test]
    fn category_names_unique() {
        let mut names: Vec<&str> = CATEGORIES.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CATEGORIES.len());
    }
}
