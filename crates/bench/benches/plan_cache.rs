//! Plan-cache multi-solve benchmark (plan lifecycle, paper §V-E).
//!
//! Two measurements on the shared replay scenario:
//!
//! * **Timing** — an N-solve workload (the time-step / eigenvalue /
//!   material-sweep shape) with and without a
//!   [`jsweep_transport::PlanCache`]. Without, every solve pays one
//!   fine recording iteration plus a plan compile; with, only the
//!   first does — every later solve replays from iteration 1, so its
//!   per-iteration wall time is pure replay overhead (no re-record, no
//!   re-compile; the bench asserts `plan_from_cache` and a zero build
//!   time on the second solve).
//! * **Memory** — octant-canonical trace sharing: at S8 (80 angles, 8
//!   octants) one compiled `ReplayTask` set per octant replaces one
//!   per angle, cutting plan bytes and build time ~`num_angles/8`-fold
//!   (≈10× at S8). Shared tasks are counted once
//!   (`CoarsePlan::memory_bytes`), so the number is what caching costs.
//!
//! The flux must be bit-identical across every solve of both variants;
//! the bench asserts it. A machine-readable baseline is written to
//! `BENCH_plan_cache.json` at the workspace root (CI checks presence
//! after the `cargo bench -- --test` smoke pass).

use jsweep_bench::setups::{replay_scenario, replay_tail_mean};
use jsweep_mesh::{partition, StructuredMesh, SweepTopology};
use jsweep_quadrature::QuadratureSet;
use jsweep_transport::{replay, PlanCache, SnConfig};
use std::sync::Arc;

struct TimingNumbers {
    fine_iter_wall_s: f64,
    replay_iter_wall_s: f64,
    second_solve_iter_wall_s: f64,
    plan_build_s: f64,
    uncached_build_total_s: f64,
    cached_build_total_s: f64,
}

/// N-solve timing: best-of-`runs` independently per metric.
fn measure_timing(
    n: usize,
    patch: usize,
    iterations: usize,
    solves: usize,
    runs: usize,
) -> TimingNumbers {
    let sc = replay_scenario(n, patch, 2, iterations, 16);
    let mut nums = TimingNumbers {
        fine_iter_wall_s: f64::INFINITY,
        replay_iter_wall_s: f64::INFINITY,
        second_solve_iter_wall_s: f64::INFINITY,
        plan_build_s: f64::INFINITY,
        uncached_build_total_s: f64::INFINITY,
        cached_build_total_s: f64::INFINITY,
    };
    for _ in 0..runs {
        // Uncached: every solve records + compiles.
        let uncached: Vec<_> = (0..solves).map(|_| sc.solve(true)).collect();
        // Cached: solve 1 records + compiles, solves 2..N replay only.
        let cache = PlanCache::new();
        let cached: Vec<_> = (0..solves).map(|_| sc.solve_cached(&cache)).collect();

        let reference = &uncached[0].phi;
        for sol in uncached.iter().chain(&cached) {
            assert_eq!(
                &sol.phi, reference,
                "every solve must produce bit-identical flux"
            );
            assert_eq!(sol.stats.len(), iterations);
        }
        assert!(!cached[0].plan_from_cache);
        for sol in &cached[1..] {
            assert!(sol.plan_from_cache, "later solves must hit the cache");
            assert_eq!(sol.coarse_build_seconds, 0.0, "no re-compile");
        }
        assert_eq!(cache.len(), 1);

        let first = &cached[0];
        nums.fine_iter_wall_s = nums.fine_iter_wall_s.min(first.stats[0].wall_seconds);
        nums.replay_iter_wall_s = nums
            .replay_iter_wall_s
            .min(replay_tail_mean(&first.stats, |s| s.wall_seconds));
        // Second solve: *every* iteration is a replay iteration.
        let second_mean = cached[1].stats.iter().map(|s| s.wall_seconds).sum::<f64>()
            / cached[1].stats.len() as f64;
        nums.second_solve_iter_wall_s = nums.second_solve_iter_wall_s.min(second_mean);
        nums.plan_build_s = nums.plan_build_s.min(first.coarse_build_seconds);
        nums.uncached_build_total_s = nums
            .uncached_build_total_s
            .min(uncached.iter().map(|s| s.coarse_build_seconds).sum());
        nums.cached_build_total_s = nums
            .cached_build_total_s
            .min(cached.iter().map(|s| s.coarse_build_seconds).sum());
    }
    nums
}

struct MemoryNumbers {
    angles: usize,
    plan_bytes_shared: usize,
    plan_bytes_unshared: usize,
    build_s_shared: f64,
    build_s_unshared: f64,
}

/// Octant-sharing memory/build measurement at `sn` order.
fn measure_memory(n: usize, patch: usize, sn: u32) -> MemoryNumbers {
    let mesh = Arc::new(StructuredMesh::unit(n, n, n));
    let quad = QuadratureSet::sn(sn);
    let materials = Arc::new(jsweep_transport::MaterialSet::homogeneous(
        mesh.num_cells(),
        jsweep_transport::Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let config = SnConfig {
        grain: 16,
        ..Default::default()
    };
    let build = |share: bool| {
        Arc::new(jsweep_graph::SweepProblem::build(
            mesh.as_ref(),
            partition::decompose_structured(&mesh, (patch, patch, patch), 2),
            &quad,
            &jsweep_graph::ProblemOptions {
                share_octant_dags: share,
                ..Default::default()
            },
        ))
    };
    let measure = |share: bool| {
        let prob = build(share);
        let traces = jsweep_transport::record_cluster_traces(
            mesh.clone(),
            prob.clone(),
            &quad,
            materials.clone(),
            &config,
        );
        let plan = replay::build_plan(&prob, &traces, mesh.as_ref());
        (plan.memory_bytes(), plan.build_seconds)
    };
    let (plan_bytes_shared, build_s_shared) = measure(true);
    let (plan_bytes_unshared, build_s_unshared) = measure(false);
    MemoryNumbers {
        angles: quad.len(),
        plan_bytes_shared,
        plan_bytes_unshared,
        build_s_shared,
        build_s_unshared,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // Full mode: the quickstart problem (16³ cells, 4³-cell patches,
    // 2 ranks × 2 workers, S2, grain 16) solved 4 times; memory at S8
    // on the same mesh (80 angles — octant sharing's home turf).
    let (timing, memory) = if test_mode {
        (measure_timing(8, 4, 3, 2, 1), measure_memory(8, 4, 4))
    } else {
        (measure_timing(16, 4, 6, 4, 3), measure_memory(16, 4, 8))
    };

    let second_vs_replay = timing.second_solve_iter_wall_s / timing.replay_iter_wall_s;
    let amortization = timing.uncached_build_total_s / timing.cached_build_total_s.max(1e-12);
    let mem_reduction = memory.plan_bytes_unshared as f64 / memory.plan_bytes_shared as f64;
    let build_reduction = memory.build_s_unshared / memory.build_s_shared.max(1e-12);

    println!(
        "plan_cache fine (recording) iteration time: {:>9.3} ms",
        timing.fine_iter_wall_s * 1e3
    );
    println!(
        "plan_cache replay iteration           time: {:>9.3} ms",
        timing.replay_iter_wall_s * 1e3
    );
    println!(
        "plan_cache second-solve iteration     time: {:>9.3} ms ({:.2}x a replay iteration)",
        timing.second_solve_iter_wall_s * 1e3,
        second_vs_replay
    );
    println!(
        "plan_cache plan build (once, cached)  time: {:>9.3} ms; uncached total {:.3} ms ({:.1}x amortization)",
        timing.plan_build_s * 1e3,
        timing.uncached_build_total_s * 1e3,
        amortization
    );
    println!(
        "plan_cache S{} plan memory: {:.1} KiB unshared -> {:.1} KiB octant-shared ({:.1}x less, build {:.1}x faster)",
        if test_mode { 4 } else { 8 },
        memory.plan_bytes_unshared as f64 / 1024.0,
        memory.plan_bytes_shared as f64 / 1024.0,
        mem_reduction,
        build_reduction
    );

    // The cached second solve must carry no recording / compile
    // overhead: its mean iteration must not exceed the *recording*
    // iteration, and should sit at replay-iteration level. The
    // structural facts (plan_from_cache, zero build time, bit-identical
    // phi) are asserted in measure_timing in both modes; the wall-clock
    // comparison is only meaningful in full mode (best-of-3 at 16³) —
    // a single millisecond-scale test-mode sample on an oversubscribed
    // CI core would make it flake.
    if !test_mode {
        assert!(
            timing.second_solve_iter_wall_s < timing.fine_iter_wall_s,
            "cached second solve should beat the recording path"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"plan_cache\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"problem\": {{\n",
            "    \"cells\": {cells},\n",
            "    \"patch_cells\": 64,\n", // 4³-cell patch blocks in both modes
            "    \"ranks\": 2,\n",
            "    \"angles\": 8,\n",
            "    \"grain\": 16,\n",
            "    \"solves\": {solves},\n",
            "    \"iterations_per_solve\": {iters}\n",
            "  }},\n",
            "  \"fine_iter_wall_seconds\": {fw:.6},\n",
            "  \"replay_iter_wall_seconds\": {rw:.6},\n",
            "  \"second_solve_iter_wall_seconds\": {sw:.6},\n",
            "  \"second_solve_vs_replay_iter\": {svr:.3},\n",
            "  \"second_solve_from_cache\": true,\n",
            "  \"second_solve_build_seconds\": 0.0,\n",
            "  \"plan_build_seconds\": {pb:.6},\n",
            "  \"uncached_build_total_seconds\": {ub:.6},\n",
            "  \"build_amortization\": {am:.3},\n",
            "  \"octant_sharing\": {{\n",
            "    \"angles\": {angles},\n",
            "    \"plan_bytes_unshared\": {mu},\n",
            "    \"plan_bytes_shared\": {ms},\n",
            "    \"memory_reduction\": {mr:.3},\n",
            "    \"build_reduction\": {br:.3}\n",
            "  }},\n",
            "  \"phi_bit_identical\": true\n",
            "}}\n"
        ),
        mode = if test_mode { "test" } else { "full" },
        cells = if test_mode { 512 } else { 4096 },
        solves = if test_mode { 2 } else { 4 },
        iters = if test_mode { 3 } else { 6 },
        fw = timing.fine_iter_wall_s,
        rw = timing.replay_iter_wall_s,
        sw = timing.second_solve_iter_wall_s,
        svr = second_vs_replay,
        pb = timing.plan_build_s,
        ub = timing.uncached_build_total_s,
        am = amortization,
        angles = memory.angles,
        mu = memory.plan_bytes_unshared,
        ms = memory.plan_bytes_shared,
        mr = mem_reduction,
        br = build_reduction,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_plan_cache.json");
    if test_mode && out.exists() {
        // Smoke numbers are not a baseline: keep the committed full-
        // mode file, only prove the bench still runs end to end.
        println!("test mode: committed baseline left in place");
    } else {
        std::fs::write(&out, json).expect("write BENCH_plan_cache.json");
        println!("baseline written to {}", out.display());
    }
}
