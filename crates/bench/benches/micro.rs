//! Criterion microbenchmarks of the hot components: subgraph
//! construction, the Listing-1 scheduling core, priority computation,
//! coarsened-graph construction, the transport kernel, the stream
//! codec and Hilbert keys.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jsweep_graph::priority::vertex_priorities;
use jsweep_graph::{PriorityStrategy, Subgraph, SweepState};
use jsweep_mesh::{partition, PatchId, PatchSet, StructuredMesh, SweepTopology};
use jsweep_quadrature::AngleId;
use std::collections::HashSet;
use std::hint::black_box;

fn bench_subgraph_build(c: &mut Criterion) {
    let mesh = StructuredMesh::unit(32, 32, 32);
    let ps = partition::decompose_structured(&mesh, (8, 8, 8), 2);
    c.bench_function("subgraph_build_32cube", |b| {
        b.iter(|| {
            Subgraph::build(
                &mesh,
                &ps,
                black_box(PatchId(0)),
                AngleId(0),
                [1.0, 1.0, 1.0],
                &HashSet::new(),
            )
        })
    });
}

fn bench_sweep_state(c: &mut Criterion) {
    let mesh = StructuredMesh::unit(16, 16, 16);
    let ps = PatchSet::single(mesh.num_cells());
    let sub = Subgraph::build(
        &mesh,
        &ps,
        PatchId(0),
        AngleId(0),
        [1.0, 0.7, 0.3],
        &HashSet::new(),
    );
    let prio = std::sync::Arc::new(vertex_priorities(&sub, PriorityStrategy::Slbd));
    c.bench_function("sweep_state_full_drain_4k", |b| {
        b.iter_batched(
            || SweepState::new(&sub, prio.clone()),
            |mut st| {
                while !st.is_complete() {
                    black_box(st.pop_cluster(&sub, 64, |_, _| {}));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_priorities(c: &mut Criterion) {
    let mesh = StructuredMesh::unit(24, 24, 24);
    let ps = PatchSet::single(mesh.num_cells());
    let sub = Subgraph::build(
        &mesh,
        &ps,
        PatchId(0),
        AngleId(0),
        [1.0, 1.0, 1.0],
        &HashSet::new(),
    );
    for s in [
        PriorityStrategy::Bfs,
        PriorityStrategy::Ldcp,
        PriorityStrategy::Slbd,
    ] {
        c.bench_function(&format!("vertex_priorities_{}_14k", s.name()), |b| {
            b.iter(|| black_box(vertex_priorities(&sub, s)))
        });
    }
}

fn bench_kernel(c: &mut Criterion) {
    use jsweep_transport::kernel::{solve_cell, KernelKind};
    let mesh = StructuredMesh::unit(4, 4, 4);
    let incoming = vec![0.4; 6];
    let mut out = vec![0.0; 6];
    let mut psi = vec![0.0];
    c.bench_function("kernel_dd_single_cell", |b| {
        b.iter(|| {
            solve_cell(
                &mesh,
                black_box(21),
                [0.5, 0.6, 0.62],
                KernelKind::DiamondDifference,
                &[1.0],
                &[0.3],
                &incoming,
                &mut out,
                &mut psi,
            );
            black_box(psi[0])
        })
    });
    c.bench_function("kernel_step_single_cell", |b| {
        b.iter(|| {
            solve_cell(
                &mesh,
                black_box(21),
                [0.5, 0.6, 0.62],
                KernelKind::Step,
                &[1.0],
                &[0.3],
                &incoming,
                &mut out,
                &mut psi,
            );
            black_box(psi[0])
        })
    });
}

fn bench_pack(c: &mut Criterion) {
    use jsweep_comm::pack::{Reader, Writer};
    c.bench_function("pack_unpack_64_items", |b| {
        b.iter(|| {
            let mut w = Writer::with_capacity(64 * 24);
            for i in 0..64u32 {
                w.put_u32(i);
                w.put_u32(i + 1);
                w.put_f64(i as f64 * 0.5);
            }
            let mut r = Reader::new(w.finish());
            let mut acc = 0.0;
            for _ in 0..64 {
                r.get_u32();
                r.get_u32();
                acc += r.get_f64();
            }
            black_box(acc)
        })
    });
}

fn bench_hilbert(c: &mut Criterion) {
    use jsweep_mesh::sfc::hilbert3;
    c.bench_function("hilbert3_key", |b| {
        b.iter(|| black_box(hilbert3(black_box(123), black_box(456), black_box(789), 10)))
    });
}

fn bench_des_small(c: &mut Criterion) {
    use jsweep_des::{simulate, MachineModel, ProblemOptions, SimOptions, SweepProblem};
    use jsweep_quadrature::QuadratureSet;
    let mesh = StructuredMesh::unit(12, 12, 12);
    let ps = partition::decompose_structured(&mesh, (4, 4, 4), 2);
    let quad = QuadratureSet::sn(2);
    let prob = SweepProblem::build(
        &mesh,
        ps,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    );
    let machine = MachineModel::cluster(2, 3);
    c.bench_function("des_sweep_12cube_s2", |b| {
        b.iter(|| black_box(simulate(&prob, &machine, &SimOptions::default())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_subgraph_build, bench_sweep_state, bench_priorities, bench_kernel,
              bench_pack, bench_hilbert, bench_des_small
}
criterion_main!(benches);
