//! Uniform mesh refinement, used by the weak-scaling study (Fig. 15).
//!
//! The paper notes that JAxMIN weak-scales by having each process refine
//! its assigned subdomain. We provide uniform **red refinement** of
//! tetrahedral meshes (each tet → 8 children via the 6 edge midpoints,
//! Bey's scheme) and the trivial 8-fold refinement of structured meshes.

use crate::structured::StructuredMesh;
use crate::tet::TetMesh;
use std::collections::HashMap;

/// Refine a structured mesh by doubling resolution along each axis.
pub fn refine_structured(mesh: &StructuredMesh) -> StructuredMesh {
    let (nx, ny, nz) = mesh.dims();
    let [dx, dy, dz] = mesh.spacing();
    StructuredMesh::new(
        2 * nx,
        2 * ny,
        2 * nz,
        mesh.origin(),
        [dx / 2.0, dy / 2.0, dz / 2.0],
    )
}

/// Uniform red refinement: every tetrahedron is split into 8 children
/// using its edge midpoints. Midpoints are deduplicated globally, so the
/// refined mesh conforms wherever the input conforms.
pub fn refine_tets(mesh: &TetMesh) -> TetMesh {
    let old_verts = mesh.vertices();
    let mut vertices: Vec<[f64; 3]> = old_verts.to_vec();
    let mut midpoints: HashMap<(u32, u32), u32> = HashMap::new();

    let mut mid = |a: u32, b: u32, vertices: &mut Vec<[f64; 3]>| -> u32 {
        let key = (a.min(b), a.max(b));
        *midpoints.entry(key).or_insert_with(|| {
            let pa = old_verts[a as usize];
            let pb = old_verts[b as usize];
            let id = vertices.len() as u32;
            vertices.push([
                (pa[0] + pb[0]) / 2.0,
                (pa[1] + pb[1]) / 2.0,
                (pa[2] + pb[2]) / 2.0,
            ]);
            id
        })
    };

    let mut tets: Vec<[u32; 4]> = Vec::with_capacity(8 * mesh.num_cells());
    for t in mesh.tets() {
        let [v0, v1, v2, v3] = *t;
        let m01 = mid(v0, v1, &mut vertices);
        let m02 = mid(v0, v2, &mut vertices);
        let m03 = mid(v0, v3, &mut vertices);
        let m12 = mid(v1, v2, &mut vertices);
        let m13 = mid(v1, v3, &mut vertices);
        let m23 = mid(v2, v3, &mut vertices);
        // Four corner children.
        tets.push([v0, m01, m02, m03]);
        tets.push([v1, m01, m12, m13]);
        tets.push([v2, m02, m12, m23]);
        tets.push([v3, m03, m13, m23]);
        // Interior octahedron split along the m02–m13 diagonal.
        tets.push([m01, m02, m03, m13]);
        tets.push([m01, m02, m12, m13]);
        tets.push([m02, m03, m13, m23]);
        tets.push([m02, m12, m13, m23]);
    }
    TetMesh::new(vertices, tets)
}

/// Refine a tet mesh `levels` times (cell count multiplies by `8^levels`).
pub fn refine_tets_n(mesh: &TetMesh, levels: usize) -> TetMesh {
    let mut m = mesh.clone();
    for _ in 0..levels {
        m = refine_tets(&m);
    }
    m
}

use crate::SweepTopology;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tetgen, validate_topology};

    #[test]
    fn structured_refine_preserves_domain() {
        let m = StructuredMesh::new(3, 4, 5, [1.0, 2.0, 3.0], [2.0, 2.0, 2.0]);
        let r = refine_structured(&m);
        assert_eq!(r.dims(), (6, 8, 10));
        assert_eq!(r.spacing(), [1.0, 1.0, 1.0]);
        let vol_m: f64 = (0..m.num_cells()).map(|c| m.cell_volume(c)).sum();
        let vol_r: f64 = (0..r.num_cells()).map(|c| r.cell_volume(c)).sum();
        assert!((vol_m - vol_r).abs() < 1e-9);
    }

    #[test]
    fn red_refinement_multiplies_by_eight() {
        let m = tetgen::cube(2, 1.0);
        let r = refine_tets(&m);
        assert_eq!(r.num_cells(), 8 * m.num_cells());
    }

    #[test]
    fn red_refinement_preserves_volume() {
        let m = tetgen::ball(3, 1.0);
        let r = refine_tets(&m);
        assert!((m.total_volume() - r.total_volume()).abs() < 1e-9);
    }

    #[test]
    fn refined_mesh_conforms() {
        let m = tetgen::cube(2, 1.0);
        let r = refine_tets(&m);
        validate_topology(&r).unwrap();
        // A conforming refinement multiplies boundary faces by exactly 4.
        assert_eq!(r.num_boundary_faces(), 4 * m.num_boundary_faces());
    }

    #[test]
    fn two_levels() {
        let m = tetgen::cube(1, 1.0);
        let r = refine_tets_n(&m, 2);
        assert_eq!(r.num_cells(), 64 * m.num_cells());
        assert!((r.total_volume() - 1.0).abs() < 1e-12);
        validate_topology(&r).unwrap();
    }

    #[test]
    fn refinement_bumps_the_generation_stamp() {
        // The plan-cache invalidation contract: any refinement yields a
        // strictly larger, never-before-seen stamp, while clones keep
        // the original's (same topology, same stamp).
        let m = StructuredMesh::unit(2, 2, 2);
        let r = refine_structured(&m);
        assert!(r.generation() > m.generation());
        assert_eq!(m.clone().generation(), m.generation());

        let t = tetgen::cube(1, 1.0);
        let rt = refine_tets(&t);
        assert!(rt.generation() > t.generation());
        let rtn = refine_tets_n(&t, 2);
        assert!(rtn.generation() > rt.generation());
    }

    #[test]
    fn independent_meshes_never_share_a_generation() {
        let a = StructuredMesh::unit(3, 3, 3);
        let b = StructuredMesh::unit(3, 3, 3);
        assert_ne!(a.generation(), b.generation());
    }

    #[test]
    fn zero_levels_is_identity() {
        let m = tetgen::cube(1, 1.0);
        let r = refine_tets_n(&m, 0);
        assert_eq!(r.num_cells(), m.num_cells());
    }
}
