//! `SweepPatchProgram` — paper Listing 1, with real physics attached.
//!
//! A program is one `(patch, angle)` sweep task. Its local context is
//! the scheduling state plus the physics state: incoming face-flux
//! storage for every local cell and the per-angle scalar-flux
//! contribution. The scheduling state comes in two flavours, selected
//! per source iteration by [`SweepMode`]:
//!
//! * **Fine** ([`jsweep_graph::SweepState`]: per-vertex counters +
//!   ready priority queue) — the DAG-driven first iteration, which can
//!   record a [`ClusterTrace`] of the clusters its `compute()` calls
//!   form;
//! * **Coarse** ([`jsweep_graph::coarse::CoarseSweepState`] over a
//!   [`ReplayTask`]) — the §V-E replay used from the second iteration
//!   on: `compute()` pops one whole coarse vertex, executes its
//!   recorded vertex list in order, and emits exactly one stream per
//!   outgoing coarse edge, with no per-vertex bookkeeping.
//!
//! Stream payload formats (see `jsweep_comm::pack`): fine streams are
//! `u32 item_count` then per item `u32 dst_cell`, `u32 src_cell`,
//! `groups × f64` face flux values (the receiver scans the destination
//! cell's faces to find the upwind slot). Coarse streams are fully
//! pre-resolved at plan-build time: `u32 dst_cluster`, `u32 item_count`,
//! then per item `u32 dst_slot` (`local_cell * max_faces + face` on the
//! receiver — written straight into `face_flux`, no adjacency scan) and
//! `groups × f64` flux values — one `receive()` per stream instead of
//! one per item, and 4 bytes of addressing per item instead of 8.

use crate::kernel::{solve_cell, KernelKind};
use crate::replay::{CoarsePlan, ReplayTask, TraceBins};
use crate::xs::MaterialSet;
use bytes::Bytes;
use jsweep_comm::pack::{Reader, Writer};
use jsweep_core::{ComputeCtx, PatchProgram, ProgramFactory, ProgramId, Stream, TaskTag};
use jsweep_graph::coarse::{ClusterTrace, CoarseSweepState};
use jsweep_graph::{Subgraph, SweepProblem, SweepState};
use jsweep_mesh::{PatchId, SweepTopology};
use jsweep_quadrature::QuadratureSet;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-patch collection bin for scalar-flux contributions.
///
/// Each `(patch, angle)` program deposits `w_a · ψ̄` for its local
/// cells; the solver folds the bins in angle order after the sweep so
/// the floating-point result is independent of scheduling order.
pub type FluxBins = Vec<Mutex<Vec<(u32, Vec<f64>)>>>;

/// Which scheduling mode the sweep programs of one iteration run in.
#[derive(Clone)]
pub enum SweepMode {
    /// Per-vertex DAG-driven sweep. With `trace_bins` set, every task
    /// records its [`ClusterTrace`] and deposits it on completion —
    /// the recording pass of §V-E.
    Fine {
        /// Trace sink, indexed by [`SweepProblem::tid`].
        trace_bins: Option<Arc<TraceBins>>,
    },
    /// Coarse-graph replay of a previously compiled [`CoarsePlan`].
    Coarse {
        /// The plan built from the recording iteration's traces.
        plan: Arc<CoarsePlan>,
    },
}

/// Everything the sweep programs of one source iteration share.
pub struct SweepSetup<T: SweepTopology + Send + Sync + 'static> {
    /// The mesh.
    pub mesh: Arc<T>,
    /// Compiled subgraphs + priorities.
    pub problem: Arc<SweepProblem>,
    /// Quadrature set (directions + weights).
    pub quadrature: QuadratureSet,
    /// Materials.
    pub materials: Arc<MaterialSet>,
    /// Emission density `(σ_s φ + Q)/4π` per `cell * groups + g`.
    pub emission: Arc<Vec<f64>>,
    /// Cell kernel.
    pub kernel: KernelKind,
    /// Vertex clustering grain `N`.
    pub grain: usize,
    /// Scalar-flux bins, indexed by patch.
    pub flux_bins: Arc<FluxBins>,
    /// Scheduling mode of this iteration (fine/record vs replay).
    pub mode: SweepMode,
}

/// The factory handed to the JSweep runtime: one program per
/// `(patch, angle)`.
pub struct SweepFactory<T: SweepTopology + Send + Sync + 'static> {
    setup: SweepSetup<T>,
}

impl<T: SweepTopology + Send + Sync + 'static> SweepFactory<T> {
    /// Wrap a setup.
    pub fn new(setup: SweepSetup<T>) -> SweepFactory<T> {
        assert!(setup.grain > 0);
        assert_eq!(setup.materials.num_cells(), setup.mesh.num_cells());
        SweepFactory { setup }
    }

    fn max_faces(&self) -> usize {
        // Homogeneous element types in this reproduction: probe cell 0.
        self.setup.mesh.num_faces(0)
    }
}

/// Per-program scheduling state: the fine/coarse counterpart of the
/// shared [`SweepMode`].
enum Sched {
    /// DAG-driven execution; `trace` is `Some` while recording.
    Fine {
        state: SweepState,
        trace: Option<(ClusterTrace, Arc<TraceBins>)>,
    },
    /// Coarse replay over the compiled task. `vertices_left` tracks the
    /// remaining workload in vertex units (the unit counting
    /// termination accounts in), not clusters.
    Coarse {
        state: CoarseSweepState,
        task: Arc<ReplayTask>,
        vertices_left: u64,
    },
}

/// Where the kernel loop deposits outgoing remote face fluxes.
enum RemoteSink<'a> {
    /// Fine mode: append stream items to per-destination-patch writers.
    Streams {
        writers: &'a mut HashMap<PatchId, Writer>,
        counts: &'a mut HashMap<PatchId, u32>,
    },
    /// Coarse mode: stage values in the per-fine-remote-edge slots the
    /// pre-resolved [`ReplayTask`] emissions read from. Slots are
    /// assigned by a running per-vertex counter — remote downwind faces
    /// are visited in the same face order the subgraph packed its
    /// remote CSR in, so no per-face position scan is needed.
    Slots { vals: &'a mut [f64] },
}

/// The patch-program of one `(patch, angle)` sweep task.
pub struct SweepProgram<T: SweepTopology + Send + Sync + 'static> {
    id: ProgramId,
    setup_mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    materials: Arc<MaterialSet>,
    emission: Arc<Vec<f64>>,
    flux_bins: Arc<FluxBins>,
    kernel: KernelKind,
    grain: usize,
    groups: usize,
    weight: f64,
    dir: [f64; 3],
    max_faces: usize,
    /// Scheduling state (fine counters + ready queue, or coarse replay).
    sched: Sched,
    /// Incoming face flux per `local_cell * max_faces * groups`.
    face_flux: Vec<f64>,
    /// Scalar-flux accumulation per `local_cell * groups` (w_a · ψ̄).
    phi_part: Vec<f64>,
    /// Coarse-mode staging: outgoing remote face flux per
    /// `fine_remote_edge * groups` (empty in fine mode).
    remote_vals: Vec<f64>,
    /// Scratch buffers.
    in_buf: Vec<f64>,
    out_buf: Vec<f64>,
    psi_buf: Vec<f64>,
}

impl<T: SweepTopology + Send + Sync + 'static> SweepProgram<T> {
    /// Ingest one *fine* stream item (`dst_cell`, `src_cell`, `groups`
    /// flux values): scan the destination cell's faces for the one
    /// touching the producer and write the values into that upwind
    /// slot. Returns the destination's local vertex index. (Coarse
    /// streams skip this scan entirely — their items carry the
    /// plan-resolved slot on the wire.)
    fn ingest_item(&mut self, r: &mut Reader) -> u32 {
        let dst_cell = r.get_u32() as usize;
        let src_cell = r.get_u32() as usize;
        let li = self.problem.patches.local_index(dst_cell);
        // Which face of dst_cell touches src_cell?
        let face = jsweep_mesh::face_toward(self.setup_mesh.as_ref(), dst_cell, src_cell)
            .expect("stream item with non-adjacent cells");
        for g in 0..self.groups {
            self.face_flux[(li * self.max_faces + face) * self.groups + g] = r.get_f64();
        }
        li as u32
    }

    /// Run the numerical kernel over `cluster` (in order): solve every
    /// cell, accumulate the angular-weighted scalar flux, write local
    /// downwind face fluxes in place and hand remote ones to `sink`.
    /// Identical physics in both scheduling modes — which is what makes
    /// the coarse replay bit-identical to the fine path.
    fn kernel_cluster(
        &mut self,
        sub: &Subgraph,
        broken: &HashSet<(u32, u32)>,
        cluster: &[u32],
        sink: &mut RemoteSink<'_>,
    ) {
        let mesh = self.setup_mesh.clone();
        let materials = self.materials.clone();
        let emission = self.emission.clone();
        let problem = self.problem.clone();
        let patches = &problem.patches;
        let groups = self.groups;
        let mf = self.max_faces;
        for &v in cluster {
            // Staging slots for this vertex's remote downwind faces are
            // consumed in CSR order (see `RemoteSink::Slots`).
            let mut rem_seen = 0u32;
            let cell = sub.cells[v as usize] as usize;
            let mat = materials.material(cell);
            self.in_buf.clear();
            self.in_buf.extend_from_slice(
                &self.face_flux[(v as usize * mf) * groups..(v as usize * mf + mf) * groups],
            );
            self.out_buf.resize(mf * groups, 0.0);
            self.psi_buf.resize(groups, 0.0);
            let in_buf = std::mem::take(&mut self.in_buf);
            let mut out_buf = std::mem::take(&mut self.out_buf);
            let mut psi_buf = std::mem::take(&mut self.psi_buf);
            solve_cell(
                mesh.as_ref(),
                cell,
                self.dir,
                self.kernel,
                &mat.sigma_t,
                &emission[cell * groups..(cell + 1) * groups],
                &in_buf,
                &mut out_buf,
                &mut psi_buf,
            );
            self.in_buf = in_buf;
            self.out_buf = out_buf;
            self.psi_buf = psi_buf;
            // Accumulate the angular-weighted cell flux.
            for g in 0..groups {
                self.phi_part[v as usize * groups + g] += self.weight * self.psi_buf[g];
            }
            // Distribute outgoing face fluxes.
            for f in 0..mesh.num_faces(cell) {
                let face = mesh.face(cell, f);
                if face.flow(self.dir) <= 0.0 {
                    continue;
                }
                let Some(nb) = face.neighbor.cell() else {
                    continue;
                };
                if !broken.is_empty() && broken.contains(&(cell as u32, nb as u32)) {
                    // Cycle-broken edge: the consumer treats this
                    // face as vacuum; do not write or stream it.
                    continue;
                }
                let nb_patch = patches.patch_of(nb);
                if nb_patch == self.id.patch {
                    // Local downwind neighbour: write straight into
                    // its incoming face slot.
                    let nli = patches.local_index(nb);
                    let nface = jsweep_mesh::face_toward(mesh.as_ref(), nb, cell)
                        .expect("downwind neighbour without reciprocal face");
                    for g in 0..groups {
                        self.face_flux[(nli * mf + nface) * groups + g] =
                            self.out_buf[f * groups + g];
                    }
                } else {
                    match sink {
                        RemoteSink::Streams { writers, counts } => {
                            // Remote: append to the per-patch stream.
                            let w = writers.entry(nb_patch).or_insert_with(|| {
                                let mut w = Writer::with_capacity(64);
                                w.put_u32(0); // patched below
                                w
                            });
                            w.put_u32(nb as u32);
                            w.put_u32(cell as u32);
                            for g in 0..groups {
                                w.put_f64(self.out_buf[f * groups + g]);
                            }
                            *counts.entry(nb_patch).or_default() += 1;
                        }
                        RemoteSink::Slots { vals } => {
                            // Remote: stage in this fine edge's slot;
                            // the coarse-edge emission reads it back.
                            // `Subgraph::build` packs a vertex's remote
                            // edges in the face order of this very
                            // loop (broken and flow-0 faces skipped on
                            // both sides), so the k-th remote downwind
                            // face stages at `rem_off[v] + k` — no
                            // position scan in the replay hot path.
                            let k = (sub.rem_off[v as usize] + rem_seen) as usize;
                            rem_seen += 1;
                            debug_assert_eq!(
                                sub.rem_dst[k].cell, nb as u32,
                                "remote CSR order diverged from face order"
                            );
                            vals[k * groups..(k + 1) * groups]
                                .copy_from_slice(&self.out_buf[f * groups..(f + 1) * groups]);
                        }
                    }
                }
            }
        }
    }

    /// Fine-mode `compute()`: pop a cluster of ready vertices
    /// (recording it when tracing), run the kernel, emit one stream per
    /// target patch (clustering aggregates messages, §V-C benefit 2).
    fn compute_fine(&mut self, ctx: &mut ComputeCtx, sub: &Subgraph, broken: &HashSet<(u32, u32)>) {
        let Sched::Fine { state, trace } = &mut self.sched else {
            unreachable!("compute_fine on a coarse program");
        };
        // DAG bookkeeping: pop a cluster of ready vertices.
        let cluster = state.pop_cluster(sub, self.grain, |_, _| {});
        if cluster.is_empty() {
            return;
        }
        if let Some((t, _)) = trace {
            t.record(cluster.clone());
        }
        ctx.work_done = cluster.len() as u64;

        // Numerical kernel + stream assembly.
        let mut writers: HashMap<PatchId, Writer> = HashMap::new();
        let mut counts: HashMap<PatchId, u32> = HashMap::new();
        ctx.kernel(|| {
            let mut sink = RemoteSink::Streams {
                writers: &mut writers,
                counts: &mut counts,
            };
            self.kernel_cluster(sub, broken, &cluster, &mut sink);
        });

        let mut targets: Vec<(PatchId, Writer)> = writers.into_iter().collect();
        targets.sort_by_key(|(p, _)| *p);
        for (patch, w) in targets {
            let mut bytes = w.finish().to_vec();
            bytes[..4].copy_from_slice(&counts[&patch].to_le_bytes());
            ctx.send(Stream {
                src: self.id,
                dst: ProgramId::new(patch, self.id.task),
                payload: Bytes::from(bytes),
            });
        }

        // On completion, deposit the scalar-flux contribution and, when
        // recording, the cluster trace.
        let Sched::Fine { state, trace } = &mut self.sched else {
            unreachable!();
        };
        if state.is_complete() {
            if let Some((t, bins)) = trace.take() {
                let tid = self
                    .problem
                    .tid(self.id.patch.index(), self.id.task.0 as usize);
                *bins[tid].lock() = Some(t);
            }
            self.deposit_flux();
        }
    }

    /// Coarse-mode `compute()` (§V-E replay): pop one whole coarse
    /// vertex, execute its recorded vertex list in order, and emit
    /// exactly one stream per outgoing coarse edge — no per-vertex
    /// in-degree bookkeeping, no priority recomputation.
    fn compute_coarse(
        &mut self,
        ctx: &mut ComputeCtx,
        sub: &Subgraph,
        broken: &HashSet<(u32, u32)>,
    ) {
        let (task, cv) = {
            let Sched::Coarse {
                state,
                task,
                vertices_left,
            } = &mut self.sched
            else {
                unreachable!("compute_coarse on a fine program");
            };
            let Some(cv) = state.pop(&task.coarse) else {
                return;
            };
            *vertices_left -= task.coarse.clusters[cv as usize].len() as u64;
            (task.clone(), cv)
        };
        let cluster = &task.coarse.clusters[cv as usize];
        // ClusterTrace::record drops empty clusters, so a compiled
        // coarse vertex is never empty; executing one would emit its
        // coarse edges without computing anything.
        assert!(
            !cluster.is_empty(),
            "coarse replay scheduled an empty compute cluster (trace contract violated)"
        );
        ctx.work_done = cluster.len() as u64;

        let mut vals = std::mem::take(&mut self.remote_vals);
        let groups = self.groups;
        // Serialization happens inside the kernel closure, exactly as
        // the fine path packs its stream items there — keeping the
        // Kernel/GraphOp split comparable between the two modes.
        let streams = ctx.kernel(|| {
            let mut sink = RemoteSink::Slots { vals: &mut vals };
            self.kernel_cluster(sub, broken, cluster, &mut sink);
            // One stream per outgoing coarse edge, items pre-resolved.
            task.emits[cv as usize]
                .iter()
                .map(|emit| {
                    // Stream size is exactly known at plan-build time:
                    // header (cluster + count) plus one pre-resolved
                    // slot and `groups` values per item.
                    let mut w = Writer::with_capacity(8 + emit.items.len() * (4 + 8 * groups));
                    w.put_u32(emit.cluster);
                    w.put_u32(emit.items.len() as u32);
                    for item in &emit.items {
                        w.put_u32(item.dst_slot);
                        let k = item.rem_idx as usize;
                        for g in 0..groups {
                            w.put_f64(vals[k * groups + g]);
                        }
                    }
                    Stream {
                        src: self.id,
                        dst: ProgramId::new(emit.patch, self.id.task),
                        payload: w.finish(),
                    }
                })
                .collect::<Vec<_>>()
        });
        for stream in streams {
            ctx.send(stream);
        }
        self.remote_vals = vals;

        let Sched::Coarse { state, .. } = &self.sched else {
            unreachable!();
        };
        if state.is_complete() {
            self.deposit_flux();
        }
    }

    /// Deposit the finished scalar-flux contribution into the patch bin.
    fn deposit_flux(&mut self) {
        let mut part = Vec::new();
        std::mem::swap(&mut part, &mut self.phi_part);
        let mut bin = self.flux_bins[self.id.patch.index()].lock();
        bin.push((self.id.task.0, part));
    }
}

impl<T: SweepTopology + Send + Sync + 'static> PatchProgram for SweepProgram<T> {
    fn init(&mut self) {
        // State is built in `create`; nothing further. Boundary faces
        // already hold the vacuum condition (zeros).
    }

    fn input(&mut self, _src: ProgramId, payload: Bytes) {
        let mut r = Reader::new(payload);
        if matches!(self.sched, Sched::Coarse { .. }) {
            // One coarse edge per stream: all items, then a single
            // in-degree decrement on the target coarse vertex. Items
            // carry the pre-resolved face-flux slot, so ingestion is a
            // direct write — no adjacency scan.
            let cv = r.get_u32();
            let n = r.get_u32();
            for _ in 0..n {
                let slot = r.get_u32() as usize;
                for g in 0..self.groups {
                    self.face_flux[slot * self.groups + g] = r.get_f64();
                }
            }
            let Sched::Coarse { state, .. } = &mut self.sched else {
                unreachable!();
            };
            state.receive(cv);
        } else {
            let n = r.get_u32();
            for _ in 0..n {
                let li = self.ingest_item(&mut r);
                let Sched::Fine { state, .. } = &mut self.sched else {
                    unreachable!();
                };
                state.receive(li);
            }
        }
    }

    fn compute(&mut self, ctx: &mut ComputeCtx) {
        let (p, a) = (self.id.patch.index(), self.id.task.0 as usize);
        let subs_arc = self.problem.subs[a].clone();
        let sub = &subs_arc[p];
        let broken = self.problem.broken[a].clone();
        if matches!(self.sched, Sched::Coarse { .. }) {
            self.compute_coarse(ctx, sub, &broken);
        } else {
            self.compute_fine(ctx, sub, &broken);
        }
    }

    fn vote_to_halt(&self) -> bool {
        match &self.sched {
            Sched::Fine { state, .. } => !state.has_ready(),
            Sched::Coarse { state, .. } => !state.has_ready(),
        }
    }

    fn remaining_work(&self) -> u64 {
        match &self.sched {
            Sched::Fine { state, .. } => state.remaining(),
            Sched::Coarse { vertices_left, .. } => *vertices_left,
        }
    }
}

impl<T: SweepTopology + Send + Sync + 'static> ProgramFactory for SweepFactory<T> {
    type Program = SweepProgram<T>;

    fn create(&self, id: ProgramId) -> SweepProgram<T> {
        let s = &self.setup;
        let (p, a) = (id.patch.index(), id.task.0 as usize);
        let sub = &s.problem.subs[a][p];
        let groups = s.materials.num_groups();
        let mf = self.max_faces();
        let n = sub.num_vertices();
        let (sched, remote_vals) = match &s.mode {
            SweepMode::Fine { trace_bins } => {
                let prio = s.problem.vprio[a][p].clone();
                (
                    Sched::Fine {
                        state: SweepState::new(sub, prio),
                        // Only canonical angles record: octant members
                        // share the canonical DAG, so one trace per
                        // octant serves every member at replay time.
                        trace: trace_bins
                            .as_ref()
                            .filter(|_| s.problem.canonical_angle(a) == a)
                            .map(|bins| (ClusterTrace::default(), bins.clone())),
                    },
                    Vec::new(),
                )
            }
            SweepMode::Coarse { plan } => {
                let task = plan.tasks[a][p].clone();
                (
                    Sched::Coarse {
                        state: CoarseSweepState::new(&task.coarse),
                        vertices_left: task.coarse.num_vertices() as u64,
                        task,
                    },
                    vec![0.0; sub.rem_dst.len() * groups],
                )
            }
        };
        SweepProgram {
            id,
            setup_mesh: s.mesh.clone(),
            problem: s.problem.clone(),
            materials: s.materials.clone(),
            emission: s.emission.clone(),
            flux_bins: s.flux_bins.clone(),
            kernel: s.kernel,
            grain: s.grain,
            groups,
            weight: s
                .quadrature
                .ordinate(jsweep_quadrature::AngleId(id.task.0))
                .weight,
            dir: s
                .quadrature
                .direction(jsweep_quadrature::AngleId(id.task.0)),
            max_faces: mf,
            sched,
            face_flux: vec![0.0; n * mf * groups],
            phi_part: vec![0.0; n * groups],
            remote_vals,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            psi_buf: Vec::new(),
        }
    }

    fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
        let s = &self.setup;
        let mut ids = Vec::new();
        for p in s.problem.patches.patches_on_rank(rank) {
            for a in 0..s.problem.num_angles {
                ids.push(ProgramId::new(p, TaskTag(a as u32)));
            }
        }
        ids
    }

    fn rank_of(&self, id: ProgramId) -> usize {
        self.setup.problem.patches.rank_of(id.patch)
    }

    fn priority(&self, id: ProgramId) -> i64 {
        self.setup.problem.pprio[id.task.0 as usize][id.patch.index()]
    }

    fn initial_workload(&self, id: ProgramId) -> u64 {
        let (p, a) = (id.patch.index(), id.task.0 as usize);
        self.setup.problem.subs[a][p].num_vertices() as u64
    }
}
