//! Session stress/soak suite: a resident [`SolverSession`] serving
//! concurrent campaigns.
//!
//! * `stress_concurrent_campaigns_bit_identical` — hundreds of queued
//!   solves from multiple submitter threads; every campaign's flux is
//!   bit-identical to a solo `solve_parallel_cached` run.
//! * `fifo_schedule_is_deterministic` / `round_robin_schedule_is_deterministic`
//!   — dslab-style: a seeded request order against a known admission
//!   policy yields an exact epoch schedule.
//! * `soak_refinement_under_load` (`--ignored`) — refinement bumps
//!   interleaved with in-flight campaigns: no stale-plan replay, no
//!   universe leak across 50+ campaign lifecycles.

use jsweep::prelude::*;
use jsweep::transport::{SessionStats, SolveOutcome};
use std::sync::Arc;

/// Small world every test shares: 4³ cells, 2×2×2 patches on 2
/// simulated ranks, S2 — sized for single-core CI.
fn build_world() -> (Arc<StructuredMesh>, Arc<SweepProblem>, QuadratureSet) {
    let mesh = Arc::new(StructuredMesh::unit(4, 4, 4));
    let quad = QuadratureSet::sn(2);
    let patches = decompose_structured(&mesh, (2, 2, 2), 2);
    let problem = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    (mesh, problem, quad)
}

fn materials(sigma_s: f64) -> Arc<MaterialSet> {
    Arc::new(MaterialSet::homogeneous(
        64,
        Material::uniform(1, 1.0, sigma_s, 1.0),
    ))
}

fn request(mats: &Arc<MaterialSet>) -> SolveRequest {
    SolveRequest {
        materials: mats.clone(),
        max_iterations: None,
        tolerance: None,
        retry: None,
    }
}

/// Fixed-iteration config: a tolerance no residual reaches pins every
/// solve to exactly `max_iterations` epochs, so schedules and flux are
/// reproducible regardless of scheduling interleavings.
fn fixed_iteration_config() -> SnConfig {
    SnConfig {
        grain: 16,
        max_iterations: 3,
        tolerance: 1e-14,
        ..Default::default()
    }
}

#[test]
fn stress_concurrent_campaigns_bit_identical() {
    const CAMPAIGNS: usize = 4;
    const THREADS_PER_CAMPAIGN: usize = 2;
    const FLOOD_PER_THREAD: usize = 26;
    // 4 campaigns × (1 warm-up + 2×26 flood) = 212 queued solves.
    let (mesh, problem, quad) = build_world();
    let cfg = fixed_iteration_config();

    // Solo references, one per campaign's materials, each against a
    // fresh cache — the bit-identity golden.
    let campaign_mats: Vec<Arc<MaterialSet>> = (0..CAMPAIGNS)
        .map(|c| materials(0.1 + 0.1 * c as f64))
        .collect();
    let solo: Vec<_> = campaign_mats
        .iter()
        .map(|m| {
            solve_parallel_cached(
                mesh.clone(),
                problem.clone(),
                &quad,
                m.clone(),
                &cfg,
                &PlanCache::new(),
            )
        })
        .collect();

    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: cfg,
            admission: Box::new(RoundRobin::default()),
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..CAMPAIGNS).map(|_| session.campaign()).collect();

    // Warm-up: one solve per campaign runs to completion so the shared
    // plan is compiled and cached before the flood — every flood
    // admission is then a plan-cache hit.
    for (h, m) in handles.iter().zip(&campaign_mats) {
        h.submit(request(m)).wait().expect("warm-up served");
    }

    // Flood: two submitter threads per campaign queue requests
    // concurrently, then collect.
    let mut workers = Vec::new();
    for (c, h) in handles.iter().enumerate() {
        for _ in 0..THREADS_PER_CAMPAIGN {
            let h = h.clone();
            let mats = campaign_mats[c].clone();
            workers.push(std::thread::spawn(move || {
                let tickets: Vec<_> = (0..FLOOD_PER_THREAD)
                    .map(|_| h.submit(request(&mats)))
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| t.wait().expect("flood solve served"))
                    .collect::<Vec<SolveOutcome>>()
            }));
        }
    }
    let mut outcomes: Vec<SolveOutcome> = Vec::new();
    for w in workers {
        outcomes.extend(w.join().expect("submitter thread"));
    }
    assert_eq!(
        outcomes.len(),
        CAMPAIGNS * THREADS_PER_CAMPAIGN * FLOOD_PER_THREAD
    );

    for out in &outcomes {
        let golden = &solo[out.campaign as usize];
        assert_eq!(
            out.solution.phi, golden.phi,
            "campaign {} flux must be bit-identical to its solo run",
            out.campaign
        );
        assert_eq!(out.solution.iterations, golden.iterations);
        assert!(out.queue_wait_seconds >= 0.0);
    }

    for h in &handles {
        let cs = h.stats();
        assert_eq!(
            cs.completed,
            1 + (THREADS_PER_CAMPAIGN * FLOOD_PER_THREAD) as u64
        );
        assert_eq!(cs.rejected, 0);
        assert!(
            cs.plan_cache_hits > 0,
            "flood admissions must hit the shared plan cache"
        );
        assert_eq!(
            cs.epochs_run,
            3 * cs.completed,
            "fixed-iteration solves run exactly 3 epochs each"
        );
        assert!(cs.work_done > 0);
        assert!(cs.epoch_wall_seconds > 0.0);
    }

    session.shutdown();
    let stats: SessionStats = session.stats();
    assert_eq!(stats.universes_launched, 1, "one resident universe total");
    assert_eq!(stats.universes_retired, 1);
    assert_eq!(
        stats.epochs_run,
        stats.campaigns.values().map(|c| c.epochs_run).sum::<u64>()
    );
}

/// Seeded submission order used by both determinism tests: five
/// requests over three campaigns, staged while the session is paused
/// so admission order is exactly submission order.
///
/// Zero scattering makes every solve finish in exactly two epochs
/// (iteration 2 reproduces iteration 1's flux bit-for-bit, the
/// residual is 0), so the schedule is a pure function of the policy.
fn run_seeded_schedule(
    policy: Box<dyn jsweep::transport::AdmissionPolicy>,
) -> Vec<(u64, u64, usize, bool)> {
    let (mesh, problem, quad) = build_world();
    let mats = materials(0.0);
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: SnConfig {
                grain: 16,
                max_iterations: 8,
                ..Default::default()
            },
            admission: policy,
            ..Default::default()
        },
    );
    let a = session.campaign();
    let b = session.campaign();
    let c = session.campaign();
    session.pause();
    // Seeded order: A0, B0, A1, C0, C1.
    let tickets = vec![
        a.submit(request(&mats)),
        b.submit(request(&mats)),
        a.submit(request(&mats)),
        c.submit(request(&mats)),
        c.submit(request(&mats)),
    ];
    session.resume();
    for t in tickets {
        let out = t.wait().expect("seeded solve served");
        assert_eq!(out.solution.iterations, 2, "zero scattering: two epochs");
    }
    session.shutdown();
    let stats = session.stats();
    stats
        .epoch_log
        .iter()
        .map(|e| (e.campaign, e.seq, e.iteration, e.replayed))
        .collect()
}

#[test]
fn fifo_schedule_is_deterministic() {
    let schedule = run_seeded_schedule(Box::new(Fifo));
    // FIFO: each request runs to completion in admission order. All
    // five were admitted before any epoch ran (paused), so none found
    // a cached plan at admission: every first epoch records, every
    // second replays.
    let expected = vec![
        (0, 0, 1, false),
        (0, 0, 2, true),
        (1, 0, 1, false),
        (1, 0, 2, true),
        (0, 1, 1, false),
        (0, 1, 2, true),
        (2, 0, 1, false),
        (2, 0, 2, true),
        (2, 1, 1, false),
        (2, 1, 2, true),
    ];
    assert_eq!(schedule, expected);
}

#[test]
fn round_robin_schedule_is_deterministic() {
    let schedule = run_seeded_schedule(Box::new(RoundRobin::default()));
    // Round-robin: one epoch to the next campaign id each turn,
    // wrapping; a completed campaign drops out of the rotation.
    let expected = vec![
        (0, 0, 1, false),
        (1, 0, 1, false),
        (2, 0, 1, false),
        (0, 0, 2, true),
        (1, 0, 2, true),
        (2, 0, 2, true),
        (0, 1, 1, false),
        (2, 1, 1, false),
        (0, 1, 2, true),
        (2, 1, 2, true),
    ];
    assert_eq!(schedule, expected);
}

/// A ticket dropped without ever being waited on must not block
/// shutdown: the result slot is the ticket's own, and fulfilling a
/// dropped slot is a no-op, not a deadlock.
#[test]
fn dropped_ticket_never_blocks_shutdown() {
    let (mesh, problem, quad) = build_world();
    let mats = materials(0.3);
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: fixed_iteration_config(),
            ..Default::default()
        },
    );
    let h = session.campaign();
    for _ in 0..3 {
        drop(h.submit(request(&mats)));
    }
    let kept = h.submit(request(&mats));
    session.shutdown();
    // Shutdown drained the admitted queue: the kept ticket resolved
    // even though its siblings' results had nowhere to go.
    kept.poll()
        .expect("kept ticket resolved by shutdown")
        .expect("kept solve served");
    let stats = session.stats();
    assert_eq!(stats.campaigns[&h.id()].completed, 4);
    assert_eq!(stats.universes_retired, stats.universes_launched);
}

/// `wait_timeout` observes "not yet" without consuming the ticket,
/// then the real result once the session serves it.
#[test]
fn wait_timeout_is_reusable() {
    use std::time::Duration;
    let (mesh, problem, quad) = build_world();
    let mats = materials(0.3);
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: fixed_iteration_config(),
            ..Default::default()
        },
    );
    let h = session.campaign();
    session.pause();
    let t = h.submit(request(&mats));
    assert!(
        t.wait_timeout(Duration::from_millis(50)).is_none(),
        "paused session cannot have served the request"
    );
    session.resume();
    let out = t
        .wait_timeout(Duration::from_secs(30))
        .expect("resumed session serves the request")
        .expect("solve served");
    assert_eq!(out.campaign, h.id());
    // The result is sticky: the same ticket still observes it.
    assert!(t.poll().expect("sticky result").is_ok());
    assert!(t.wait_timeout(Duration::ZERO).is_some());
    session.shutdown();
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Random interleavings of submit / pause / resume / refine from
    /// two concurrent threads, then shutdown: every ticket resolves
    /// exactly once (a solution, or a deliberate rejection — never a
    /// hang, never a lost slot).
    #[test]
    fn interleaved_commands_resolve_every_ticket(
        ops in proptest::collection::vec(0u8..6, 1..12),
        split in 0usize..12,
    ) {
        let (mesh, problem, quad) = build_world();
        let mats = materials(0.3);
        let mut session = SolverSession::launch(
            mesh,
            problem.clone(),
            quad.clone(),
            SessionOptions {
                solver: SnConfig {
                    grain: 16,
                    max_iterations: 2,
                    tolerance: 1e-14,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let split = split.min(ops.len());
        let (left, right) = ops.split_at(split);
        let halves = [left, right];
        let tickets: Vec<_> = std::thread::scope(|s| {
            let workers: Vec<_> = halves
                .iter()
                .map(|half| {
                    let h = session.campaign();
                    let mats = mats.clone();
                    let session = &session;
                    let quad = &quad;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for &op in *half {
                            match op {
                                0..=2 => mine.push(h.submit(request(&mats))),
                                3 => session.pause(),
                                4 => session.resume(),
                                _ => {
                                    let m = Arc::new(StructuredMesh::unit(4, 4, 4));
                                    let patches = decompose_structured(&m, (2, 2, 2), 2);
                                    let p = Arc::new(SweepProblem::build(
                                        m.as_ref(),
                                        patches,
                                        quad,
                                        &ProblemOptions::default(),
                                    ));
                                    session.refine(m, p);
                                }
                            }
                        }
                        mine
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("interleaving thread"))
                .collect()
        });
        // Shutdown resumes a paused session and drains admitted work.
        session.shutdown();
        for t in &tickets {
            let first = t.poll();
            proptest::prop_assert!(first.is_some(), "ticket left unresolved");
            match first.unwrap() {
                Ok(_) | Err(SessionError::Closed) | Err(SessionError::Rejected(_)) => {}
                Err(other) => panic!("unexpected resolution: {other:?}"),
            }
            // Exactly once: a second observation sees the same slot,
            // not a re-resolution.
            proptest::prop_assert!(t.poll().is_some());
        }
        let stats = session.stats();
        proptest::prop_assert_eq!(stats.universes_retired, stats.universes_launched);
    }
}

/// Refinement bumps interleaved with in-flight campaigns. Run with
/// `cargo test -- --ignored` (or the CI session job).
#[test]
#[ignore = "soak test: ~50 campaign lifecycles, run explicitly"]
fn soak_refinement_under_load() {
    const WAVES: usize = 11;
    const CAMPAIGNS_PER_WAVE: usize = 5;
    let (mesh, problem, quad) = build_world();
    let mut session = SolverSession::launch(
        mesh,
        problem.clone(),
        quad.clone(),
        SessionOptions {
            solver: fixed_iteration_config(),
            eviction: EvictionPolicy::NewestGenerations { keep: 2 },
            ..Default::default()
        },
    );

    let mats = materials(0.3);
    let mut expected_generations = vec![problem.mesh_generation];
    let mut tickets = Vec::new();
    for wave in 0..WAVES {
        // Queue a wave of campaigns, then immediately bump the mesh —
        // the refine command must drain the wave on its old world
        // first (submits and the refine ride one ordered queue).
        for _ in 0..CAMPAIGNS_PER_WAVE {
            let h = session.campaign();
            tickets.push((wave, h.submit(request(&mats))));
        }
        if wave + 1 < WAVES {
            let new_mesh = Arc::new(StructuredMesh::unit(4, 4, 4));
            let patches = decompose_structured(&new_mesh, (2, 2, 2), 2);
            let new_problem = Arc::new(SweepProblem::build(
                new_mesh.as_ref(),
                patches,
                &quad,
                &ProblemOptions::default(),
            ));
            expected_generations.push(new_problem.mesh_generation);
            session.refine(new_mesh, new_problem);
        }
    }

    // Flux golden: the rebuilt meshes are geometrically identical, so
    // every wave's flux must match one solo reference solve.
    let golden = {
        let m = Arc::new(StructuredMesh::unit(4, 4, 4));
        let patches = decompose_structured(&m, (2, 2, 2), 2);
        let p = Arc::new(SweepProblem::build(
            m.as_ref(),
            patches,
            &quad,
            &ProblemOptions::default(),
        ));
        solve_parallel_cached(
            m,
            p,
            &quad,
            mats,
            &fixed_iteration_config(),
            &PlanCache::new(),
        )
    };

    for (wave, t) in tickets {
        let out = t.wait().expect("soak solve served");
        assert_eq!(
            out.mesh_generation, expected_generations[wave],
            "wave {wave} must run against its own mesh generation"
        );
        assert_eq!(
            out.solution.phi, golden.phi,
            "flux invariant across rebuilds"
        );
    }

    session.shutdown();
    let stats = session.stats();
    // No stale-plan replay: every replayed epoch used a plan of the
    // world generation it ran against.
    let mut replays = 0;
    for e in &stats.epoch_log {
        if e.replayed {
            replays += 1;
            assert_eq!(
                e.plan_generation,
                Some(e.mesh_generation),
                "replayed epoch used a plan from another generation"
            );
        }
    }
    assert!(replays > 0, "soak must exercise the replay path");
    // No universe leak: every world that ran epochs was retired.
    assert_eq!(stats.universes_launched, WAVES as u64);
    assert_eq!(stats.universes_retired, stats.universes_launched);
    assert_eq!(
        stats.campaigns.len(),
        WAVES * CAMPAIGNS_PER_WAVE,
        "campaign lifecycles covered"
    );
    // NewestGenerations{keep:2} bounds the cache across 11 generations.
    assert!(session.plan_cache().len() <= 2);
    assert!(session.plan_cache().evictions() >= (WAVES as u64 - 2));
}
