//! The shared active-program pool of one rank.
//!
//! Holds every local patch-program's state machine (Fig. 7): a program
//! is `Idle` (inactive), `Ready` (active, queued by priority) or
//! `Running` (claimed by a worker). Stream delivery reactivates idle
//! programs; workers take the globally highest-priority ready program —
//! the limiting ideal of the paper's lightest-worker assignment, since
//! no worker ever sits idle while an active program exists on the rank.

use crate::program::{PatchProgram, ProgramId, Stream};
use crate::stats::{Breakdown, Category};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Idle,
    Ready,
    Running,
}

struct Slot {
    state: SlotState,
    pending: Vec<(ProgramId, Bytes)>,
    program: Option<Box<dyn PatchProgram>>,
    initialized: bool,
    priority: i64,
}

/// A claimed program, handed to a worker by [`Pool::take`].
pub struct Claim {
    /// Program identity.
    pub id: ProgramId,
    /// The program instance (`None` on first activation — the worker
    /// creates it via the factory).
    pub program: Option<Box<dyn PatchProgram>>,
    /// Streams delivered since the last run.
    pub pending: Vec<(ProgramId, Bytes)>,
    /// Whether `init` has already run.
    pub initialized: bool,
}

struct Inner {
    slots: HashMap<ProgramId, Slot>,
    /// Max-heap on (priority, lowest program id).
    ready: BinaryHeap<(i64, Reverse<ProgramId>)>,
    /// Ready + Running programs.
    active: usize,
    stop: bool,
}

/// Shared per-rank program pool.
pub struct Pool {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// Empty pool.
    pub fn new() -> Pool {
        Pool {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                ready: BinaryHeap::new(),
                active: 0,
                stop: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register and activate a program with the given priority (initial
    /// activation: per §III-A all patch-programs start active).
    pub fn activate(&self, id: ProgramId, priority: i64) {
        let mut g = self.inner.lock();
        let slot = g.slots.entry(id).or_insert(Slot {
            state: SlotState::Idle,
            pending: Vec::new(),
            program: None,
            initialized: false,
            priority,
        });
        slot.priority = priority;
        if slot.state == SlotState::Idle {
            slot.state = SlotState::Ready;
            g.ready.push((priority, Reverse(id)));
            g.active += 1;
            drop(g);
            self.cv.notify_one();
        }
    }

    /// Deliver a stream; reactivates the target if it is idle.
    ///
    /// `priority` is used when the target was never registered (possible
    /// when a stream races ahead of startup activation).
    pub fn deliver(&self, stream: Stream, priority: i64) {
        let mut g = self.inner.lock();
        let slot = g.slots.entry(stream.dst).or_insert(Slot {
            state: SlotState::Idle,
            pending: Vec::new(),
            program: None,
            initialized: false,
            priority,
        });
        slot.pending.push((stream.src, stream.payload));
        if slot.state == SlotState::Idle {
            slot.state = SlotState::Ready;
            let prio = slot.priority;
            g.ready.push((prio, Reverse(stream.dst)));
            g.active += 1;
            drop(g);
            self.cv.notify_one();
        }
    }

    /// Claim the highest-priority ready program, blocking while none is
    /// available. Returns `None` after [`Pool::stop`] once the queue is
    /// drained. Wait time is charged to `bd`'s `Idle` category.
    pub fn take(&self, bd: &mut Breakdown) -> Option<Claim> {
        let mut g = self.inner.lock();
        loop {
            if let Some((_, Reverse(id))) = g.ready.pop() {
                let slot = g.slots.get_mut(&id).expect("ready program has a slot");
                debug_assert_eq!(slot.state, SlotState::Ready);
                slot.state = SlotState::Running;
                let claim = Claim {
                    id,
                    program: slot.program.take(),
                    pending: std::mem::take(&mut slot.pending),
                    initialized: slot.initialized,
                };
                return Some(claim);
            }
            if g.stop {
                return None;
            }
            let t0 = Instant::now();
            self.cv.wait(&mut g);
            bd.add(Category::Idle, t0.elapsed().as_secs_f64());
        }
    }

    /// Return a program after a compute round. `halted` is the program's
    /// `vote_to_halt()`; it re-queues when it stays active or received
    /// streams while running.
    pub fn finish(&self, id: ProgramId, program: Box<dyn PatchProgram>, halted: bool) {
        let mut g = self.inner.lock();
        let slot = g.slots.get_mut(&id).expect("finishing unknown program");
        debug_assert_eq!(slot.state, SlotState::Running);
        slot.program = Some(program);
        slot.initialized = true;
        if !halted || !slot.pending.is_empty() {
            slot.state = SlotState::Ready;
            let prio = slot.priority;
            g.ready.push((prio, Reverse(id)));
            drop(g);
            self.cv.notify_one();
        } else {
            slot.state = SlotState::Idle;
            g.active -= 1;
        }
    }

    /// True when no program is ready or running (the rank is quiescent
    /// apart from possible in-flight messages).
    pub fn is_quiet(&self) -> bool {
        self.inner.lock().active == 0
    }

    /// Wake all workers and make further `take` calls return `None`
    /// once the queue is empty.
    pub fn stop(&self) {
        self.inner.lock().stop = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ComputeCtx, TaskTag};
    use jsweep_mesh::PatchId;

    struct Nop;
    impl PatchProgram for Nop {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {}
        fn compute(&mut self, _ctx: &mut ComputeCtx) {}
        fn vote_to_halt(&self) -> bool {
            true
        }
        fn remaining_work(&self) -> u64 {
            0
        }
    }

    fn pid(p: u32, t: u32) -> ProgramId {
        ProgramId::new(PatchId(p), TaskTag(t))
    }

    #[test]
    fn take_returns_highest_priority_first() {
        let pool = Pool::new();
        pool.activate(pid(0, 0), 1);
        pool.activate(pid(1, 0), 10);
        pool.activate(pid(2, 0), 5);
        let mut bd = Breakdown::default();
        let a = pool.take(&mut bd).unwrap();
        assert_eq!(a.id, pid(1, 0));
        pool.finish(a.id, Box::new(Nop), true);
        let b = pool.take(&mut bd).unwrap();
        assert_eq!(b.id, pid(2, 0));
    }

    #[test]
    fn tie_break_lowest_program_id() {
        let pool = Pool::new();
        pool.activate(pid(7, 1), 3);
        pool.activate(pid(7, 0), 3);
        let mut bd = Breakdown::default();
        assert_eq!(pool.take(&mut bd).unwrap().id, pid(7, 0));
    }

    #[test]
    fn deliver_reactivates_idle_program() {
        let pool = Pool::new();
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(&mut bd).unwrap();
        pool.finish(claim.id, Box::new(Nop), true); // halts -> idle
        assert!(pool.is_quiet());
        pool.deliver(
            Stream {
                src: pid(1, 0),
                dst: pid(0, 0),
                payload: Bytes::new(),
            },
            0,
        );
        assert!(!pool.is_quiet());
        let again = pool.take(&mut bd).unwrap();
        assert_eq!(again.id, pid(0, 0));
        assert_eq!(again.pending.len(), 1);
        assert!(again.initialized);
        assert!(again.program.is_some());
    }

    #[test]
    fn deliver_during_running_requeues_on_finish() {
        let pool = Pool::new();
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(&mut bd).unwrap();
        // Stream arrives while the program is running.
        pool.deliver(
            Stream {
                src: pid(9, 9),
                dst: pid(0, 0),
                payload: Bytes::new(),
            },
            0,
        );
        pool.finish(claim.id, Box::new(Nop), true);
        // Despite voting to halt, the pending stream keeps it active.
        assert!(!pool.is_quiet());
        let again = pool.take(&mut bd).unwrap();
        assert_eq!(again.pending.len(), 1);
    }

    #[test]
    fn non_halting_program_requeues() {
        let pool = Pool::new();
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(&mut bd).unwrap();
        pool.finish(claim.id, Box::new(Nop), false);
        assert!(!pool.is_quiet());
    }

    #[test]
    fn stop_unblocks_takers() {
        let pool = std::sync::Arc::new(Pool::new());
        let p2 = pool.clone();
        let h = std::thread::spawn(move || {
            let mut bd = Breakdown::default();
            p2.take(&mut bd).is_none()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        pool.stop();
        assert!(h.join().unwrap());
    }

    #[test]
    fn activate_is_idempotent_while_ready() {
        let pool = Pool::new();
        pool.activate(pid(0, 0), 0);
        pool.activate(pid(0, 0), 0);
        let mut bd = Breakdown::default();
        let claim = pool.take(&mut bd).unwrap();
        pool.finish(claim.id, Box::new(Nop), true);
        assert!(pool.is_quiet(), "double activation corrupted the queue");
    }
}
