//! Quickstart: sweep a small structured mesh with the JSweep runtime.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 16³ mesh, decomposes it into 4³-cell patches over two
//! simulated MPI ranks, solves a one-group fixed-source transport
//! problem with S2 ordinates, and prints the flux profile along the
//! cube diagonal plus the runtime's time breakdown — including the
//! §V-E effect: iteration 1 records its vertex clusters, iterations
//! ≥ 2 replay the coarsened task graph, and the graph-op (scheduling)
//! share of worker time shrinks accordingly.

use jsweep::prelude::*;
use jsweep_core::stats::Category;
use std::sync::Arc;

fn main() {
    let n = 16;
    let ranks = 2;
    let mesh = Arc::new(StructuredMesh::unit(n, n, n));
    let patches = decompose_structured(&mesh, (4, 4, 4), ranks);
    println!(
        "mesh: {n}³ cells, {} patches over {ranks} ranks",
        patches.num_patches()
    );

    let quad = QuadratureSet::sn(2);
    let materials = Arc::new(MaterialSet::homogeneous(
        mesh.num_cells(),
        Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let problem = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));

    let config = SnConfig {
        max_iterations: 20,
        tolerance: 1e-8,
        grain: 64,
        workers_per_rank: 2,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let solution = solve_parallel(mesh.clone(), problem, &quad, materials, &config);
    println!(
        "converged in {} source iterations (residual {:.2e}) in {:.2}s",
        solution.iterations,
        solution.residual,
        t0.elapsed().as_secs_f64()
    );

    println!("\nscalar flux along the main diagonal:");
    for i in 0..n {
        let c = mesh.cell_id(i, i, i);
        println!("  cell ({i:2},{i:2},{i:2})  phi = {:.6}", solution.phi[c]);
    }

    if let Some(stats) = solution.stats.last() {
        let w = stats.workers_merged();
        println!("\nlast-iteration worker time breakdown (all ranks):");
        for cat in [
            Category::Kernel,
            Category::GraphOp,
            Category::Input,
            Category::Output,
            Category::Idle,
        ] {
            println!("  {:>9}: {:.4}s", cat.name(), w.get(cat));
        }
        println!(
            "  streams: {} local, {} cross-rank ({} bytes)",
            stats.streams_local, stats.streams_sent, stats.bytes_sent
        );
    }

    // §V-E coarse-graph replay: iteration 1 records and runs the fine
    // DAG; every later iteration replays the coarsened graph. The
    // graph-op (scheduling) category shrinks and compute calls drop.
    if solution.stats.len() >= 2 {
        let record = &solution.stats[0];
        let replay = &solution.stats[solution.stats.len() - 1];
        println!("\ncoarse-graph replay (§V-E):");
        println!(
            "  plan build: {:.4}s (one-off, after iteration 1)",
            solution.coarse_build_seconds
        );
        println!(
            "  iteration 1 (fine, recording): graph-op {:.4}s, {} compute calls",
            record.category_seconds(Category::GraphOp),
            record.compute_calls
        );
        println!(
            "  last iteration (coarse replay): graph-op {:.4}s, {} compute calls",
            replay.category_seconds(Category::GraphOp),
            replay.compute_calls
        );
    }
}
