//! The typed event taxonomy every lane records.

/// What a recorded event describes. Durational kinds carry a
/// `[t0, t1]` window; instant kinds carry only `t0` (`t1 == t0`).
///
/// The `a`/`b` payload words are kind-specific (see each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum EventKind {
    /// One `run_epoch` on one rank. `a` = epoch index on that rank,
    /// `b` = the request span id threaded through the epoch tuning
    /// (0 when the epoch belongs to no tracked request).
    Epoch = 1,
    /// The epoch-boundary fence (barrier + pool reset).
    Fence = 2,
    /// One (possibly blocking) claim round-trip against the pool.
    /// `a` = programs claimed.
    Claim = 3,
    /// One patch-program `compute` call. `a` = patch id, `b` = task
    /// tag.
    Compute = 4,
    /// Serialising one outgoing frame. `a` = destination rank,
    /// `b` = payload bytes.
    Pack = 5,
    /// Routing one worker report through the route table. `a` =
    /// streams routed.
    Route = 6,
    /// Compiling a coarse replay plan. `a` = mesh generation.
    PlanCompile = 7,
    /// Instant: one frame handed to the transport. `a` = destination
    /// rank, `b` = payload bytes.
    Send = 8,
    /// Instant: one frame received from the transport. `a` = source
    /// rank, `b` = payload bytes.
    Recv = 9,
    /// Instant: a fault was observed (contained panic, stall, rank
    /// death). `a` = kind-specific word (e.g. blamed rank or patch).
    Fault = 10,
    /// Instant: a plan-cache lookup hit. `a` = mesh generation.
    CacheHit = 11,
    /// Instant: a plan-cache lookup missed. `a` = mesh generation.
    CacheMiss = 12,
}

/// Every kind, in taxonomy order.
pub const EVENT_KINDS: [EventKind; 12] = [
    EventKind::Epoch,
    EventKind::Fence,
    EventKind::Claim,
    EventKind::Compute,
    EventKind::Pack,
    EventKind::Route,
    EventKind::PlanCompile,
    EventKind::Send,
    EventKind::Recv,
    EventKind::Fault,
    EventKind::CacheHit,
    EventKind::CacheMiss,
];

impl EventKind {
    /// Display / trace-event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Epoch => "epoch",
            EventKind::Fence => "fence",
            EventKind::Claim => "claim",
            EventKind::Compute => "compute",
            EventKind::Pack => "pack",
            EventKind::Route => "route",
            EventKind::PlanCompile => "plan-compile",
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Fault => "fault",
            EventKind::CacheHit => "cache-hit",
            EventKind::CacheMiss => "cache-miss",
        }
    }

    /// True for point-in-time kinds (no duration).
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            EventKind::Send
                | EventKind::Recv
                | EventKind::Fault
                | EventKind::CacheHit
                | EventKind::CacheMiss
        )
    }

    /// Decode a ring-slot word back into a kind (`None` for a word no
    /// kind maps to — e.g. a never-written slot).
    pub fn from_u64(v: u64) -> Option<EventKind> {
        EVENT_KINDS.into_iter().find(|k| *k as u64 == v)
    }
}

/// One recorded event. Timestamps are nanoseconds on the owning
/// [`crate::Telemetry`]'s monotonic clock (shared origin across every
/// lane of the process, so cross-thread ordering is meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Start (or occurrence, for instants), nanoseconds.
    pub t0: u64,
    /// End, nanoseconds (`== t0` for instants).
    pub t1: u64,
    /// First kind-specific payload word (see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_u64() {
        for k in EVENT_KINDS {
            assert_eq!(EventKind::from_u64(k as u64), Some(k));
        }
        assert_eq!(EventKind::from_u64(0), None);
        assert_eq!(EventKind::from_u64(999), None);
    }

    #[test]
    fn kind_names_unique() {
        let mut names: Vec<&str> = EVENT_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EVENT_KINDS.len());
    }
}
