//! Priority strategies (paper §V-D).
//!
//! JSweep prioritises at two levels:
//!
//! * **(patch, angle) priority** steers which patch-program a worker
//!   runs next: `prior(p, a) = prior(a)·C + prior(p)` with `C` large, so
//!   programs of the same angle are scheduled consecutively and their
//!   streams flow to nearby patches quickly.
//! * **Vertex priority** orders the ready queue inside one
//!   patch-program (the `PriorityQueue Q` of Listing 1).
//!
//! Three strategies are provided at both levels:
//!
//! * `BFS` — breadth-first level from the sweep sources (favours wide
//!   fronts → more parallelism);
//! * `LDCP` — longest distance on the critical path (classic
//!   critical-path-first scheduling; the paper recommends it for
//!   structured meshes);
//! * `SLBD` — shortest local boundary distance: prefer vertices (or
//!   patches) closest to data that other patches (or ranks) are waiting
//!   on, so streams are emitted as early as possible. The paper finds
//!   SLBD+SLBD consistently best.
//!
//! Higher priority value = scheduled earlier.

use crate::dag::{bfs_levels, distance_to_targets, height_to_sinks, Csr};
use crate::subgraph::Subgraph;
use jsweep_mesh::{PatchId, PatchSet};
use jsweep_quadrature::AngleId;

/// A priority heuristic, applicable at the vertex or patch level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityStrategy {
    /// Breadth-first level from sweep sources.
    Bfs,
    /// Longest distance on critical path.
    Ldcp,
    /// Shortest local boundary distance.
    Slbd,
}

impl PriorityStrategy {
    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PriorityStrategy::Bfs => "BFS",
            PriorityStrategy::Ldcp => "LDCP",
            PriorityStrategy::Slbd => "SLBD",
        }
    }
}

/// Saturating conversion of a (possibly unreachable) distance.
fn finite(d: u32) -> i64 {
    if d == u32::MAX {
        1 << 30
    } else {
        d as i64
    }
}

/// Per-vertex priorities for one subgraph under the given strategy.
///
/// Priorities are computed once per `(patch, angle)` and reused across
/// sweep iterations (the DAG is constant while the mesh is).
pub fn vertex_priorities(sub: &Subgraph, strategy: PriorityStrategy) -> Vec<i64> {
    let csr = sub.internal_csr();
    match strategy {
        PriorityStrategy::Bfs => {
            let sources: Vec<u32> = sub
                .internal_in_degrees()
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d == 0)
                .map(|(v, _)| v as u32)
                .collect();
            bfs_levels(&csr, &sources)
                .into_iter()
                .map(|l| -finite(l))
                .collect()
        }
        PriorityStrategy::Ldcp => height_to_sinks(&csr)
            .into_iter()
            .map(|h| h as i64)
            .collect(),
        PriorityStrategy::Slbd => {
            let exits = sub.exit_vertices();
            if exits.is_empty() {
                // Terminal patch of the sweep: no stream ever leaves it;
                // fall back to critical-path order.
                return height_to_sinks(&csr)
                    .into_iter()
                    .map(|h| h as i64)
                    .collect();
            }
            distance_to_targets(&csr, &exits)
                .into_iter()
                .map(|d| -finite(d))
                .collect()
        }
    }
}

/// The patch-level dependency graph of one angle: an edge `p → q` when
/// any vertex of `G_{p,t}` has a remote downwind edge into patch `q`.
pub fn patch_graph(subs: &[Subgraph], num_patches: usize) -> Csr {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for sub in subs {
        let mut targets: Vec<u32> = sub.rem_dst.iter().map(|re| re.patch.0).collect();
        targets.sort_unstable();
        targets.dedup();
        for q in targets {
            edges.push((sub.patch.0, q));
        }
    }
    Csr::from_edges(num_patches, &edges)
}

/// Per-patch priorities for one angle under the given strategy.
///
/// The patch graph of a single angle may itself contain 2-cycles
/// (patch A feeds B *and* B feeds A — the interleaved dependency of
/// Fig. 4), so BFS/SLBD use plain breadth-first distances and LDCP
/// falls back to BFS depth on cyclic patch graphs.
pub fn patch_priorities(
    subs: &[Subgraph],
    patches: &PatchSet,
    strategy: PriorityStrategy,
) -> Vec<i64> {
    let n = patches.num_patches();
    let g = patch_graph(subs, n);
    match strategy {
        PriorityStrategy::Bfs => {
            let deg = g.in_degrees();
            let sources: Vec<u32> = (0..n as u32).filter(|&p| deg[p as usize] == 0).collect();
            bfs_levels(&g, &sources)
                .into_iter()
                .map(|l| -finite(l))
                .collect()
        }
        PriorityStrategy::Ldcp => {
            if crate::dag::is_acyclic(&g) {
                height_to_sinks(&g).into_iter().map(|h| h as i64).collect()
            } else {
                // Cyclic patch graph: approximate the critical path by
                // reverse BFS depth from the sink patches.
                let sinks: Vec<u32> = (0..n as u32).filter(|&p| g.succ(p).is_empty()).collect();
                distance_to_targets(&g, &sinks)
                    .into_iter()
                    .map(|d| {
                        let d = finite(d);
                        if d >= 1 << 30 {
                            0
                        } else {
                            d
                        }
                    })
                    .collect()
            }
        }
        PriorityStrategy::Slbd => {
            // Patches adjacent (downwind) to a patch on another rank.
            let targets: Vec<u32> = (0..n as u32)
                .filter(|&p| {
                    g.succ(p)
                        .iter()
                        .any(|&q| patches.rank_of(PatchId(q)) != patches.rank_of(PatchId(p)))
                })
                .collect();
            if targets.is_empty() {
                return vec![0; n];
            }
            distance_to_targets(&g, &targets)
                .into_iter()
                .map(|d| -finite(d))
                .collect()
        }
    }
}

/// The two-level `prior(p, a) = prior(a)·C + prior(p)` composition.
///
/// `prior(a)` decreases with the angle id so that all patch-programs of
/// angle 0 outrank those of angle 1 and so on — the paper's requirement
/// that "patch-programs with the same angle are continuously scheduled".
#[derive(Debug, Clone)]
pub struct TwoLevelPriority {
    /// `priors[angle][patch]` patch-level priorities.
    priors: Vec<Vec<i64>>,
    /// The constant factor `C`.
    c: i64,
}

impl TwoLevelPriority {
    /// The paper's constant factor `C`; any value larger than the spread
    /// of patch priorities works. Patch priorities are BFS/LDCP/SLBD
    /// values bounded by `±2^30`, so `2^32` keeps angles strictly
    /// dominant.
    pub const DEFAULT_C: i64 = 1 << 32;

    /// Compute patch priorities for every angle.
    ///
    /// `subs_by_angle[a]` holds the subgraphs of every patch for angle
    /// `a` (as produced by [`Subgraph::build_all`]).
    pub fn compute(
        subs_by_angle: &[Vec<Subgraph>],
        patches: &PatchSet,
        strategy: PriorityStrategy,
    ) -> TwoLevelPriority {
        let priors = subs_by_angle
            .iter()
            .map(|subs| patch_priorities(subs, patches, strategy))
            .collect();
        TwoLevelPriority {
            priors,
            c: Self::DEFAULT_C,
        }
    }

    /// Uniform (all-zero patch term) priority — scheduling degenerates
    /// to angle-major order. Useful as an ablation baseline.
    pub fn uniform(num_angles: usize, num_patches: usize) -> TwoLevelPriority {
        TwoLevelPriority {
            priors: vec![vec![0; num_patches]; num_angles],
            c: Self::DEFAULT_C,
        }
    }

    /// Scheduling priority of patch-program `(p, a)`.
    #[inline]
    pub fn program_priority(&self, p: PatchId, a: AngleId) -> i64 {
        let prior_a = -(a.0 as i64);
        prior_a * self.c + self.priors[a.index()][p.index()]
    }

    /// Number of angles covered.
    pub fn num_angles(&self) -> usize {
        self.priors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::{partition, StructuredMesh, SweepTopology};
    use std::collections::HashSet;

    fn subgraphs() -> (StructuredMesh, PatchSet, Vec<Subgraph>) {
        let m = StructuredMesh::unit(6, 6, 6);
        let ps = partition::decompose_structured(&m, (3, 3, 3), 2);
        let subs = Subgraph::build_all(&m, &ps, AngleId(0), [1.0, 1.0, 1.0], &HashSet::new());
        (m, ps, subs)
    }

    #[test]
    fn bfs_sources_have_top_priority() {
        let (_, _, subs) = subgraphs();
        let sub = &subs[0];
        let prio = vertex_priorities(sub, PriorityStrategy::Bfs);
        let deg = sub.internal_in_degrees();
        let max = *prio.iter().max().unwrap();
        for (v, &d) in deg.iter().enumerate() {
            if d == 0 {
                assert_eq!(prio[v], max, "source vertex {v} not at max priority");
            }
        }
    }

    #[test]
    fn ldcp_decreases_along_edges() {
        let (_, _, subs) = subgraphs();
        for sub in &subs {
            let prio = vertex_priorities(sub, PriorityStrategy::Ldcp);
            for v in 0..sub.num_vertices() as u32 {
                for &d in sub.internal_succ(v) {
                    assert!(
                        prio[v as usize] > prio[d as usize],
                        "LDCP must strictly decrease along internal edges"
                    );
                }
            }
        }
    }

    #[test]
    fn slbd_peaks_at_exit_vertices() {
        let (_, _, subs) = subgraphs();
        for sub in &subs {
            let exits = sub.exit_vertices();
            if exits.is_empty() {
                continue;
            }
            let prio = vertex_priorities(sub, PriorityStrategy::Slbd);
            let max = *prio.iter().max().unwrap();
            for &e in &exits {
                assert_eq!(prio[e as usize], max);
            }
        }
    }

    #[test]
    fn slbd_without_exits_falls_back_to_ldcp() {
        let m = StructuredMesh::unit(3, 3, 3);
        let ps = PatchSet::single(m.num_cells());
        let sub = Subgraph::build(
            &m,
            &ps,
            PatchId(0),
            AngleId(0),
            [1.0, 1.0, 1.0],
            &HashSet::new(),
        );
        assert_eq!(
            vertex_priorities(&sub, PriorityStrategy::Slbd),
            vertex_priorities(&sub, PriorityStrategy::Ldcp)
        );
    }

    #[test]
    fn patch_graph_follows_sweep_direction() {
        let (_, ps, subs) = subgraphs();
        let g = patch_graph(&subs, ps.num_patches());
        // For the (1,1,1) direction on a 2x2x2 patch lattice, patch
        // (0,0,0) feeds three neighbours and the far corner feeds none.
        assert!(g.num_edges() > 0);
        assert!(crate::dag::is_acyclic(&g));
    }

    #[test]
    fn two_level_priority_orders_angles_first() {
        let m = StructuredMesh::unit(4, 4, 4);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let q = jsweep_quadrature::QuadratureSet::sn(2);
        let subs_by_angle: Vec<Vec<Subgraph>> = q
            .iter()
            .map(|(a, o)| Subgraph::build_all(&m, &ps, a, o.dir, &HashSet::new()))
            .collect();
        let tl = TwoLevelPriority::compute(&subs_by_angle, &ps, PriorityStrategy::Slbd);
        for p in ps.patches() {
            for q_ in ps.patches() {
                assert!(
                    tl.program_priority(p, AngleId(0)) > tl.program_priority(q_, AngleId(1)),
                    "angle 0 must outrank angle 1 for all patches"
                );
            }
        }
    }

    #[test]
    fn uniform_priority_is_angle_major_only() {
        let tl = TwoLevelPriority::uniform(3, 5);
        assert_eq!(
            tl.program_priority(PatchId(0), AngleId(1)),
            tl.program_priority(PatchId(4), AngleId(1))
        );
        assert!(
            tl.program_priority(PatchId(0), AngleId(0))
                > tl.program_priority(PatchId(0), AngleId(2))
        );
    }

    #[test]
    fn patch_priorities_all_strategies_cover_all_patches() {
        let (_, ps, subs) = subgraphs();
        for s in [
            PriorityStrategy::Bfs,
            PriorityStrategy::Ldcp,
            PriorityStrategy::Slbd,
        ] {
            let prio = patch_priorities(&subs, &ps, s);
            assert_eq!(prio.len(), ps.num_patches());
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(PriorityStrategy::Bfs.name(), "BFS");
        assert_eq!(PriorityStrategy::Ldcp.name(), "LDCP");
        assert_eq!(PriorityStrategy::Slbd.name(), "SLBD");
    }
}
