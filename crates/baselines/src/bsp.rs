//! BSP-superstep data-driven sweep: the JAxMIN baseline of Fig. 17.
//!
//! JAxMIN executes components in bulk-synchronous supersteps (§II-B):
//! within a superstep every patch computes with the data it has, then
//! all patches exchange halos and synchronise. For a sweep this means
//! each superstep advances every `(patch, angle)` task by exactly the
//! vertices that were ready at the superstep boundary; dependency
//! chains crossing `k` patches need `k` supersteps, and every superstep
//! pays a global barrier plus the *maximum* per-rank compute time —
//! the structural inefficiency JSweep's asynchronous streams remove.

use jsweep_des::{DesResult, MachineModel, SweepProblem};
use jsweep_graph::SweepState;

/// Simulate one BSP sweep iteration of `problem` on `machine`.
///
/// Within a superstep each rank's work is its total ready-vertex
/// compute time divided across its workers (JAxMIN threads the patch
/// loop); the superstep ends with a halo exchange modelled as
/// latency + volume/bandwidth + per-stream handling, then a barrier.
pub fn simulate_bsp(problem: &SweepProblem, machine: &MachineModel) -> DesResult {
    assert_eq!(machine.ranks, problem.patches.num_ranks());
    let ranks = machine.ranks;
    let num_patches = problem.num_patches();

    // Per-task scheduling state (same Listing-1 core as JSweep).
    let mut states: Vec<SweepState> = Vec::with_capacity(problem.num_tasks());
    for a in 0..problem.num_angles {
        for p in 0..num_patches {
            states.push(SweepState::new(
                &problem.subs[a][p],
                problem.vprio[a][p].clone(),
            ));
        }
    }
    let rank_of_task = |tid: usize| {
        let p = tid % num_patches;
        problem.patches.rank_of(jsweep_mesh::PatchId(p as u32))
    };

    let mut result = DesResult::default();
    let mut time = 0.0f64;
    let mut supersteps = 0u64;

    loop {
        // Compute phase: every task drains its currently-ready set.
        let mut rank_compute = vec![0.0f64; ranks];
        let mut rank_msgs = vec![0u64; ranks];
        let mut rank_bytes = vec![0.0f64; ranks];
        // Deliveries deferred to the exchange phase: (tid, local vertex).
        let mut deliveries: Vec<(usize, u32)> = Vec::new();
        let mut popped_any = false;

        #[allow(clippy::needless_range_loop)] // tid indexes three arrays
        for tid in 0..states.len() {
            if !states[tid].has_ready() {
                continue;
            }
            let (p, a) = (tid % num_patches, tid / num_patches);
            let sub = &problem.subs[a][p];
            let rank = rank_of_task(tid);
            // One compute call per task per superstep (the BSP patch
            // visit), draining all ready vertices. Messages aggregate
            // per (target patch) as in the halo exchange.
            let mut groups: std::collections::HashMap<usize, Vec<u32>> = Default::default();
            let cluster = states[tid].pop_cluster(sub, usize::MAX >> 1, |_, re| {
                groups
                    .entry(re.patch.index())
                    .or_default()
                    .push(problem.patches.local_index(re.cell as usize) as u32);
            });
            if cluster.is_empty() {
                continue;
            }
            popped_any = true;
            let k = cluster.len() as f64;
            rank_compute[rank] += machine.t_sched + k * (machine.t_vertex + machine.t_graph);
            result.vertices += cluster.len() as u64;
            result.compute_calls += 1;
            result.breakdown.kernel += k * machine.t_vertex;
            result.breakdown.graph_op += k * machine.t_graph + machine.t_sched;
            let mut targets: Vec<(usize, Vec<u32>)> = groups.into_iter().collect();
            targets.sort_by_key(|&(q, _)| q);
            for (q, keys) in targets {
                let dst_rank = problem.patches.rank_of(jsweep_mesh::PatchId(q as u32));
                let bytes = machine.message_bytes(keys.len());
                if dst_rank != rank {
                    rank_msgs[rank] += 1;
                    rank_bytes[rank] += bytes;
                    result.messages += 1;
                    result.bytes += bytes;
                    let pack = 2.0 * bytes * machine.t_pack_per_byte;
                    result.breakdown.pack_unpack += pack;
                }
                result.breakdown.comm += 2.0 * machine.t_route;
                let dst_tid = (tid / num_patches) * num_patches + q;
                for key in keys {
                    deliveries.push((dst_tid, key));
                }
            }
        }

        if !popped_any {
            break;
        }
        supersteps += 1;

        // Superstep wall time: slowest rank's threaded compute + its
        // halo exchange, then a barrier (log(ranks) latency).
        let workers = machine.workers_per_rank as f64;
        let compute_max = rank_compute
            .iter()
            .fold(0.0f64, |acc, &x| acc.max(x / workers));
        let comm_max = (0..ranks)
            .map(|r| rank_msgs[r] as f64 * machine.latency + rank_bytes[r] / machine.bandwidth)
            .fold(0.0f64, f64::max);
        let barrier = machine.latency * (ranks as f64).log2().max(1.0);
        time += compute_max + comm_max + barrier;

        // Exchange phase: all deliveries land.
        for (tid, key) in deliveries {
            states[tid].receive(key);
        }
    }

    for (tid, st) in states.iter().enumerate() {
        assert!(
            st.is_complete(),
            "BSP sweep deadlocked at task {tid} with {} vertices left",
            st.remaining()
        );
    }
    result.time = time;
    // Idle accounting: all cores for the whole run minus busy time.
    let cores = machine.cores() as f64;
    result.breakdown.idle = (cores * time
        - result.breakdown.kernel
        - result.breakdown.graph_op
        - result.breakdown.pack_unpack
        - result.breakdown.comm)
        .max(0.0);
    let _ = supersteps;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_des::{simulate, ProblemOptions, SimOptions};
    use jsweep_mesh::{partition, StructuredMesh};
    use jsweep_quadrature::QuadratureSet;

    fn problem(ranks: usize) -> SweepProblem {
        let m = StructuredMesh::unit(12, 12, 12);
        let ps = partition::decompose_structured(&m, (3, 3, 3), ranks);
        let q = QuadratureSet::sn(2);
        SweepProblem::build(
            &m,
            ps,
            &q,
            &ProblemOptions {
                share_octant_dags: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn bsp_computes_every_vertex() {
        let prob = problem(4);
        let machine = MachineModel::cluster(4, 3);
        let r = simulate_bsp(&prob, &machine);
        assert_eq!(r.vertices, prob.total_vertices);
        assert!(r.time > 0.0);
    }

    #[test]
    fn bsp_is_slower_than_jsweep_at_scale() {
        // The motivating claim: barrier-synchronised partial waves cost
        // more wall-clock than asynchronous streams on many ranks.
        let prob = problem(8);
        let machine = MachineModel::cluster(8, 3);
        let bsp = simulate_bsp(&prob, &machine);
        let jsweep = simulate(&prob, &machine, &SimOptions::default());
        assert_eq!(bsp.vertices, jsweep.vertices);
        assert!(
            bsp.time > jsweep.time,
            "BSP ({}) should exceed JSweep ({})",
            bsp.time,
            jsweep.time
        );
    }

    #[test]
    fn bsp_deterministic() {
        let prob = problem(2);
        let machine = MachineModel::cluster(2, 2);
        let a = simulate_bsp(&prob, &machine);
        let b = simulate_bsp(&prob, &machine);
        assert_eq!(a.time, b.time);
        assert_eq!(a.messages, b.messages);
    }
}
