//! Regular axis-aligned structured hexahedral meshes.
//!
//! Geometry is implicit (origin + uniform spacing), so the mesh costs
//! O(1) memory regardless of cell count except for the optional material
//! map. Cells are numbered lexicographically: `id = i + nx*(j + ny*k)`.

use crate::{BoundaryId, FaceInfo, Neighbor, SweepTopology};

/// Face ordering of a structured cell: `-x, +x, -y, +y, -z, +z`.
///
/// The pairing convention (`face ^ 1` is the opposite face) is relied on
/// by the diamond-difference kernel.
pub const FACE_DIRS: [[f64; 3]; 6] = [
    [-1.0, 0.0, 0.0],
    [1.0, 0.0, 0.0],
    [0.0, -1.0, 0.0],
    [0.0, 1.0, 0.0],
    [0.0, 0.0, -1.0],
    [0.0, 0.0, 1.0],
];

/// Boundary ids assigned to the six domain faces, matching [`FACE_DIRS`].
pub const BOUNDARY_IDS: [BoundaryId; 6] = [
    BoundaryId(0),
    BoundaryId(1),
    BoundaryId(2),
    BoundaryId(3),
    BoundaryId(4),
    BoundaryId(5),
];

/// A uniform structured mesh of `nx × ny × nz` hexahedral cells.
#[derive(Debug, Clone)]
pub struct StructuredMesh {
    nx: usize,
    ny: usize,
    nz: usize,
    origin: [f64; 3],
    spacing: [f64; 3],
    /// Optional per-cell material id (for heterogeneous benchmarks such
    /// as Kobayashi); empty means "single material 0".
    materials: Vec<u16>,
    /// Topology generation stamp (see [`crate::next_generation`]).
    generation: u64,
}

impl StructuredMesh {
    /// A mesh of `nx × ny × nz` unit-spaced cells with origin at zero.
    pub fn unit(nx: usize, ny: usize, nz: usize) -> StructuredMesh {
        StructuredMesh::new(nx, ny, nz, [0.0; 3], [1.0; 3])
    }

    /// A mesh with explicit origin and cell spacing.
    ///
    /// # Panics
    /// Panics on zero extents or non-positive spacing.
    pub fn new(
        nx: usize,
        ny: usize,
        nz: usize,
        origin: [f64; 3],
        spacing: [f64; 3],
    ) -> StructuredMesh {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty mesh {nx}x{ny}x{nz}");
        assert!(
            spacing.iter().all(|&h| h > 0.0),
            "non-positive spacing {spacing:?}"
        );
        StructuredMesh {
            nx,
            ny,
            nz,
            origin,
            spacing,
            materials: Vec::new(),
            generation: crate::next_generation(),
        }
    }

    /// Extents `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Cell spacing `(dx, dy, dz)`.
    pub fn spacing(&self) -> [f64; 3] {
        self.spacing
    }

    /// Domain origin.
    pub fn origin(&self) -> [f64; 3] {
        self.origin
    }

    /// Lexicographic cell id of `(i, j, k)`.
    #[inline]
    pub fn cell_id(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Inverse of [`Self::cell_id`].
    #[inline]
    pub fn cell_ijk(&self, c: usize) -> (usize, usize, usize) {
        debug_assert!(c < self.num_cells());
        let i = c % self.nx;
        let j = (c / self.nx) % self.ny;
        let k = c / (self.nx * self.ny);
        (i, j, k)
    }

    /// Assign material ids from a per-cell-centre classifier.
    pub fn set_materials_by(&mut self, mut f: impl FnMut([f64; 3]) -> u16) {
        let mut mats = vec![0u16; self.num_cells()];
        for (c, m) in mats.iter_mut().enumerate() {
            *m = f(self.cell_centroid(c));
        }
        self.materials = mats;
    }

    /// Material id of a cell (0 when no material map was set).
    #[inline]
    pub fn material(&self, c: usize) -> u16 {
        if self.materials.is_empty() {
            0
        } else {
            self.materials[c]
        }
    }

    /// Face area for local face index `f` (pairs share areas).
    #[inline]
    fn face_area(&self, f: usize) -> f64 {
        let [dx, dy, dz] = self.spacing;
        match f / 2 {
            0 => dy * dz,
            1 => dx * dz,
            _ => dx * dy,
        }
    }

    /// Neighbour across local face `f`, or the boundary id.
    #[inline]
    pub fn neighbor_of(&self, c: usize, f: usize) -> Neighbor {
        let (i, j, k) = self.cell_ijk(c);
        let (coord, n, step) = match f {
            0 => (i, self.nx, -1isize),
            1 => (i, self.nx, 1),
            2 => (j, self.ny, -1),
            3 => (j, self.ny, 1),
            4 => (k, self.nz, -1),
            5 => (k, self.nz, 1),
            _ => panic!("face index {f} out of range"),
        };
        let target = coord as isize + step;
        if target < 0 || target as usize >= n {
            return Neighbor::Boundary(BOUNDARY_IDS[f]);
        }
        let (mut i, mut j, mut k) = (i, j, k);
        match f / 2 {
            0 => i = target as usize,
            1 => j = target as usize,
            _ => k = target as usize,
        }
        Neighbor::Interior(self.cell_id(i, j, k))
    }
}

impl SweepTopology for StructuredMesh {
    fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn num_faces(&self, _c: usize) -> usize {
        6
    }

    #[inline]
    fn face(&self, c: usize, f: usize) -> FaceInfo {
        FaceInfo {
            neighbor: self.neighbor_of(c, f),
            normal: FACE_DIRS[f],
            area: self.face_area(f),
        }
    }

    #[inline]
    fn cell_volume(&self, _c: usize) -> f64 {
        self.spacing[0] * self.spacing[1] * self.spacing[2]
    }

    #[inline]
    fn cell_centroid(&self, c: usize) -> [f64; 3] {
        let (i, j, k) = self.cell_ijk(c);
        [
            self.origin[0] + (i as f64 + 0.5) * self.spacing[0],
            self.origin[1] + (j as f64 + 0.5) * self.spacing[1],
            self.origin[2] + (k as f64 + 0.5) * self.spacing[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_face_closure_residual, validate_topology};

    #[test]
    fn ids_roundtrip() {
        let m = StructuredMesh::unit(4, 5, 6);
        for c in 0..m.num_cells() {
            let (i, j, k) = m.cell_ijk(c);
            assert_eq!(m.cell_id(i, j, k), c);
        }
    }

    #[test]
    fn topology_is_consistent() {
        let m = StructuredMesh::new(3, 4, 5, [1.0, 2.0, 3.0], [0.5, 0.25, 2.0]);
        validate_topology(&m).unwrap();
    }

    #[test]
    fn faces_close() {
        let m = StructuredMesh::new(3, 3, 3, [0.0; 3], [0.5, 1.0, 2.0]);
        assert!(max_face_closure_residual(&m) < 1e-12);
    }

    #[test]
    fn corner_cell_has_three_boundary_faces() {
        let m = StructuredMesh::unit(3, 3, 3);
        let c = m.cell_id(0, 0, 0);
        let boundary = (0..6)
            .filter(|&f| m.face(c, f).neighbor.is_boundary())
            .count();
        assert_eq!(boundary, 3);
    }

    #[test]
    fn interior_cell_has_six_neighbors() {
        let m = StructuredMesh::unit(3, 3, 3);
        let c = m.cell_id(1, 1, 1);
        assert_eq!(m.neighbors(c).len(), 6);
    }

    #[test]
    fn upwind_downwind_partition_neighbors() {
        let m = StructuredMesh::unit(4, 4, 4);
        let dir = [0.5, 0.6, 0.62];
        for c in 0..m.num_cells() {
            let up = m.upwind_neighbors(c, dir).len();
            let down = m.downwind_neighbors(c, dir).len();
            assert_eq!(up + down, m.neighbors(c).len());
        }
    }

    #[test]
    fn diagonal_direction_upwind_is_lower_corner() {
        let m = StructuredMesh::unit(3, 3, 3);
        let dir = [1.0, 1.0, 1.0];
        let c = m.cell_id(1, 1, 1);
        let up = m.upwind_neighbors(c, dir);
        assert_eq!(up.len(), 3);
        assert!(up.contains(&m.cell_id(0, 1, 1)));
        assert!(up.contains(&m.cell_id(1, 0, 1)));
        assert!(up.contains(&m.cell_id(1, 1, 0)));
    }

    #[test]
    fn volumes_and_areas_match_spacing() {
        let m = StructuredMesh::new(2, 2, 2, [0.0; 3], [2.0, 3.0, 4.0]);
        assert_eq!(m.cell_volume(0), 24.0);
        assert_eq!(m.face(0, 0).area, 12.0); // dy*dz
        assert_eq!(m.face(0, 2).area, 8.0); // dx*dz
        assert_eq!(m.face(0, 4).area, 6.0); // dx*dy
    }

    #[test]
    fn materials_default_zero_and_classifier() {
        let mut m = StructuredMesh::unit(2, 2, 2);
        assert_eq!(m.material(3), 0);
        m.set_materials_by(|p| if p[0] < 1.0 { 1 } else { 2 });
        assert_eq!(m.material(m.cell_id(0, 1, 1)), 1);
        assert_eq!(m.material(m.cell_id(1, 1, 1)), 2);
    }

    #[test]
    fn centroids_are_cell_centres() {
        let m = StructuredMesh::new(2, 2, 2, [10.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        assert_eq!(m.cell_centroid(0), [10.5, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "empty mesh")]
    fn zero_extent_rejected() {
        StructuredMesh::unit(0, 1, 1);
    }
}
