//! Property-based tests (proptest) over the core invariants:
//! quadrature moments, partition coverage, sweep-DAG acyclicity and
//! degree balance, schedule-independence of sweep completion, coarse
//! graph acyclicity (Theorem 1), SFC bijectivity, codec roundtrips,
//! and the blocked-vs-scalar kernel differential harness.

use jsweep::graph::coarse::{build_coarse, ClusterTrace};
use jsweep::graph::priority::vertex_priorities;
use jsweep::graph::{dag, PriorityStrategy, Subgraph, SweepState};
use jsweep::mesh::{partition, tetgen, StructuredMesh, SweepTopology};
use jsweep::quadrature::{AngleId, QuadratureSet};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random unit direction avoiding axis-aligned degeneracies.
fn direction() -> impl Strategy<Value = [f64; 3]> {
    (-0.99f64..0.99, -0.99f64..0.99, 0.05f64..0.99).prop_map(|(x, y, z)| {
        let sx = if x == 0.0 { 0.01 } else { x };
        let sy = if y == 0.0 { 0.01 } else { y };
        let n = (sx * sx + sy * sy + z * z).sqrt();
        [sx / n, sy / n, z / n]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn structured_subgraphs_balance_and_complete(
        nx in 2usize..6,
        ny in 2usize..6,
        nz in 2usize..6,
        px in 1usize..4,
        dir in direction(),
    ) {
        let mesh = StructuredMesh::unit(nx, ny, nz);
        let (ps, _) = partition::structured_blocks(&mesh, (px, px, px));
        let subs = Subgraph::build_all(&mesh, &ps, AngleId(0), dir, &HashSet::new());
        // Degree balance invariant.
        jsweep::graph::subgraph::check_edge_degree_balance(&subs).unwrap();
        // Internal DAGs are acyclic.
        for sub in &subs {
            prop_assert!(dag::is_acyclic(&sub.internal_csr()));
        }
        // The whole multi-patch sweep completes (no lost dependencies).
        let total = drive_sweep(&subs, 8);
        prop_assert_eq!(total, mesh.num_cells());
    }

    #[test]
    fn tet_subgraphs_complete(
        half in 2usize..4,
        target in 10usize..60,
        dir in direction(),
    ) {
        let mesh = tetgen::ball(half, 1.0);
        let ps = partition::greedy_bfs(&mesh, target);
        let subs = Subgraph::build_all(&mesh, &ps, AngleId(0), dir, &HashSet::new());
        let total = drive_sweep(&subs, 16);
        prop_assert_eq!(total, mesh.num_cells());
    }

    #[test]
    fn sweep_completion_is_grain_independent(
        n in 2usize..6,
        grain in 1usize..40,
        dir in direction(),
    ) {
        let mesh = StructuredMesh::unit(n, n, n);
        let (ps, _) = partition::structured_blocks(&mesh, (2, 2, 2));
        let subs = Subgraph::build_all(&mesh, &ps, AngleId(0), dir, &HashSet::new());
        let total = drive_sweep(&subs, grain);
        prop_assert_eq!(total, mesh.num_cells());
    }

    #[test]
    fn coarse_graph_is_acyclic_for_random_setups(
        n in 3usize..7,
        grain in 1usize..30,
        dir in direction(),
    ) {
        let mesh = StructuredMesh::unit(n, n, n);
        let (ps, _) = partition::structured_blocks(&mesh, (3, 3, 3));
        let subs = Subgraph::build_all(&mesh, &ps, AngleId(0), dir, &HashSet::new());
        let traces = trace_sweep(&subs, grain);
        // build_coarse panics on Theorem-1 violations.
        let tasks = build_coarse(&subs, &traces);
        let coarse_vertices: usize = tasks.iter().map(|t| t.num_clusters()).sum();
        let fine_vertices: usize = subs.iter().map(|s| s.num_vertices()).sum();
        prop_assert!(coarse_vertices <= fine_vertices);
    }

    #[test]
    fn solver_recorded_traces_coarsen_acyclically(
        n in 3usize..6,
        px in 2usize..4,
        grain in 1usize..48,
    ) {
        // Theorem 1 on *real* solver traces: record a fine parallel
        // iteration (threaded runtime, 2 ranks × 2 workers — genuine
        // scheduling nondeterminism) and feed every angle's traces
        // through build_coarse, whose topological check panics on a
        // cyclic coarse graph.
        use jsweep::transport::{record_cluster_traces, Material, MaterialSet, SnConfig};
        use std::sync::Arc;
        let mesh = Arc::new(StructuredMesh::unit(n, n, n));
        let num_patches = n.div_ceil(px).pow(3);
        let ranks = num_patches.min(2);
        let ps = partition::decompose_structured(&mesh, (px, px, px), ranks);
        let quad = QuadratureSet::sn(2);
        let prob = Arc::new(jsweep::graph::SweepProblem::build(
            mesh.as_ref(),
            ps,
            &quad,
            &jsweep::graph::ProblemOptions::default(),
        ));
        let mats = Arc::new(MaterialSet::homogeneous(
            mesh.num_cells(),
            Material::uniform(1, 1.0, 0.5, 1.0),
        ));
        let cfg = SnConfig { grain, workers_per_rank: 2, ..Default::default() };
        let traces = record_cluster_traces(mesh.clone(), prob.clone(), &quad, mats, &cfg);
        prop_assert_eq!(traces.len(), prob.num_angles);
        for (a, angle_traces) in traces.iter().enumerate() {
            // Panics on a Theorem-1 violation or an incomplete trace.
            let tasks = build_coarse(&prob.subs[a], angle_traces);
            let covered: usize = tasks.iter().map(|t| t.num_vertices()).sum();
            prop_assert_eq!(covered, mesh.num_cells());
            // Clustering never grows the graph.
            let coarse: usize = tasks.iter().map(|t| t.num_clusters()).sum();
            prop_assert!(coarse <= mesh.num_cells());
        }
    }

    #[test]
    fn rcb_partitions_cover_exactly(
        n in 2usize..5,
        parts in 1usize..9,
    ) {
        let mesh = tetgen::cube(n, 1.0);
        let parts = parts.min(mesh.num_cells());
        let ps = partition::rcb(&mesh, parts);
        let mut seen = vec![false; mesh.num_cells()];
        for p in ps.patches() {
            for &c in ps.cells(p) {
                prop_assert!(!seen[c as usize]);
                seen[c as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_and_morton_are_bijective(bits in 1u32..5) {
        use jsweep::mesh::sfc;
        let n = 1u32 << bits;
        let mut hkeys = HashSet::new();
        let mut mkeys = HashSet::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    prop_assert!(hkeys.insert(sfc::hilbert3(x, y, z, bits)));
                    prop_assert!(mkeys.insert(sfc::morton3(x, y, z, bits)));
                    let (rx, ry, rz) = sfc::hilbert3_inv(sfc::hilbert3(x, y, z, bits), bits);
                    prop_assert_eq!((rx, ry, rz), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn pack_roundtrip_arbitrary(values in prop::collection::vec(any::<f64>(), 0..64)) {
        use jsweep::comm::pack::{Reader, Writer};
        let finite: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        let mut w = Writer::new();
        w.put_f64_slice(&finite);
        let mut r = Reader::new(w.finish());
        prop_assert_eq!(r.get_f64_vec(), finite);
        prop_assert!(r.is_exhausted());
    }

    /// Wire-framed pack payloads pushed through a real UNIX socket in
    /// adversarial fragments (arbitrary partial-read split points) must
    /// reassemble byte-exactly, with exact bytes accounting.
    #[test]
    fn wire_frames_survive_socket_fragmentation(
        frames in prop::collection::vec(
            (0u32..1000, prop::collection::vec(any::<f64>(), 0..48)),
            1..8,
        ),
        cuts in prop::collection::vec(1usize..97, 1..64),
    ) {
        use jsweep::comm::pack::{Reader, Writer};
        use jsweep::comm::socket::{encode_frame, WireDecoder};
        use std::io::{Read as _, Write as _};
        use std::os::unix::net::UnixStream;

        let frames: Vec<(u32, Vec<f64>)> = frames
            .into_iter()
            .map(|(tag, vals)| (tag, vals.into_iter().filter(|v| v.is_finite()).collect()))
            .collect();
        // Encode every frame, payload via the pack codec.
        let mut stream_bytes = Vec::new();
        for (tag, vals) in &frames {
            let mut w = Writer::new();
            w.put_f64_slice(vals);
            stream_bytes.extend_from_slice(&encode_frame(*tag, &w.finish()));
        }

        let (mut tx, mut rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        let mut dec = WireDecoder::new();
        let mut decoded: Vec<(u32, bytes::Bytes)> = Vec::new();
        let drain = |dec: &mut WireDecoder, rx: &mut UnixStream, out: &mut Vec<_>| {
            let mut buf = [0u8; 256];
            loop {
                match rx.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => dec.push(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("socket read failed: {e}"),
                }
            }
            while let Some(f) = dec.next_frame() {
                out.push(f);
            }
        };

        // Write the byte stream in proptest-chosen fragment sizes,
        // draining the receive side between fragments so the decoder
        // sees every partial-read split the schedule produces.
        let mut off = 0;
        let mut cut_idx = 0;
        while off < stream_bytes.len() {
            let len = cuts[cut_idx % cuts.len()].min(stream_bytes.len() - off);
            cut_idx += 1;
            tx.write_all(&stream_bytes[off..off + len]).unwrap();
            off += len;
            drain(&mut dec, &mut rx, &mut decoded);
        }
        drop(tx);
        // Final drain catches anything buffered in the kernel.
        loop {
            let mut buf = [0u8; 256];
            match rx.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => dec.push(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::yield_now();
                }
                Err(e) => panic!("socket read failed: {e}"),
            }
            while let Some(f) = dec.next_frame() {
                decoded.push(f);
            }
        }

        prop_assert_eq!(decoded.len(), frames.len());
        for ((tag, vals), (dtag, payload)) in frames.iter().zip(&decoded) {
            prop_assert_eq!(*tag, *dtag);
            let mut r = Reader::new(payload.clone());
            prop_assert_eq!(&r.get_f64_vec(), vals);
            prop_assert!(r.is_exhausted());
        }
        // Accounting is byte-exact: everything written was consumed,
        // nothing is left mid-frame.
        prop_assert_eq!(dec.bytes_consumed(), stream_bytes.len() as u64);
        prop_assert_eq!(dec.pending_bytes(), 0);
        prop_assert!(!dec.closed());
    }

    #[test]
    fn quadrature_moments_hold(order in (1u32..8).prop_map(|k| 2 * k)) {
        let q = QuadratureSet::sn(order);
        let total: f64 = q.ordinates().iter().map(|o| o.weight).sum();
        prop_assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-9);
        for axis in 0..3 {
            prop_assert!(q.integrate(|d| d[axis]).abs() < 1e-9);
        }
    }

    #[test]
    fn break_cycles_always_yields_dag(
        n in 2u32..12,
        edges in prop::collection::vec((0u32..12, 0u32..12, 0.01f64..10.0), 0..40),
    ) {
        use jsweep::graph::cycles::break_cycles;
        let edges: Vec<(u32, u32, f64)> = edges
            .into_iter()
            .map(|(s, d, w)| (s % n, d % n, w))
            .collect();
        let removed = break_cycles(n as usize, &edges);
        let live: Vec<(u32, u32)> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, &(s, d, _))| (s, d))
            .collect();
        prop_assert!(dag::is_acyclic(&dag::Csr::from_edges(n as usize, &live)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential harness, structured hexahedra: the blocked kernel
    /// ([`solve_cell_block`]) must match the scalar oracle
    /// ([`solve_cell`]) to within `KERNEL_MAX_ULPS` per element, for
    /// both kernel kinds, over random cells, directions, cross
    /// sections, incoming fluxes, and group counts — including counts
    /// that are not multiples of the block width, which exercise the
    /// scalar tail.
    #[test]
    fn blocked_kernel_matches_scalar_on_structured(
        n in 2usize..5,
        cell_pick in 0usize..4096,
        dir in direction(),
        groups in 1usize..40,
        dd in any::<bool>(),
        st in prop::collection::vec(0.0f64..20.0, 40..41),
        qv in prop::collection::vec(0.0f64..10.0, 40..41),
        inc in prop::collection::vec(0.0f64..5.0, 96..97),
    ) {
        use jsweep::transport::kernel::KernelKind;
        let mesh = StructuredMesh::unit(n, n, n);
        let cell = cell_pick % mesh.num_cells();
        let kind = if dd {
            KernelKind::DiamondDifference
        } else {
            KernelKind::Step
        };
        check_blocked_vs_scalar(&mesh, cell, dir, kind, &st[..groups], &qv[..groups], &inc);
    }

    /// Differential harness, tetrahedra (step kernel — DD is
    /// hex-only): blocked vs scalar over random tet cells, directions,
    /// and group counts.
    #[test]
    fn blocked_kernel_matches_scalar_on_tets(
        half in 1usize..3,
        cell_pick in 0usize..4096,
        dir in direction(),
        groups in 1usize..40,
        st in prop::collection::vec(0.0f64..20.0, 40..41),
        qv in prop::collection::vec(0.0f64..10.0, 40..41),
        inc in prop::collection::vec(0.0f64..5.0, 96..97),
    ) {
        use jsweep::transport::kernel::KernelKind;
        let mesh = tetgen::cube(half, 1.0);
        let cell = cell_pick % mesh.num_cells();
        check_blocked_vs_scalar(
            &mesh,
            cell,
            dir,
            KernelKind::Step,
            &st[..groups],
            &qv[..groups],
            &inc,
        );
    }
}

/// Run [`solve_cell`] (scalar oracle) and [`solve_cell_block`] on
/// identical inputs and assert the cell-average flux and every
/// outgoing face flux agree within
/// [`jsweep::transport::kernel::KERNEL_MAX_ULPS`]. Incoming face
/// fluxes are tiled from `inc_pool` so any `nf * groups` extent gets
/// deterministic, varied values.
fn check_blocked_vs_scalar<T: SweepTopology + ?Sized>(
    mesh: &T,
    cell: usize,
    dir: [f64; 3],
    kind: jsweep::transport::kernel::KernelKind,
    sigma_t: &[f64],
    q: &[f64],
    inc_pool: &[f64],
) {
    use jsweep::transport::kernel::{solve_cell, solve_cell_block, ulp_distance, KERNEL_MAX_ULPS};
    let groups = sigma_t.len();
    let nf = mesh.num_faces(cell);
    let incoming: Vec<f64> = (0..nf * groups)
        .map(|i| inc_pool[i % inc_pool.len()])
        .collect();
    let mut out_scalar = vec![0.0; nf * groups];
    let mut psi_scalar = vec![0.0; groups];
    solve_cell(
        mesh,
        cell,
        dir,
        kind,
        sigma_t,
        q,
        &incoming,
        &mut out_scalar,
        &mut psi_scalar,
    );
    let mut out_blocked = vec![0.0; nf * groups];
    let mut psi_blocked = vec![0.0; groups];
    solve_cell_block(
        mesh,
        cell,
        dir,
        kind,
        sigma_t,
        q,
        &incoming,
        &mut out_blocked,
        &mut psi_blocked,
    );
    // `<=` so the bound tracks KERNEL_MAX_ULPS if the exactness
    // contract is ever relaxed (it is 0 today, making this `==`).
    #[allow(clippy::absurd_extreme_comparisons)]
    fn within_bound(a: f64, b: f64) -> bool {
        ulp_distance(a, b) <= KERNEL_MAX_ULPS
    }
    for g in 0..groups {
        assert!(
            within_bound(psi_scalar[g], psi_blocked[g]),
            "psi_cell diverged at group {g}: scalar {} vs blocked {}",
            psi_scalar[g],
            psi_blocked[g],
        );
    }
    for i in 0..nf * groups {
        assert!(
            within_bound(out_scalar[i], out_blocked[i]),
            "psi_out diverged at slot {i}: scalar {} vs blocked {}",
            out_scalar[i],
            out_blocked[i],
        );
    }
}

/// Serially drive a multi-patch sweep to completion; returns the
/// number of vertices computed.
fn drive_sweep(subs: &[Subgraph], grain: usize) -> usize {
    let mut states: Vec<SweepState> = subs
        .iter()
        .map(|s| SweepState::with_priorities(s, &vertex_priorities(s, PriorityStrategy::Slbd)))
        .collect();
    let local: std::collections::HashMap<u32, (usize, u32)> = subs
        .iter()
        .enumerate()
        .flat_map(|(pi, s)| {
            s.cells
                .iter()
                .enumerate()
                .map(move |(li, &c)| (c, (pi, li as u32)))
        })
        .collect();
    let mut computed = 0usize;
    loop {
        let mut progressed = false;
        for pi in 0..subs.len() {
            while states[pi].has_ready() {
                let mut remote = Vec::new();
                let cluster = states[pi].pop_cluster(&subs[pi], grain, |_, re| remote.push(re));
                computed += cluster.len();
                progressed = true;
                for re in remote {
                    let (qi, lv) = local[&re.cell];
                    states[qi].receive(lv);
                }
            }
        }
        if !progressed {
            break;
        }
    }
    for st in &states {
        assert!(st.is_complete(), "sweep deadlocked");
    }
    computed
}

/// Like [`drive_sweep`] but recording clustering traces.
fn trace_sweep(subs: &[Subgraph], grain: usize) -> Vec<ClusterTrace> {
    let mut states: Vec<SweepState> = subs
        .iter()
        .map(|s| SweepState::with_priorities(s, &vertex_priorities(s, PriorityStrategy::Slbd)))
        .collect();
    let mut traces = vec![ClusterTrace::default(); subs.len()];
    let local: std::collections::HashMap<u32, (usize, u32)> = subs
        .iter()
        .enumerate()
        .flat_map(|(pi, s)| {
            s.cells
                .iter()
                .enumerate()
                .map(move |(li, &c)| (c, (pi, li as u32)))
        })
        .collect();
    loop {
        let mut progressed = false;
        for pi in 0..subs.len() {
            while states[pi].has_ready() {
                let mut remote = Vec::new();
                let cluster = states[pi].pop_cluster(&subs[pi], grain, |_, re| remote.push(re));
                traces[pi].record(cluster);
                progressed = true;
                for re in remote {
                    let (qi, lv) = local[&re.cell];
                    states[qi].receive(lv);
                }
            }
        }
        if !progressed {
            break;
        }
    }
    traces
}

/// Six (key, unit-size plan) pairs over three distinct mesh
/// generations, for the concurrent plan-cache property below.
fn plan_cache_fixtures() -> Vec<(
    jsweep::transport::PlanKey,
    std::sync::Arc<jsweep::transport::CoarsePlan>,
)> {
    use jsweep::graph::{problem::ProblemOptions, SweepProblem};
    use jsweep::transport::{plan_key, CoarsePlan};
    use std::sync::Arc;
    let quad = QuadratureSet::sn(2);
    let mut out = Vec::new();
    for _ in 0..3 {
        let m = StructuredMesh::unit(3, 3, 3);
        let ps = partition::decompose_structured(&m, (1, 1, 1), 1);
        let p = SweepProblem::build(&m, ps, &quad, &ProblemOptions::default());
        for grain in [8usize, 16] {
            out.push((
                plan_key(&p, grain),
                Arc::new(CoarsePlan {
                    tasks: Vec::new(),
                    build_seconds: 0.0,
                    mesh_generation: p.mesh_generation,
                }),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PlanCache under concurrent get/insert/opportunistic-insert/
    /// retain interleavings: a lookup never returns a plan of the
    /// wrong generation, LruBytes never exceeds its byte bound at any
    /// observation point (evict-before-insert), the eviction counter
    /// is monotone, and NewestGenerations never ends holding more
    /// generations than it keeps.
    #[test]
    fn plan_cache_is_consistent_under_concurrent_access(
        policy_pick in 0u8..3,
        ops in prop::collection::vec(
            prop::collection::vec((0u8..5, 0usize..6), 1..12),
            3..4,
        ),
    ) {
        use jsweep::transport::{EvictionPolicy, PlanCache};
        let fixtures = plan_cache_fixtures();
        let unit = fixtures[0].1.memory_bytes();
        prop_assert!(unit > 0);
        let max_bytes = 2 * unit;
        let policy = match policy_pick {
            0 => EvictionPolicy::Manual,
            1 => EvictionPolicy::LruBytes { max_bytes },
            _ => EvictionPolicy::NewestGenerations { keep: 2 },
        };
        let cache = PlanCache::with_policy(policy);
        let keep_gen = fixtures[4].0.mesh_generation();

        std::thread::scope(|scope| {
            for thread_ops in &ops {
                let cache = &cache;
                let fixtures = &fixtures;
                scope.spawn(move || {
                    let mut last_evictions = 0u64;
                    for &(op, k) in thread_ops {
                        let (key, plan) = &fixtures[k];
                        match op {
                            0 | 1 => cache.insert(*key, plan.clone()),
                            2 => {
                                if let Some(got) = cache.get(key) {
                                    assert_eq!(
                                        got.mesh_generation,
                                        key.mesh_generation(),
                                        "lookup returned a wrong-generation plan"
                                    );
                                }
                            }
                            3 => {
                                let _ = cache.insert_opportunistic(*key, plan.clone());
                            }
                            _ => {
                                let _ = cache.retain_generations(&[keep_gen]);
                            }
                        }
                        if let EvictionPolicy::LruBytes { max_bytes } = policy {
                            // Unit-size plans and max >= unit: even the
                            // sole-plan exception cannot exceed the
                            // bound, at any observation point.
                            assert!(
                                cache.memory_bytes() <= max_bytes,
                                "byte bound exceeded mid-interleaving"
                            );
                        }
                        let e = cache.evictions();
                        assert!(e >= last_evictions, "eviction counter went backwards");
                        last_evictions = e;
                    }
                });
            }
        });

        match policy {
            EvictionPolicy::LruBytes { max_bytes } => {
                prop_assert!(cache.memory_bytes() <= max_bytes);
            }
            EvictionPolicy::NewestGenerations { keep } => {
                let live: HashSet<u64> = fixtures
                    .iter()
                    .filter(|(k, _)| cache.get(k).is_some())
                    .map(|(k, _)| k.mesh_generation())
                    .collect();
                prop_assert!(live.len() <= keep);
            }
            EvictionPolicy::Manual => {
                prop_assert!(cache.len() <= fixtures.len());
            }
        }
    }
}
