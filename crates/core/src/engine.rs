//! The per-rank runtime engine: master thread + worker threads (Fig. 8).
//!
//! The master owns the rank's [`Comm`] endpoint and runs the stream
//! router and progress tracker; workers execute patch-programs from the
//! shared [`Pool`]. The call [`run_rank`] embodies one rank; use
//! [`run_universe`] to run a whole simulated MPI world for a single
//! epoch, or [`crate::Universe`] to keep that world resident across
//! many epochs (one launch per *solve* instead of one per iteration).
//!
//! Internally everything is built on the resident form: a `Rank`
//! keeps its master state (route table, frame writers) and its worker
//! threads alive across epochs, and each epoch runs activation →
//! data-driven execution → distributed termination → quiescence. The
//! one-shot entry points are single-epoch specialisations.
//!
//! The data plane is **batched end-to-end** (the paper's §II
//! "communication aggregation", profiled in Fig. 16):
//!
//! * workers accumulate compute outputs into one `Report` per flush
//!   (at most [`RuntimeConfig::report_flush_streams`] streams, flushed
//!   eagerly before a worker would block), so the master channel does
//!   not carry one message per compute round; reports also carry the
//!   worker's time-breakdown and compute-call deltas, which is how a
//!   resident rank attributes worker stats to epochs without joining
//!   threads;
//! * the master routes through a precomputed **route table** (one
//!   `rank_of`/`priority` evaluation per program, ever) and coalesces
//!   all outbound streams per destination rank per drain round into a
//!   single multi-stream frame built in a reusable per-destination
//!   writer ([`crate::program::frame_push`]);
//! * incoming frames are unpacked zero-copy and handed to the pool as
//!   one [`Pool::deliver_batch`] call.

use crate::fault::{panic_message, EpochFault, FaultKind, FaultPlan};
use crate::pool::Pool;
use crate::program::{
    frame_push, unpack_frame, ComputeCtx, EpochInput, ProgramFactory, ProgramId, Stream,
};
use crate::stats::{Breakdown, Category, RunStats};
use crate::telemetry::{EventKind, Recorder, TelemetryHandle};
use crate::universe::EpochTuning;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use jsweep_comm::pack::Writer;
use jsweep_comm::termination::{Counting, Safra, Verdict};
use jsweep_comm::{Comm, CommError, Universe as CommUniverse};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which termination detector the runtime uses (§IV-C: "we support
/// both").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationKind {
    /// Workload counting — the fast path for known-total algorithms.
    Counting,
    /// Dijkstra–Safra token ring — the general protocol.
    Safra,
}

/// Runtime configuration of one rank.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads per rank (the paper reserves one core for the
    /// master and uses the rest as workers). Also the number of
    /// ready-queue shards in the [`Pool`].
    pub num_workers: usize,
    /// Termination detector.
    pub termination: TerminationKind,
    /// Batching knob: max output streams a worker buffers across
    /// compute calls before flushing a report to the master. Batches
    /// are always flushed before a worker blocks, so this trades
    /// master-channel traffic against stream latency. `1` restores
    /// one-report-per-compute behaviour. Re-tunable per epoch on a
    /// persistent universe ([`crate::EpochTuning`]).
    pub report_flush_streams: usize,
    /// Batching knob: max streams packed into one outbound frame. A
    /// destination's frame is sent mid-round once it fills; otherwise
    /// frames flush at the end of each master drain round. `1`
    /// restores one-message-per-stream behaviour.
    pub max_frame_streams: usize,
    /// Batching knob: program claims a worker takes per pool
    /// round-trip. Only already-ready programs are batched, so sparse
    /// workloads still flow one at a time — which is why the default
    /// of 8 measured fine for both fine-grained compute storms and
    /// few-large-compute replay iterations (see the coarse-replay
    /// tuning notes in `jsweep-transport::solver`; shrinking the batch
    /// bought nothing there). The knob exists for workloads where
    /// claim latency provably dominates; `1` restores
    /// one-claim-per-round-trip behaviour. Re-tunable per epoch on a
    /// persistent universe.
    pub claim_batch: usize,
    /// Epoch watchdog deadline, default off. When set, a rank whose
    /// pool holds active work but whose master sees no progress (no
    /// worker reports, no network traffic) for this long declares the
    /// epoch stalled: the hang becomes an [`EpochFault`] of kind
    /// [`FaultKind::Stall`] instead of blocking forever. The deadline
    /// must exceed the longest legitimate single compute call — a
    /// worker deep in one kernel reports nothing until it finishes.
    pub watchdog: Option<Duration>,
    /// Deterministic fault-injection plan (chaos testing only),
    /// default none. Inert unless the `fault-inject` cargo feature is
    /// enabled; see [`FaultPlan`].
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Telemetry attachment, default detached. Inert unless the
    /// `telemetry` cargo feature is enabled *and* the attached
    /// recorder is armed; see [`TelemetryHandle`].
    pub telemetry: TelemetryHandle,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_workers: 2,
            termination: TerminationKind::Counting,
            report_flush_streams: 32,
            max_frame_streams: 256,
            claim_batch: 8,
            watchdog: None,
            fault_plan: None,
            telemetry: TelemetryHandle::default(),
        }
    }
}

/// Multi-stream frames travel under this tag.
const TAG_FRAME: u32 = 0;

/// Map a transport failure observed by `origin_rank` into the fault
/// taxonomy: the fault is blamed on the *vanished peer* (that is the
/// rank that died), not on the rank that noticed, so session-tier
/// quarantine and retry accounting target the right rank.
fn comm_fault(origin_rank: usize, e: CommError) -> EpochFault {
    let CommError::PeerClosed { peer } = e;
    EpochFault {
        rank: peer,
        worker: 0,
        program: None,
        payload: format!("transport failure observed on rank {origin_rank}: {e}"),
        kind: FaultKind::RankDeath,
    }
}

/// Epoch-abort broadcasts travel under this tag: when a rank faults
/// it packs the [`EpochFault`] and sends it to every peer, which
/// breaks out of the epoch with the same fault. A user-space tag —
/// faulted epochs never reach the epoch fence, and a faulted
/// universe's comm world is discarded wholesale on relaunch, so abort
/// residue can never leak into a healthy epoch.
const TAG_ABORT: u32 = 1;

/// Report a worker sends the master after one or more compute rounds.
/// Besides the routed payload (`outputs`, `work_done`) it carries the
/// worker's stats *delta* since its last report (`bd`, `compute_calls`)
/// so a resident rank can attribute worker time to the current epoch
/// without joining threads.
#[derive(Default)]
struct Report {
    /// Producing worker index (for per-worker breakdown attribution).
    worker: usize,
    outputs: Vec<Stream>,
    work_done: u64,
    compute_calls: u64,
    bd: Breakdown,
    /// Contained program panics caught at the claim site. Faults are
    /// report content like any other: they register in
    /// [`Pool::hold_report`] until flushed, so the pool can never
    /// look quiet while a fault is still in flight to the master.
    faults: Vec<EpochFault>,
    /// Whether this report is registered in [`Pool::hold_report`]
    /// (true once the batch has any content — outputs, work, stat
    /// deltas or faults — so quiescence is never observable with an
    /// unflushed batch anywhere).
    held: bool,
}

impl Report {
    fn is_empty(&self) -> bool {
        self.outputs.is_empty()
            && self.work_done == 0
            && self.compute_calls == 0
            && self.faults.is_empty()
    }
}

/// Send the accumulated report to the master (no-op when empty: a
/// report carrying only idle-time deltas is held back until real
/// output/compute rides along, so sleeping workers don't spam the
/// master channel).
fn flush_report(pool: &Pool, to_master: &Sender<Report>, batch: &mut Report, worker: usize) {
    if batch.is_empty() {
        return;
    }
    let mut report = std::mem::take(batch);
    report.worker = worker;
    let held = report.held;
    let t0 = Instant::now();
    let _ = to_master.send(report);
    batch.bd.add(Category::Output, t0.elapsed().as_secs_f64());
    if held {
        pool.release_report();
    }
}

fn worker_loop<F: ProgramFactory>(
    rank: usize,
    worker: usize,
    pool: Arc<Pool>,
    factory: Arc<F>,
    to_master: Sender<Report>,
    inject: Option<Arc<FaultPlan>>,
    rec: Recorder,
) -> (Breakdown, u64) {
    // With injection compiled out the plan is never consulted; the
    // hooks below vanish and `inject` only exists to keep the spawn
    // signature stable across feature sets.
    #[cfg(not(feature = "fault-inject"))]
    let _ = (&inject, rank);
    let mut batch = Report::default();
    let mut claims: Vec<crate::pool::Claim> = Vec::new();
    let mut finishes: Vec<crate::pool::FinishEntry> = Vec::new();
    loop {
        // Batching knobs are read from the pool each round-trip, so a
        // persistent universe can re-tune them per epoch while this
        // thread stays resident.
        let claim_batch = pool.claim_batch();
        // Flush the batch before blocking, never while work is ready:
        // streams keep moving, and quiescence stays honest.
        if pool.try_take_batch(worker, claim_batch, &mut claims) == 0 {
            flush_report(&pool, &to_master, &mut batch, worker);
            // The claim span covers the blocking wait too, so the
            // trace shows how long this worker starved for work.
            let tc0 = rec.now();
            if pool.take_batch(worker, claim_batch, &mut claims, &mut batch.bd) == 0 {
                break;
            }
            rec.span(EventKind::Claim, tc0, claims.len() as u64, 0);
        }
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &inject {
            if let Some(d) = plan.stall_for(rank, worker) {
                // Injected stall: sleep while holding the claims so
                // the pool stays un-quiet and the epoch watchdog can
                // observe a stuck rank.
                std::thread::sleep(d);
            }
        }
        for claim in claims.drain(..) {
            let id = claim.id;
            // Contain program panics at the claim site: everything a
            // program's own code can run — create/reset, init, input,
            // compute, vote — executes under `catch_unwind`, so a
            // panicking patch poisons the *epoch* (reported as an
            // `EpochFault` below), never this thread. Unwind safety is
            // asserted because the poisoned program is discarded
            // wholesale — its possibly-torn state is never observed
            // again — and `batch` only accumulates timing slop.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut program = match claim.program {
                    Some(p) => p,
                    None => batch.bd.timed(Category::Other, || {
                        let mut p = Box::new(factory.create(claim.id))
                            as Box<dyn crate::program::PatchProgram>;
                        // A program materialising in epoch ≥ 2 of a
                        // persistent universe is factory-fresh (first
                        // epoch's state); specialise it to the current
                        // epoch exactly like the resident programs were at
                        // the epoch boundary.
                        if let Some(epoch) = pool.epoch_input() {
                            p.reset(&*epoch);
                        }
                        p
                    }),
                };
                if !claim.initialized {
                    batch.bd.timed(Category::Other, || program.init());
                }
                let mut pending = claim.pending;
                batch.bd.timed(Category::Input, || {
                    for (src, payload) in pending.drain(..) {
                        program.input(src, payload);
                    }
                });
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = &inject {
                    if plan.should_panic(id) {
                        panic!(
                            "injected fault: compute of patch {} task {}",
                            id.patch.0, id.task.0
                        );
                    }
                }
                let mut ctx = ComputeCtx::default();
                let t0 = Instant::now();
                let tt0 = rec.now();
                program.compute(&mut ctx);
                rec.span(
                    EventKind::Compute,
                    tt0,
                    u64::from(id.patch.0),
                    u64::from(id.task.0),
                );
                let dt = t0.elapsed().as_secs_f64();
                let halted = program.vote_to_halt();
                (program, pending, ctx, dt, halted)
            }));
            let (program, pending, mut ctx, dt, halted) = match outcome {
                Ok(round) => round,
                Err(payload) => {
                    // The program (and any outputs of the poisoned
                    // round) died with the unwind. Report the fault —
                    // held like any other content until flushed — and
                    // poison the slot so the pool stays consistent and
                    // can still quiesce around the loss.
                    if !batch.held {
                        pool.hold_report();
                        batch.held = true;
                    }
                    rec.instant(
                        EventKind::Fault,
                        u64::from(id.patch.0),
                        u64::from(id.task.0),
                    );
                    batch.faults.push(EpochFault {
                        rank,
                        worker,
                        program: Some(id),
                        payload: panic_message(payload.as_ref()),
                        kind: FaultKind::Panic,
                    });
                    pool.discard(id);
                    continue;
                }
            };
            batch.compute_calls += 1;
            if !batch.held {
                // Any non-empty batch — even a stat-only one — holds
                // quiescence until flushed. Must precede the batch's
                // `finish_batch`: while this program still counts as
                // Running, quiet cannot be observed with our
                // outputs/stats in hand, which is what lets the
                // master's end-of-epoch quiesce drain collect every
                // report before closing the epoch.
                pool.hold_report();
                batch.held = true;
            }
            batch.bd.add(Category::Kernel, ctx.kernel_seconds);
            batch
                .bd
                .add(Category::GraphOp, (dt - ctx.kernel_seconds).max(0.0));
            if !ctx.out.is_empty() || ctx.work_done > 0 {
                batch.bd.timed(Category::Output, || {
                    batch.outputs.append(&mut ctx.out);
                    batch.work_done += ctx.work_done;
                });
            }
            finishes.push(crate::pool::FinishEntry {
                id: claim.id,
                program,
                halted,
                scratch: pending,
            });
        }
        // One lock per same-shard run instead of one per program.
        pool.finish_batch(&mut finishes);
        // Stamp after the hand-off: the gap between a worker's newest
        // stamp and the epoch's quiesce close is its per-epoch drain
        // tail (`RunStats::worker_drain_seconds`).
        pool.note_worker_activity(worker);
        // Faults flush eagerly: the master should learn of a poisoned
        // epoch at the first opportunity, not a batch boundary later.
        if !batch.faults.is_empty() || batch.outputs.len() >= pool.flush_streams() {
            flush_report(&pool, &to_master, &mut batch, worker);
        }
    }
    flush_report(&pool, &to_master, &mut batch, worker);
    // Residual after the final flush: at most the last send's timing
    // slop (compute calls and outputs always flush before blocking).
    (batch.bd, batch.compute_calls)
}

/// One outbound frame under construction (writer reused across
/// flushes; see [`jsweep_comm::pack::Writer::take`]).
struct FrameSlot {
    w: Writer,
    count: u64,
}

/// Route-table entry: hosting rank and scheduling priority, evaluated
/// once per program instead of per stream.
#[derive(Clone, Copy)]
struct RouteEntry {
    rank: usize,
    priority: i64,
}

fn route_lookup<F: ProgramFactory>(
    routes: &mut HashMap<ProgramId, RouteEntry>,
    factory: &F,
    id: ProgramId,
) -> RouteEntry {
    *routes.entry(id).or_insert_with(|| RouteEntry {
        rank: factory.rank_of(id),
        priority: factory.priority(id),
    })
}

/// Master-side routing state of one rank: route table, per-destination
/// outbound frames, and the stats/timing they feed.
///
/// The routing half (route table, frame writers) is **persistent** —
/// it survives epoch boundaries of a resident [`Rank`] — while the
/// accounting half (stats, breakdown, Safra counters, progress) is
/// re-armed per epoch by [`Master::begin_epoch`].
///
/// Priorities are snapshotted into the route table (one
/// `ProgramFactory::priority` evaluation per program); factories with
/// genuinely dynamic priorities should re-`activate` explicitly.
struct Master<F: ProgramFactory> {
    rank: usize,
    size: usize,
    factory: Arc<F>,
    routes: HashMap<ProgramId, RouteEntry>,
    frames: Vec<FrameSlot>,
    /// Destination ranks with a non-empty frame (pushed on the 0→1
    /// stream transition; duplicates are benign, `flush_one` skips
    /// empty frames).
    dirty: Vec<usize>,
    local: Vec<(Stream, i64)>,
    max_frame_streams: u64,
    stats: RunStats,
    bd: Breakdown,
    safra: Safra,
    work_done: u64,
    /// First transport failure seen while routing this epoch (sends
    /// happen deep in the routing hot path, where returning `Result`
    /// through every layer would be noise; the main loop checks this
    /// once per drain round instead).
    dead: Option<CommError>,
    /// This master thread's telemetry lane (lane 0 of the rank).
    rec: Recorder,
    /// Handle back to the registry for the frame-size histogram.
    telemetry: TelemetryHandle,
}

impl<F: ProgramFactory> Master<F> {
    fn new(rank: usize, size: usize, factory: Arc<F>, config: &RuntimeConfig) -> Master<F> {
        // Precompute the route table from the placement the factory
        // already describes; any id it misses (dynamically created
        // targets) falls back to one factory evaluation, cached.
        let mut routes = HashMap::new();
        for r in 0..size {
            for id in factory.programs_on_rank(r) {
                // Only local destinations are ever delivered with a
                // priority; remote entries are routing-only, so skip
                // their (potentially expensive) priority evaluation.
                let priority = if r == rank { factory.priority(id) } else { 0 };
                routes.insert(id, RouteEntry { rank: r, priority });
            }
        }
        Master {
            rank,
            size,
            factory,
            routes,
            frames: (0..size)
                .map(|_| FrameSlot {
                    w: Writer::new(),
                    count: 0,
                })
                .collect(),
            dirty: Vec::new(),
            local: Vec::new(),
            max_frame_streams: config.max_frame_streams.max(1) as u64,
            stats: RunStats::default(),
            bd: Breakdown::default(),
            safra: Safra::new(rank, size),
            work_done: 0,
            dead: None,
            rec: config.telemetry.recorder(rank as u32, 0),
            telemetry: config.telemetry.clone(),
        }
    }

    /// Re-arm the per-epoch accounting state; routing state persists.
    fn begin_epoch(&mut self, num_workers: usize) {
        debug_assert!(self.dirty.is_empty(), "frames leaked across epochs");
        debug_assert!(self.local.is_empty(), "local streams leaked across epochs");
        self.stats = RunStats {
            rank: self.rank,
            workers: vec![Breakdown::default(); num_workers],
            ..Default::default()
        };
        self.bd = Breakdown::default();
        self.safra = Safra::new(self.rank, self.size);
        self.work_done = 0;
        self.dead = None;
    }

    /// Priority of a local program (route-table hit or cached fallback).
    fn priority_of(&mut self, id: ProgramId) -> i64 {
        route_lookup(&mut self.routes, self.factory.as_ref(), id).priority
    }

    /// Fold a report's worker-side stat deltas into this epoch's stats.
    fn absorb_worker_stats(&mut self, report: &Report) {
        self.stats.compute_calls += report.compute_calls;
        if let Some(w) = self.stats.workers.get_mut(report.worker) {
            w.merge(&report.bd);
        }
    }

    /// Route one worker report: local streams are delivered to the pool
    /// in one batch, remote streams are appended to their destination
    /// frames (sent by [`Master::flush_frames`], or mid-round when a
    /// frame fills). Shared by the busy drain loop and the idle
    /// `recv_timeout` fallback — both paths get identical routing and
    /// timing.
    fn route_report(&mut self, pool: &Pool, comm: &Comm, report: Report) {
        self.absorb_worker_stats(&report);
        self.work_done += report.work_done;
        self.stats.work_done += report.work_done;
        if report.outputs.is_empty() {
            return;
        }
        let streams_routed = report.outputs.len() as u64;
        let tr0 = self.rec.now();
        let t_route = Instant::now();
        // Pack and send time inside this loop is booked to its own
        // category and must not also count as Route.
        let mut non_route_seconds = 0.0;
        let mut pack_seconds = 0.0;
        for stream in report.outputs {
            let entry = route_lookup(&mut self.routes, self.factory.as_ref(), stream.dst);
            if entry.rank == self.rank {
                self.stats.streams_local += 1;
                self.local.push((stream, entry.priority));
            } else {
                let t_pack = Instant::now();
                let count = {
                    let slot = &mut self.frames[entry.rank];
                    frame_push(&mut slot.w, &stream);
                    slot.count += 1;
                    slot.count
                };
                pack_seconds += t_pack.elapsed().as_secs_f64();
                if count == 1 {
                    self.dirty.push(entry.rank);
                }
                if count >= self.max_frame_streams {
                    let t_flush = Instant::now();
                    self.flush_one(comm, entry.rank);
                    non_route_seconds += t_flush.elapsed().as_secs_f64();
                }
            }
        }
        if !self.local.is_empty() {
            pool.deliver_batch(self.local.drain(..));
        }
        non_route_seconds += pack_seconds;
        self.bd.add(Category::Pack, pack_seconds);
        self.bd.add(
            Category::Route,
            (t_route.elapsed().as_secs_f64() - non_route_seconds).max(0.0),
        );
        self.rec.span(EventKind::Route, tr0, streams_routed, 0);
    }

    /// Send `dst`'s frame if it has content.
    fn flush_one(&mut self, comm: &Comm, dst: usize) {
        let slot = &mut self.frames[dst];
        if slot.count == 0 {
            return;
        }
        let tp0 = self.rec.now();
        let payload = slot.w.take();
        let frame_bytes = payload.len();
        self.stats.streams_sent += slot.count;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        slot.count = 0;
        let sent = self
            .bd
            .timed(Category::Comm, || comm.send(dst, TAG_FRAME, payload));
        self.rec
            .span(EventKind::Pack, tp0, dst as u64, frame_bytes as u64);
        self.rec
            .instant(EventKind::Send, dst as u64, frame_bytes as u64);
        self.telemetry.observe_frame_bytes(self.rank, frame_bytes);
        match sent {
            Ok(()) => self.safra.on_send(),
            // The destination rank is gone. Record the diagnosis for
            // the main loop's per-round check; dropping the frame is
            // sound because the epoch is already doomed.
            Err(e) => {
                self.dead.get_or_insert(e);
            }
        }
    }

    /// Send every pending frame (end of a drain round).
    fn flush_frames(&mut self, comm: &Comm) {
        while let Some(dst) = self.dirty.pop() {
            self.flush_one(comm, dst);
        }
    }

    /// An incoming frame: unpack zero-copy, deliver as one pool batch.
    fn recv_frame(&mut self, pool: &Pool, src: usize, payload: Bytes) {
        self.rec
            .instant(EventKind::Recv, src as u64, payload.len() as u64);
        self.safra.on_receive();
        self.stats.frames_received += 1;
        let streams = self.bd.timed(Category::Unpack, || unpack_frame(payload));
        self.stats.streams_received += streams.len() as u64;
        let t0 = Instant::now();
        let routes = &mut self.routes;
        let factory = self.factory.as_ref();
        pool.deliver_batch(streams.into_iter().map(|s| {
            let prio = route_lookup(routes, factory, s.dst).priority;
            (s, prio)
        }));
        self.bd.add(Category::Route, t0.elapsed().as_secs_f64());
    }
}

/// One resident rank of a (possibly persistent) universe: the master
/// state, the shared program pool and the live worker threads. Created
/// once per [`crate::Universe`] lifetime; [`Rank::run_epoch`] is called
/// once per epoch.
pub(crate) struct Rank<F: ProgramFactory> {
    comm: Comm,
    pool: Arc<Pool>,
    config: RuntimeConfig,
    from_workers: Receiver<Report>,
    workers: Vec<JoinHandle<(Breakdown, u64)>>,
    m: Master<F>,
    epochs_run: u64,
}

impl<F: ProgramFactory> Rank<F> {
    /// Spawn this rank's workers and build its master state; no epoch
    /// runs yet.
    pub(crate) fn launch(comm: Comm, factory: Arc<F>, config: &RuntimeConfig) -> Rank<F> {
        assert!(config.num_workers > 0, "need at least one worker");
        let rank = comm.rank();
        let size = comm.size();
        let pool = Arc::new(Pool::new(config.num_workers));
        pool.set_batching(Some(config.report_flush_streams), Some(config.claim_batch));
        let m = Master::new(rank, size, factory.clone(), config);
        let (to_master, from_workers): (Sender<Report>, Receiver<Report>) = unbounded();
        let mut workers = Vec::with_capacity(config.num_workers);
        for w in 0..config.num_workers {
            let pool = pool.clone();
            let factory = factory.clone();
            let tx = to_master.clone();
            let inject = config.fault_plan.clone();
            // Lane 0 is the master; worker `w` records on lane `w + 1`.
            let rec = config.telemetry.recorder(rank as u32, (w + 1) as u32);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}-worker-{w}"))
                    .spawn(move || worker_loop(rank, w, pool, factory, tx, inject, rec))
                    .expect("spawn worker"),
            );
        }
        drop(to_master);
        Rank {
            comm,
            pool,
            config: config.clone(),
            from_workers,
            workers,
            m,
            epochs_run: 0,
        }
    }

    /// Synchronise all ranks at an epoch boundary and discard any
    /// stale residue of the previous epoch.
    ///
    /// Two barriers bracket a drain: after the first barrier every
    /// rank has terminated the previous epoch (so any *user* message
    /// in the receive queue is residue — termination guarantees needed
    /// streams were delivered); the second barrier ensures no rank has
    /// started the next epoch while others still drain, so new-epoch
    /// frames can never be mistaken for residue. The drain is
    /// tag-aware ([`Comm::drain_user`]): a faster peer may already
    /// have sent its second-barrier message, which must survive.
    fn epoch_fence(&mut self) -> Result<(), CommError> {
        self.comm.barrier()?;
        self.comm.drain_user()?;
        self.comm.barrier()
    }

    /// Run one epoch to global termination and return this rank's
    /// stats. `input` is handed to every resident program's
    /// [`crate::PatchProgram::reset`] from the second epoch on; the
    /// first epoch runs factory-fresh programs as-is.
    ///
    /// `Err` means the epoch was poisoned — a contained program
    /// panic, a watchdog-detected stall, or an abort broadcast from a
    /// faulted peer. A faulted rank must not run further epochs (its
    /// pool holds poisoned state and its peers' epochs diverged);
    /// the owning [`crate::Universe`] relaunches instead.
    pub(crate) fn run_epoch(
        &mut self,
        input: &Arc<EpochInput>,
        tuning: EpochTuning,
    ) -> Result<RunStats, EpochFault> {
        let t_start = Instant::now();
        let epoch_start_nanos = self.pool.now_nanos();
        let epoch_index = self.epochs_run;
        let te0 = self.m.rec.now();
        self.m.begin_epoch(self.config.num_workers);
        self.pool
            .set_batching(tuning.report_flush_streams, tuning.claim_batch);

        // Inter-epoch synchronisation (booked as master idle time).
        // The first epoch has no predecessor to fence off, so one-shot
        // runs pay no barrier at all.
        if self.epochs_run > 0 {
            let t_fence = Instant::now();
            let tf0 = self.m.rec.now();
            let fence = self.epoch_fence();
            self.m.rec.span(EventKind::Fence, tf0, 0, 0);
            self.m
                .bd
                .add(Category::Idle, t_fence.elapsed().as_secs_f64());
            if let Err(e) = fence {
                // A peer died between epochs. No abort broadcast: the
                // peers will observe the same death through their own
                // fences or drain loops.
                self.epochs_run += 1;
                self.m
                    .rec
                    .span(EventKind::Epoch, te0, epoch_index, tuning.span);
                return Err(comm_fault(self.m.rank, e));
            }
        }

        // Re-arm resident programs for this epoch; the pool drops
        // stale heap entries in the same pass. Lazily created programs
        // get the same reset right after `create` (see `worker_loop`).
        if self.epochs_run > 0 {
            self.pool.set_epoch_input(Some(input.clone()));
            let pool = &self.pool;
            let inp: &EpochInput = &**input;
            self.m
                .bd
                .timed(Category::Other, || pool.reset_epoch(|_, p| p.reset(inp)));
        }

        let (m, pool, comm, from_workers) =
            (&mut self.m, &self.pool, &mut self.comm, &self.from_workers);
        let rank = m.rank;
        let size = m.size;

        // Injected rank death (chaos testing): panic the whole rank
        // thread after the fence, with peers mid-epoch, so they learn
        // of the death only through the transport — a raw EOF on a
        // socket fabric, a failed send on the thread fabric.
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.config.fault_plan {
            if plan.should_kill_rank(rank) {
                panic!("injected fault: rank {rank} death");
            }
        }

        // Progress tracking: local committed workload (re-evaluated
        // per epoch — constant for sweeps, but the factory may vary
        // it).
        let local_ids = m.factory.programs_on_rank(rank);
        let total_work: u64 = local_ids
            .iter()
            .map(|&id| m.factory.initial_workload(id))
            .sum();

        // All patch-programs start active (§III-A).
        for &id in &local_ids {
            let prio = m.priority_of(id);
            pool.activate(id, prio);
        }

        let mut counting = Counting::new(rank, size);

        // Fault containment: the first fault seen this epoch — local
        // (a worker-reported panic, a watchdog stall, worker-channel
        // death) or remote (a peer's abort broadcast) — ends the
        // epoch with `Err`. Local faults are re-broadcast to peers
        // after the loop; remote ones are not (each origin broadcasts
        // exactly once, so abort storms cannot loop).
        let mut fault: Option<EpochFault> = None;
        let mut fault_is_local = false;
        let mut last_progress = Instant::now();

        'main: loop {
            let mut progress = false;

            // Drain worker reports: route streams, track progress.
            while let Ok(mut report) = from_workers.try_recv() {
                progress = true;
                if let Some(f) = report.faults.pop() {
                    fault.get_or_insert(f);
                    fault_is_local = true;
                    report.faults.clear();
                }
                m.route_report(pool, comm, report);
            }
            // One frame per destination per drain round.
            m.flush_frames(comm);
            // A routing send may have diagnosed a dead peer.
            if let Some(e) = m.dead.take() {
                fault.get_or_insert(comm_fault(rank, e));
                fault_is_local = true;
            }
            if fault.is_some() {
                break 'main;
            }

            // Drain network messages: incoming frames + protocol traffic.
            loop {
                let msg = match m.bd.timed(Category::Comm, || comm.try_recv()) {
                    Ok(Some(msg)) => msg,
                    Ok(None) => break,
                    Err(e) => {
                        fault = Some(comm_fault(rank, e));
                        fault_is_local = true;
                        break 'main;
                    }
                };
                progress = true;
                match msg.tag {
                    TAG_FRAME => m.recv_frame(pool, msg.src, msg.payload),
                    TAG_ABORT => {
                        fault = Some(EpochFault::unpack(&msg.payload));
                        break 'main;
                    }
                    _ => {
                        let v = match self.config.termination {
                            TerminationKind::Counting => counting.on_message(&msg, comm),
                            TerminationKind::Safra => m.safra.on_message(&msg, comm),
                        };
                        match v {
                            Ok(Verdict::Terminated) => break 'main,
                            Ok(_) => {}
                            Err(e) => {
                                fault = Some(comm_fault(rank, e));
                                fault_is_local = true;
                                break 'main;
                            }
                        }
                    }
                }
            }

            // Termination detection.
            let verdict = match self.config.termination {
                TerminationKind::Counting => {
                    debug_assert!(
                        m.work_done <= total_work,
                        "programs over-reported work ({} > committed {total_work})",
                        m.work_done
                    );
                    let remaining = total_work.saturating_sub(m.work_done);
                    counting.maybe_report(remaining, comm)
                }
                TerminationKind::Safra => {
                    debug_assert!(m.dirty.is_empty(), "unflushed frames at idle check");
                    let idle = !progress && pool.is_quiet();
                    m.safra.maybe_advance(idle, comm)
                }
            };
            match verdict {
                Ok(Verdict::Terminated) => break 'main,
                Ok(_) => {}
                Err(e) => {
                    fault = Some(comm_fault(rank, e));
                    fault_is_local = true;
                    break 'main;
                }
            }

            if progress {
                last_progress = Instant::now();
            } else {
                // Watchdog: active local work with no progress for the
                // deadline means a worker (or the program it runs) is
                // stuck — convert the hang into a fault. A *quiet*
                // pool is exempt: a rank legitimately waits arbitrarily
                // long for remote traffic, and the genuinely stalled
                // rank is the one whose own pool stays busy.
                if let Some(deadline) = self.config.watchdog {
                    if !pool.is_quiet() && last_progress.elapsed() >= deadline {
                        let stalest = (0..self.config.num_workers)
                            .min_by_key(|&w| pool.worker_last_activity_nanos(w))
                            .unwrap_or(0);
                        fault = Some(EpochFault {
                            rank,
                            worker: stalest,
                            program: None,
                            payload: format!(
                                "watchdog: no progress for {deadline:?} with active work"
                            ),
                            kind: FaultKind::Stall,
                        });
                        fault_is_local = true;
                        break 'main;
                    }
                }
                // Nothing to do right now: park briefly on the worker
                // channel (the latency-critical path).
                let t0 = Instant::now();
                let parked = from_workers.recv_timeout(Duration::from_micros(200));
                m.bd.add(Category::Idle, t0.elapsed().as_secs_f64());
                match parked {
                    Ok(mut report) => {
                        if let Some(f) = report.faults.pop() {
                            fault.get_or_insert(f);
                            fault_is_local = true;
                            report.faults.clear();
                        }
                        m.route_report(pool, comm, report);
                        m.flush_frames(comm);
                        if let Some(e) = m.dead.take() {
                            fault.get_or_insert(comm_fault(rank, e));
                            fault_is_local = true;
                        }
                        if fault.is_some() {
                            break 'main;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        // Workers only exit on `Pool::stop`; death here
                        // is an engine bug, but it is still contained
                        // as a fault rather than a process abort.
                        fault = Some(EpochFault {
                            rank,
                            worker: 0,
                            program: None,
                            payload: "all worker threads died mid-epoch".to_string(),
                            kind: FaultKind::RankDeath,
                        });
                        fault_is_local = true;
                        break 'main;
                    }
                }
            }
        }

        // A poisoned epoch ends here: tell every peer (local origin
        // only — remote aborts were already broadcast by their origin)
        // and skip the quiesce drain, which a stuck worker could wedge
        // forever. Outstanding claims and held reports are abandoned
        // with the pool itself when the universe relaunches or shuts
        // down.
        if let Some(f) = fault {
            if fault_is_local {
                // Best-effort: a peer that already died (the very thing
                // some faults report) cannot be told about it.
                let payload = f.pack();
                for peer in 0..size {
                    if peer != rank {
                        let _ = comm.send(peer, TAG_ABORT, payload.clone());
                    }
                }
            }
            m.rec
                .instant(EventKind::Fault, f.rank as u64, f.worker as u64);
            m.rec.span(EventKind::Epoch, te0, epoch_index, tuning.span);
            self.epochs_run += 1;
            return Err(f);
        }

        // Quiesce the local pool before closing the epoch: global
        // termination (counting in particular) can be declared while a
        // worker still holds a claim whose compute is a no-op — all
        // committed work is done, but the program is still `Running`.
        // Wait for workers to hand everything back, scooping up
        // straggler stat-only reports so per-epoch worker breakdowns
        // stay complete. This is airtight because *any* non-empty
        // worker batch registers in `held_reports` until flushed, so
        // `is_quiet` cannot turn true with a report still forming or
        // in flight (termination already means no stream can still
        // need delivery).
        let t_quiesce = Instant::now();
        let mut quiet_seen = false;
        loop {
            while let Ok(report) = from_workers.try_recv() {
                debug_assert!(
                    report.outputs.is_empty(),
                    "stream-bearing worker report after termination"
                );
                m.absorb_worker_stats(&report);
                m.stats.work_done += report.work_done;
            }
            if quiet_seen {
                break;
            }
            if pool.is_quiet() {
                // A worker releases its held report *after* the
                // channel send, so a final report can land between the
                // sweep above and this quiet observation. Once the
                // pool is quiet nothing can be claimed and no new
                // report can form — one more sweep closes the window,
                // keeping every stat delta in the epoch that ran it.
                quiet_seen = true;
                continue;
            }
            std::thread::yield_now();
        }
        m.bd.add(Category::Idle, t_quiesce.elapsed().as_secs_f64());

        // Per-worker drain stamps: the tail between each worker's last
        // report hand-off and this quiesce close, clamped to the epoch
        // (a stamp predating the epoch means the worker never ran in
        // it). Taken at the fence because idle-only worker reports are
        // held back and cannot carry this tail themselves.
        let close = pool.now_nanos();
        m.stats.worker_drain_seconds = (0..self.config.num_workers)
            .map(|w| {
                let last = pool.worker_last_activity_nanos(w).max(epoch_start_nanos);
                close.saturating_sub(last) as f64 * 1e-9
            })
            .collect();

        self.epochs_run += 1;
        let mut stats = std::mem::take(&mut m.stats);
        stats.master = std::mem::take(&mut m.bd);
        stats.wall_seconds = t_start.elapsed().as_secs_f64();
        m.rec.span(EventKind::Epoch, te0, epoch_index, tuning.span);
        m.telemetry.epoch_metrics(
            rank,
            &stats,
            (
                comm.bytes_sent(),
                comm.bytes_received(),
                comm.frames_received(),
            ),
        );
        Ok(stats)
    }

    /// Stop the pool, join the workers and return their residual
    /// (post-final-flush) stat deltas in worker order. With the
    /// hold-any-content report discipline, every compute call and
    /// output has been flushed and drained by the epoch that ran it —
    /// the residual is only the final flush's send-timing slop plus
    /// post-epoch idle, which belongs to no epoch.
    ///
    /// Worker threads contain program panics, so a join failure here
    /// is an engine bug; it aborts with the worker's identity and
    /// panic payload rather than a bare expect.
    pub(crate) fn shutdown(mut self) -> Vec<(Breakdown, u64)> {
        self.pool.stop();
        let rank = self.m.rank;
        let residuals: Vec<_> = self
            .workers
            .drain(..)
            .enumerate()
            .map(|(w, h)| {
                h.join().unwrap_or_else(|e| {
                    panic!(
                        "rank {rank} worker {w} thread panicked: {}",
                        panic_message(e.as_ref())
                    )
                })
            })
            .collect();
        // Tell peers the silence that follows is intentional, so a
        // process-grade transport does not read this rank's exit as a
        // death.
        self.comm.close();
        residuals
    }
}

impl<F: ProgramFactory> Drop for Rank<F> {
    fn drop(&mut self) {
        // A rank abandoned without `shutdown` — an injected rank death,
        // or an engine panic unwinding through `run_epoch` — must still
        // release its workers, or they would block forever on an empty
        // pool and (joined by nobody) leak. `Pool::stop` is idempotent,
        // so the normal shutdown path is unaffected. The comm endpoint
        // is deliberately *not* closed here: its own drop logic
        // distinguishes clean teardown from a mid-panic unwind, which
        // is exactly how peers detect the death.
        self.pool.stop();
    }
}

/// One rank of an SPMD (one-process-per-rank) world: the public form
/// of the resident rank engine, for callers that own a real process
/// boundary instead of a [`crate::Universe`] of threads.
///
/// Where a `Universe` spawns every rank and harvests faults centrally,
/// an `SpmdRank` is launched once per process over a connected
/// [`Comm`] (typically a socket world) and driven epoch by epoch;
/// transport failures and contained faults surface as
/// [`EpochFault`]s from [`SpmdRank::run_epoch`] in each process
/// independently.
pub struct SpmdRank<F: ProgramFactory> {
    inner: Rank<F>,
}

impl<F: ProgramFactory> SpmdRank<F> {
    /// Spawn this process's workers and master state over `comm`.
    pub fn launch(comm: Comm, factory: Arc<F>, config: &RuntimeConfig) -> SpmdRank<F> {
        SpmdRank {
            inner: Rank::launch(comm, factory, config),
        }
    }

    /// Run one epoch to global termination (see the resident-rank
    /// epoch contract on [`crate::Universe::run_epoch`]).
    pub fn run_epoch(
        &mut self,
        input: &Arc<EpochInput>,
        tuning: crate::EpochTuning,
    ) -> Result<RunStats, EpochFault> {
        self.inner.run_epoch(input, tuning)
    }

    /// This process's rank id.
    pub fn rank(&self) -> usize {
        self.inner.comm.rank()
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.inner.comm.size()
    }

    /// The rank's comm endpoint, for out-of-epoch collectives
    /// (reductions between solver iterations).
    pub fn comm_mut(&mut self) -> &mut Comm {
        &mut self.inner.comm
    }

    /// Join workers and close the endpoint gracefully.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Run one rank of a patch-centric data-driven computation to global
/// termination. Returns the rank's [`RunStats`].
///
/// This is the one-shot (single-epoch) form: workers are spawned,
/// one epoch runs, workers are joined. [`crate::Universe`] keeps the
/// same machinery resident across epochs.
pub fn run_rank<F: ProgramFactory>(
    comm: Comm,
    factory: Arc<F>,
    config: &RuntimeConfig,
) -> RunStats {
    let mut rank = Rank::launch(comm, factory, config);
    let input: Arc<EpochInput> = Arc::new(());
    // The one-shot form keeps fail-fast semantics: there is no
    // universe to relaunch, so a contained fault becomes a contextful
    // panic on this rank's thread.
    let mut stats = rank
        .run_epoch(&input, EpochTuning::default())
        .unwrap_or_else(|f| panic!("one-shot epoch faulted: {f}"));
    for (w, (bd, calls)) in rank.shutdown().into_iter().enumerate() {
        // Fold the residual post-flush slop so one-shot totals stay
        // exact.
        stats.workers[w].merge(&bd);
        stats.compute_calls += calls;
    }
    stats
}

/// Run a full simulated-MPI computation: `num_ranks` ranks, each with
/// `config.num_workers` workers, sharing one program factory.
///
/// Since the persistent-universe refactor this is a thin one-epoch
/// wrapper over [`crate::Universe`]: launch, run a single epoch,
/// shut down. Multi-epoch workloads should hold a
/// [`crate::Universe`] instead and pay the launch cost once.
pub fn run_universe<F: ProgramFactory>(
    num_ranks: usize,
    factory: Arc<F>,
    config: RuntimeConfig,
) -> Vec<RunStats> {
    CommUniverse::run(num_ranks, move |comm| {
        run_rank(comm, factory.clone(), &config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PatchProgram, ProgramId, TaskTag, STREAM_WIRE_OVERHEAD};
    use jsweep_mesh::PatchId;
    use parking_lot::Mutex;

    /// A chain of programs 0..n: program k waits for a token from k-1,
    /// increments it, forwards to k+1. Program 0 starts with the token.
    struct ChainProgram {
        id: ProgramId,
        n: u32,
        token: Option<u64>,
        done: bool,
        log: Arc<Mutex<Vec<(u32, u64)>>>,
    }

    impl PatchProgram for ChainProgram {
        fn init(&mut self) {
            if self.id.patch.0 == 0 {
                self.token = Some(0);
            }
        }
        fn input(&mut self, _src: ProgramId, payload: Bytes) {
            self.token = Some(u64::from_le_bytes(payload[..8].try_into().unwrap()));
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.done {
                return;
            }
            let Some(tok) = self.token.take() else {
                return;
            };
            self.log.lock().push((self.id.patch.0, tok));
            self.done = true;
            ctx.work_done = 1;
            if self.id.patch.0 + 1 < self.n {
                ctx.send(Stream {
                    src: self.id,
                    dst: ProgramId::new(PatchId(self.id.patch.0 + 1), TaskTag(0)),
                    payload: Bytes::copy_from_slice(&(tok + 1).to_le_bytes()),
                });
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.token.is_none()
        }
        fn remaining_work(&self) -> u64 {
            u64::from(!self.done)
        }
        fn reset(&mut self, _epoch: &EpochInput) {
            // Re-arm for another epoch: program 0 re-seeds the token
            // in `init`-equivalent fashion.
            self.done = false;
            self.token = (self.id.patch.0 == 0).then_some(0);
        }
    }

    struct ChainFactory {
        n: u32,
        ranks: usize,
        log: Arc<Mutex<Vec<(u32, u64)>>>,
    }

    impl ProgramFactory for ChainFactory {
        type Program = ChainProgram;
        fn create(&self, id: ProgramId) -> ChainProgram {
            ChainProgram {
                id,
                n: self.n,
                token: (id.patch.0 == 0).then_some(0),
                done: false,
                log: self.log.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..self.n)
                .filter(|p| (*p as usize) % self.ranks == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % self.ranks
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    fn run_chain(n: u32, ranks: usize, workers: usize, term: TerminationKind) -> Vec<(u32, u64)> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(ChainFactory {
            n,
            ranks,
            log: log.clone(),
        });
        let stats = run_universe(
            ranks,
            factory,
            RuntimeConfig {
                num_workers: workers,
                termination: term,
                ..Default::default()
            },
        );
        let total_work: u64 = stats.iter().map(|s| s.work_done).sum();
        assert_eq!(total_work, n as u64);
        let mut out = log.lock().clone();
        out.sort_unstable();
        out
    }

    #[test]
    fn chain_single_rank_counting() {
        let log = run_chain(10, 1, 2, TerminationKind::Counting);
        assert_eq!(log, (0..10).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_multi_rank_counting() {
        let log = run_chain(20, 3, 2, TerminationKind::Counting);
        assert_eq!(log, (0..20).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_multi_rank_safra() {
        let log = run_chain(12, 2, 2, TerminationKind::Safra);
        assert_eq!(log, (0..12).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_single_worker() {
        let log = run_chain(8, 2, 1, TerminationKind::Counting);
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn stats_track_streams_and_frames() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(ChainFactory {
            n: 6,
            ranks: 2,
            log,
        });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        // Round-robin placement of a chain: every hop crosses ranks.
        let sent: u64 = stats.iter().map(|s| s.streams_sent).sum();
        let received: u64 = stats.iter().map(|s| s.streams_received).sum();
        assert_eq!(sent, 5);
        assert_eq!(received, 5);
        // A chain is latency-bound: every frame carries one stream.
        let frames: u64 = stats.iter().map(|s| s.frames_sent).sum();
        let frames_in: u64 = stats.iter().map(|s| s.frames_received).sum();
        assert_eq!(frames, 5);
        assert_eq!(frames_in, 5);
        let calls: u64 = stats.iter().map(|s| s.compute_calls).sum();
        assert!(calls >= 6);
        // Exact wire accounting: 20-byte record header + 8-byte token.
        let bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        assert_eq!(bytes, 5 * (STREAM_WIRE_OVERHEAD as u64 + 8));
    }

    /// One program on rank 0 fans a burst of streams out to rank 1 in a
    /// single compute call: aggregation must pack the burst into fewer
    /// frames than streams, with byte accounting still exact.
    struct Burst {
        id: ProgramId,
        fan: u32,
        fired: bool,
        pending: u64,
        received: Arc<Mutex<u32>>,
    }

    impl PatchProgram for Burst {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {
            *self.received.lock() += 1;
            self.pending += 1;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.id.patch.0 == 0 {
                if !self.fired {
                    self.fired = true;
                    ctx.work_done = 1;
                    for k in 0..self.fan {
                        ctx.send(Stream {
                            src: self.id,
                            dst: ProgramId::new(PatchId(1 + k), TaskTag(0)),
                            payload: Bytes::copy_from_slice(&u64::from(k).to_le_bytes()),
                        });
                    }
                }
            } else {
                // Work = inputs consumed, so accounting is exact no
                // matter how activation and delivery interleave.
                ctx.work_done = self.pending;
                self.pending = 0;
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.pending == 0
        }
        fn remaining_work(&self) -> u64 {
            self.pending
        }
    }

    struct BurstFactory {
        fan: u32,
        received: Arc<Mutex<u32>>,
    }

    impl ProgramFactory for BurstFactory {
        type Program = Burst;
        fn create(&self, id: ProgramId) -> Burst {
            Burst {
                id,
                fan: self.fan,
                fired: false,
                pending: 0,
                received: self.received.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            if rank == 0 {
                vec![ProgramId::new(PatchId(0), TaskTag(0))]
            } else {
                (0..self.fan)
                    .map(|k| ProgramId::new(PatchId(1 + k), TaskTag(0)))
                    .collect()
            }
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            usize::from(id.patch.0 != 0)
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            // Source: the one firing compute. Receivers: the one
            // stream each will consume.
            1
        }
    }

    #[test]
    fn burst_aggregates_into_fewer_frames() {
        let fan = 8u32;
        let received = Arc::new(Mutex::new(0));
        let factory = Arc::new(BurstFactory {
            fan,
            received: received.clone(),
        });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        assert_eq!(*received.lock(), fan);
        let r0 = &stats[0];
        assert_eq!(r0.streams_sent, u64::from(fan));
        // The whole burst leaves one compute call and one drain round:
        // strictly fewer frames than streams (1, with default knobs).
        assert!(
            r0.frames_sent < r0.streams_sent,
            "burst was not aggregated: {} frames for {} streams",
            r0.frames_sent,
            r0.streams_sent
        );
        assert_eq!(r0.frames_sent, 1);
        // Byte accounting is framing-independent and exact.
        assert_eq!(
            r0.bytes_sent,
            u64::from(fan) * (STREAM_WIRE_OVERHEAD as u64 + 8)
        );
        let r1 = &stats[1];
        assert_eq!(r1.streams_received, u64::from(fan));
        assert_eq!(r1.frames_received, r0.frames_sent);
    }

    #[test]
    fn burst_unbatched_knobs_restore_stream_granularity() {
        let fan = 6u32;
        let received = Arc::new(Mutex::new(0));
        let factory = Arc::new(BurstFactory {
            fan,
            received: received.clone(),
        });
        let stats = run_universe(
            2,
            factory,
            RuntimeConfig {
                max_frame_streams: 1,
                report_flush_streams: 1,
                ..Default::default()
            },
        );
        assert_eq!(*received.lock(), fan);
        let r0 = &stats[0];
        assert_eq!(r0.streams_sent, u64::from(fan));
        assert_eq!(r0.frames_sent, u64::from(fan));
        // Same bytes either way: frames add no per-frame header.
        assert_eq!(
            r0.bytes_sent,
            u64::from(fan) * (STREAM_WIRE_OVERHEAD as u64 + 8)
        );
    }

    /// Two programs that ping-pong a fixed number of times exercise
    /// reentrancy (partial computation) and reactivation.
    struct PingPong {
        id: ProgramId,
        rounds: u32,
        sent: u32,
        received: u32,
        pending: u32,
    }

    impl PatchProgram for PingPong {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {
            self.received += 1;
            self.pending += 1;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            let can_start = self.id.patch.0 == 0 && self.sent == 0;
            if can_start || self.pending > 0 {
                if self.pending > 0 {
                    self.pending -= 1;
                    ctx.work_done = 1;
                }
                if self.sent < self.rounds {
                    self.sent += 1;
                    ctx.send(Stream {
                        src: self.id,
                        dst: ProgramId::new(PatchId(1 - self.id.patch.0), TaskTag(0)),
                        payload: Bytes::new(),
                    });
                }
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.pending == 0
        }
        fn remaining_work(&self) -> u64 {
            (self.rounds - self.received) as u64
        }
        fn reset(&mut self, _epoch: &EpochInput) {
            self.sent = 0;
            self.received = 0;
            self.pending = 0;
        }
    }

    struct PingPongFactory {
        rounds: u32,
    }

    impl ProgramFactory for PingPongFactory {
        type Program = PingPong;
        fn create(&self, id: ProgramId) -> PingPong {
            PingPong {
                id,
                rounds: self.rounds,
                sent: 0,
                received: 0,
                pending: 0,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            vec![ProgramId::new(PatchId(rank as u32), TaskTag(0))]
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            self.rounds as u64
        }
    }

    #[test]
    fn ping_pong_reentrancy() {
        for term in [TerminationKind::Counting, TerminationKind::Safra] {
            let factory = Arc::new(PingPongFactory { rounds: 25 });
            let stats = run_universe(
                2,
                factory,
                RuntimeConfig {
                    num_workers: 1,
                    termination: term,
                    ..Default::default()
                },
            );
            let total: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(total, 50, "termination {term:?}");
        }
    }

    #[test]
    fn ping_pong_accounting_is_exact_across_ranks() {
        let factory = Arc::new(PingPongFactory { rounds: 25 });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        for s in &stats {
            // Every stream crosses ranks with an empty payload.
            assert_eq!(s.streams_sent, 25);
            assert_eq!(s.bytes_sent, 25 * STREAM_WIRE_OVERHEAD as u64);
            assert!(s.frames_sent >= 1);
            assert!(s.frames_sent <= s.streams_sent);
        }
        // Per-direction conservation: everything sent was received.
        assert_eq!(stats[0].streams_sent, stats[1].streams_received);
        assert_eq!(stats[1].streams_sent, stats[0].streams_received);
        assert_eq!(stats[0].frames_sent, stats[1].frames_received);
        assert_eq!(stats[1].frames_sent, stats[0].frames_received);
    }

    #[test]
    fn wall_time_recorded() {
        let factory = Arc::new(PingPongFactory { rounds: 2 });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        for s in &stats {
            assert!(s.wall_seconds > 0.0);
            assert_eq!(s.workers.len(), 2);
        }
    }
}
