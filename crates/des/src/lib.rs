//! Discrete-event simulator of the JSweep runtime.
//!
//! The paper's evaluation runs on Tianhe-II with up to 76 800 cores;
//! this reproduction runs on commodity hardware, so the scaling studies
//! (Figs. 9b, 12–17, Table I) execute on a *virtual* machine instead: a
//! discrete-event simulation that drives the **same scheduling code**
//! as the real runtime — the same subgraphs ([`jsweep_graph::Subgraph`]),
//! the same Listing-1 core ([`jsweep_graph::SweepState`]), the same
//! priorities and clustering — and charges virtual time according to a
//! calibrated [`MachineModel`] (per-vertex kernel cost, per-message
//! latency, bandwidth, master routing overhead).
//!
//! Because idle time, communication volume and pipeline fill/drain are
//! *emergent* from the DAG and the scheduler rather than assumed, the
//! simulated scaling curves preserve the paper's shape: who wins, by
//! what factor, and where efficiency falls off.
//!
//! Entry point: build a [`SweepProblem`] from a mesh + decomposition +
//! quadrature, pick a [`MachineModel`], and call [`simulate`] (or
//! [`simulate_coarse`] for the coarsened-graph replay of §V-E).

#![deny(missing_docs)]

pub mod machine;
pub mod sim;

pub use jsweep_graph::problem::{ProblemOptions, SweepProblem};
pub use machine::MachineModel;
pub use sim::{simulate, simulate_coarse, DesBreakdown, DesResult, SimOptions};
