//! Deforming structured meshes: structured connectivity, irregular
//! geometry.
//!
//! The paper's motivation (§I) singles out "deforming structured meshes"
//! as a case where KBA breaks down: the index lattice is regular but cell
//! geometry is not, so a single sweep direction no longer induces the
//! regular wavefront KBA pipelines rely on — faces tilt, and the
//! upwind/downwind classification varies from cell to cell.
//!
//! [`DeformedMesh`] jitters the vertices of a structured lattice
//! (boundary vertices stay on their boundary planes, so the domain shape
//! is preserved). Face geometry is computed from the bilinear quad
//! spanned by the four shared vertices: the area vector of a bilinear
//! patch is exactly `½ d₁ × d₂` (cross product of the diagonals), which
//! makes the two sides of every interior face agree exactly and keeps
//! each cell's face-area vectors summing to zero.

use crate::{BoundaryId, FaceInfo, Neighbor, SweepTopology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A structured-connectivity hexahedral mesh with jittered vertices.
#[derive(Debug, Clone)]
pub struct DeformedMesh {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Vertex lattice of (nx+1)(ny+1)(nz+1) points.
    vertices: Vec<[f64; 3]>,
    /// Topology generation stamp (see [`crate::next_generation`]).
    generation: u64,
}

/// For local face `f` (ordering `-x,+x,-y,+y,-z,+z` as in
/// [`crate::structured::FACE_DIRS`]), the four corner offsets
/// `(di,dj,dk)` of the face quad, in a consistent cyclic order.
const FACE_CORNERS: [[[usize; 3]; 4]; 6] = [
    [[0, 0, 0], [0, 1, 0], [0, 1, 1], [0, 0, 1]], // -x
    [[1, 0, 0], [1, 1, 0], [1, 1, 1], [1, 0, 1]], // +x
    [[0, 0, 0], [1, 0, 0], [1, 0, 1], [0, 0, 1]], // -y
    [[0, 1, 0], [1, 1, 0], [1, 1, 1], [0, 1, 1]], // +y
    [[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], // -z
    [[0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1]], // +z
];

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

impl DeformedMesh {
    /// Jitter a unit-spaced `nx × ny × nz` lattice by a fraction
    /// `amplitude` of the spacing (must be `< 0.5` to keep cells valid),
    /// using a deterministic RNG seed.
    pub fn jittered(nx: usize, ny: usize, nz: usize, amplitude: f64, seed: u64) -> DeformedMesh {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty mesh");
        assert!(
            (0.0..0.5).contains(&amplitude),
            "amplitude {amplitude} must be in [0, 0.5)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let jitter = |rng: &mut StdRng| {
            if amplitude == 0.0 {
                0.0
            } else {
                rng.gen_range(-amplitude..amplitude)
            }
        };
        let mut vertices = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1));
        for k in 0..=nz {
            for j in 0..=ny {
                for i in 0..=nx {
                    let mut p = [i as f64, j as f64, k as f64];
                    // Interior coordinates only: boundary planes stay flat.
                    if i > 0 && i < nx {
                        p[0] += jitter(&mut rng);
                    }
                    if j > 0 && j < ny {
                        p[1] += jitter(&mut rng);
                    }
                    if k > 0 && k < nz {
                        p[2] += jitter(&mut rng);
                    }
                    vertices.push(p);
                }
            }
        }
        DeformedMesh {
            nx,
            ny,
            nz,
            vertices,
            generation: crate::next_generation(),
        }
    }

    /// Extents `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    #[inline]
    fn vertex(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        self.vertices[i + (self.nx + 1) * (j + (self.ny + 1) * k)]
    }

    #[inline]
    fn cell_ijk(&self, c: usize) -> (usize, usize, usize) {
        let i = c % self.nx;
        let j = (c / self.nx) % self.ny;
        let k = c / (self.nx * self.ny);
        (i, j, k)
    }

    /// Area vector (non-unit outward-or-inward normal times area) and
    /// centroid of local face `f` of cell `c`.
    fn face_geometry(&self, c: usize, f: usize) -> ([f64; 3], [f64; 3]) {
        let (i, j, k) = self.cell_ijk(c);
        let q: Vec<[f64; 3]> = FACE_CORNERS[f]
            .iter()
            .map(|d| self.vertex(i + d[0], j + d[1], k + d[2]))
            .collect();
        let d1 = sub(q[2], q[0]);
        let d2 = sub(q[3], q[1]);
        let area_vec = cross(d1, d2).map(|x| 0.5 * x);
        let centroid = [
            (q[0][0] + q[1][0] + q[2][0] + q[3][0]) / 4.0,
            (q[0][1] + q[1][1] + q[2][1] + q[3][1]) / 4.0,
            (q[0][2] + q[1][2] + q[2][2] + q[3][2]) / 4.0,
        ];
        (area_vec, centroid)
    }

    fn neighbor_of(&self, c: usize, f: usize) -> Neighbor {
        let (i, j, k) = self.cell_ijk(c);
        let (coord, n) = match f / 2 {
            0 => (i, self.nx),
            1 => (j, self.ny),
            _ => (k, self.nz),
        };
        let step: isize = if f.is_multiple_of(2) { -1 } else { 1 };
        let target = coord as isize + step;
        if target < 0 || target as usize >= n {
            return Neighbor::Boundary(BoundaryId(f as u16));
        }
        let (mut i, mut j, mut k) = (i, j, k);
        match f / 2 {
            0 => i = target as usize,
            1 => j = target as usize,
            _ => k = target as usize,
        }
        Neighbor::Interior(i + self.nx * (j + self.ny * k))
    }
}

impl SweepTopology for DeformedMesh {
    fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn num_faces(&self, _c: usize) -> usize {
        6
    }

    fn face(&self, c: usize, f: usize) -> FaceInfo {
        let (area_vec, face_centroid) = self.face_geometry(c, f);
        let area = dot(area_vec, area_vec).sqrt();
        let mut normal = area_vec.map(|x| x / area);
        let cc = self.cell_centroid(c);
        if dot(normal, sub(face_centroid, cc)) < 0.0 {
            normal = normal.map(|x| -x);
        }
        FaceInfo {
            neighbor: self.neighbor_of(c, f),
            normal,
            area,
        }
    }

    fn cell_volume(&self, c: usize) -> f64 {
        // Divergence theorem with outward area vectors:
        // V = (1/3) Σ_f x_f · A_f.
        let cc = self.cell_centroid(c);
        let mut vol = 0.0;
        for f in 0..6 {
            let (area_vec, face_centroid) = self.face_geometry(c, f);
            let outward = if dot(area_vec, sub(face_centroid, cc)) < 0.0 {
                area_vec.map(|x| -x)
            } else {
                area_vec
            };
            vol += dot(face_centroid, outward);
        }
        vol / 3.0
    }

    fn cell_centroid(&self, c: usize) -> [f64; 3] {
        let (i, j, k) = self.cell_ijk(c);
        let mut acc = [0.0; 3];
        for dk in 0..2 {
            for dj in 0..2 {
                for di in 0..2 {
                    let v = self.vertex(i + di, j + dj, k + dk);
                    for ax in 0..3 {
                        acc[ax] += v[ax];
                    }
                }
            }
        }
        acc.map(|x| x / 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_face_closure_residual, validate_topology};

    #[test]
    fn zero_jitter_matches_unit_grid() {
        let m = DeformedMesh::jittered(3, 3, 3, 0.0, 1);
        for c in 0..m.num_cells() {
            assert!((m.cell_volume(c) - 1.0).abs() < 1e-12);
            for f in 0..6 {
                assert!((m.face(c, f).area - 1.0).abs() < 1e-12);
            }
        }
        validate_topology(&m).unwrap();
    }

    #[test]
    fn jittered_mesh_is_consistent() {
        let m = DeformedMesh::jittered(4, 3, 5, 0.3, 42);
        validate_topology(&m).unwrap();
    }

    #[test]
    fn jittered_faces_close() {
        let m = DeformedMesh::jittered(3, 3, 3, 0.35, 7);
        assert!(max_face_closure_residual(&m) < 1e-12);
    }

    #[test]
    fn total_volume_preserved() {
        // Boundary planes are flat, so jitter only redistributes volume.
        let m = DeformedMesh::jittered(4, 4, 4, 0.3, 3);
        let total: f64 = (0..m.num_cells()).map(|c| m.cell_volume(c)).sum();
        assert!((total - 64.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn jitter_makes_dependencies_irregular() {
        // For an axis direction, a regular grid has no upwind neighbours
        // across y/z faces. A jittered one must have at least one cell
        // whose upwind set differs from the regular pattern.
        let m = DeformedMesh::jittered(6, 6, 6, 0.35, 9);
        let dir = [1.0, 0.0, 0.0];
        let mut irregular = 0;
        for c in 0..m.num_cells() {
            for f in 2..6 {
                let face = m.face(c, f);
                if face.neighbor.cell().is_some() && face.flow(dir).abs() > 1e-9 {
                    irregular += 1;
                }
            }
        }
        assert!(irregular > 0, "jitter produced no tilted faces");
    }

    #[test]
    fn determinism_by_seed() {
        let a = DeformedMesh::jittered(3, 3, 3, 0.2, 5);
        let b = DeformedMesh::jittered(3, 3, 3, 0.2, 5);
        assert_eq!(a.vertices, b.vertices);
        let c = DeformedMesh::jittered(3, 3, 3, 0.2, 6);
        assert_ne!(a.vertices, c.vertices);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn excessive_amplitude_rejected() {
        DeformedMesh::jittered(2, 2, 2, 0.5, 1);
    }
}
