//! Stress and robustness tests: message storms through the simulated
//! MPI fabric, pool contention, termination under adversarial timing,
//! and machine-model sanity for the simulator.

use bytes::Bytes;
use jsweep::comm::termination::{Safra, Verdict};
use jsweep::comm::Universe;
use jsweep::prelude::*;
use std::sync::Arc;

/// Many ranks exchange a storm of randomly-addressed messages, each
/// forwarded a fixed number of hops; Safra must detect quiescence only
/// after every hop completes.
#[test]
fn safra_survives_message_storm() {
    const RANKS: usize = 5;
    const SEEDS_PER_RANK: u32 = 40;
    const HOPS: u32 = 6;
    let results = Universe::run(RANKS, |mut comm| {
        let mut safra = Safra::new(comm.rank(), comm.size());
        let mut hops_done = 0u64;
        // Seed messages carry a remaining-hop counter.
        for i in 0..SEEDS_PER_RANK {
            let to = (comm.rank() + 1 + i as usize) % comm.size();
            comm.send(to, 1, Bytes::copy_from_slice(&HOPS.to_le_bytes()))
                .unwrap();
            safra.on_send();
        }
        loop {
            while let Some(m) = comm.try_recv().unwrap() {
                match safra.on_message(&m, &comm).unwrap() {
                    Verdict::NotMine => {
                        safra.on_receive();
                        hops_done += 1;
                        let remaining = u32::from_le_bytes(m.payload[..4].try_into().unwrap());
                        if remaining > 1 {
                            // Pseudo-random forward based on content.
                            let to = (comm.rank() + remaining as usize) % comm.size();
                            comm.send(
                                to,
                                1,
                                Bytes::copy_from_slice(&(remaining - 1).to_le_bytes()),
                            )
                            .unwrap();
                            safra.on_send();
                        }
                    }
                    Verdict::Terminated => return hops_done,
                    Verdict::Continue => {}
                }
            }
            if safra.maybe_advance(true, &comm).unwrap() == Verdict::Terminated {
                return hops_done;
            }
            std::thread::yield_now();
        }
    });
    let total: u64 = results.iter().sum();
    assert_eq!(
        total,
        (RANKS as u64) * (SEEDS_PER_RANK as u64) * (HOPS as u64),
        "some hops were lost or termination fired early"
    );
}

/// A diamond-of-programs workload where one hot program receives
/// streams from many producers while workers contend for the pool.
#[test]
fn runtime_fan_in_under_contention() {
    use jsweep::core::{ComputeCtx, PatchProgram, ProgramFactory, RuntimeConfig};
    use parking_lot::Mutex;

    const PRODUCERS: u32 = 60;

    struct FanIn {
        id: ProgramId,
        received: u32,
        fired: bool,
        total: Arc<Mutex<u32>>,
    }
    impl PatchProgram for FanIn {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _p: Bytes) {
            self.received += 1;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.id.patch.0 < PRODUCERS {
                // Producer: send one stream to the sink, once.
                if !self.fired {
                    self.fired = true;
                    ctx.work_done = 1;
                    ctx.send(jsweep::core::Stream {
                        src: self.id,
                        dst: ProgramId::new(PatchId(PRODUCERS), TaskTag(0)),
                        payload: Bytes::new(),
                    });
                }
            } else {
                // Sink: account everything received so far.
                let mut t = self.total.lock();
                *t += self.received;
                ctx.work_done = self.received as u64;
                self.received = 0;
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.received == 0
        }
        fn remaining_work(&self) -> u64 {
            0
        }
    }

    struct FanInFactory {
        ranks: usize,
        total: Arc<Mutex<u32>>,
    }
    impl ProgramFactory for FanInFactory {
        type Program = FanIn;
        fn create(&self, id: ProgramId) -> FanIn {
            FanIn {
                id,
                received: 0,
                fired: false,
                total: self.total.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..=PRODUCERS)
                .filter(|p| (*p as usize) % self.ranks == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % self.ranks
        }
        fn priority(&self, id: ProgramId) -> i64 {
            // Adversarial: the sink has the lowest priority.
            -(i64::from(id.patch.0 == PRODUCERS))
        }
        fn initial_workload(&self, id: ProgramId) -> u64 {
            u64::from(id.patch.0 < PRODUCERS)
        }
    }

    for ranks in [1, 3] {
        let total = Arc::new(parking_lot::Mutex::new(0u32));
        let factory = Arc::new(FanInFactory {
            ranks,
            total: total.clone(),
        });
        let stats = jsweep::core::run_universe(
            ranks,
            factory,
            RuntimeConfig {
                num_workers: 4,
                termination: TerminationKind::Safra,
                ..Default::default()
            },
        );
        assert_eq!(*total.lock(), PRODUCERS, "ranks={ranks}");
        let work: u64 = stats.iter().map(|s| s.work_done).sum();
        assert_eq!(work, 2 * PRODUCERS as u64);
    }
}

/// Many threads race `deliver_batch` / `take` / `finish` on a sharded
/// pool: every delivered stream must be consumed exactly once — none
/// lost, none double-delivered.
#[test]
fn pool_deliver_batch_take_finish_race() {
    use jsweep::core::pool::Pool;
    use jsweep::core::{Breakdown, ComputeCtx, PatchProgram, Stream};
    use parking_lot::Mutex;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    const PRODUCERS: u64 = 3;
    const BATCHES_PER_PRODUCER: u64 = 50;
    const STREAMS_PER_BATCH: u64 = 32;
    const PROGRAMS: u32 = 64;
    const WORKERS: usize = 4;
    const TOTAL: u64 = PRODUCERS * BATCHES_PER_PRODUCER * STREAMS_PER_BATCH;

    struct Sink;
    impl PatchProgram for Sink {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {}
        fn compute(&mut self, _ctx: &mut ComputeCtx) {}
        fn vote_to_halt(&self) -> bool {
            true
        }
        fn remaining_work(&self) -> u64 {
            0
        }
    }

    let pool = Arc::new(Pool::new(WORKERS));
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let consumed = Arc::new(AtomicU64::new(0));

    let mut takers = Vec::new();
    for w in 0..WORKERS {
        let pool = pool.clone();
        let seen = seen.clone();
        let consumed = consumed.clone();
        takers.push(std::thread::spawn(move || {
            let mut bd = Breakdown::default();
            while let Some(claim) = pool.take(w, &mut bd) {
                let n = claim.pending.len() as u64;
                {
                    let mut set = seen.lock();
                    for (_src, payload) in &claim.pending {
                        let tag = u64::from_le_bytes(payload[..8].try_into().unwrap());
                        assert!(set.insert(tag), "stream {tag} delivered twice");
                    }
                }
                pool.finish(claim.id, Box::new(Sink), true);
                consumed.fetch_add(n, Ordering::SeqCst);
            }
        }));
    }

    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let pool = pool.clone();
        producers.push(std::thread::spawn(move || {
            for b in 0..BATCHES_PER_PRODUCER {
                let batch: Vec<(Stream, i64)> = (0..STREAMS_PER_BATCH)
                    .map(|k| {
                        let tag = (p * BATCHES_PER_PRODUCER + b) * STREAMS_PER_BATCH + k;
                        (
                            Stream {
                                src: ProgramId::new(PatchId(u32::MAX), TaskTag(0)),
                                dst: ProgramId::new(
                                    PatchId((tag % u64::from(PROGRAMS)) as u32),
                                    TaskTag(0),
                                ),
                                payload: Bytes::copy_from_slice(&tag.to_le_bytes()),
                            },
                            (tag % 7) as i64,
                        )
                    })
                    .collect();
                pool.deliver_batch(batch);
            }
        }));
    }
    for h in producers {
        h.join().unwrap();
    }
    // Drain: all delivered streams must surface, then takers unblock.
    while consumed.load(Ordering::SeqCst) < TOTAL {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    pool.stop();
    for h in takers {
        h.join().unwrap();
    }
    assert_eq!(consumed.load(Ordering::SeqCst), TOTAL, "streams lost");
    assert_eq!(seen.lock().len(), TOTAL as usize);
    assert!(pool.is_quiet());
}

/// Frame accounting stays exact under a storm: summed per-rank
/// `streams_sent` must equal peers' `streams_received`, frames must
/// never exceed streams, and `bytes_sent` must match the wire format
/// byte-for-byte.
#[test]
fn runtime_frame_accounting_exact_across_ranks() {
    use jsweep::core::program::STREAM_WIRE_OVERHEAD;
    use jsweep::core::{ComputeCtx, PatchProgram, ProgramFactory, RuntimeConfig};

    const N: u32 = 120;
    const RANKS: usize = 3;
    const PAYLOAD: usize = 24;

    // Every program sends one fixed-size stream to the next N/4
    // programs (lots of same-destination-rank fan-out per compute).
    struct Fan {
        id: ProgramId,
        fired: bool,
        pending: u64,
    }
    impl PatchProgram for Fan {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _p: Bytes) {
            self.pending += 1;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            ctx.work_done = self.pending;
            self.pending = 0;
            if !self.fired {
                self.fired = true;
                for k in 1..=N / 4 {
                    let dst = self.id.patch.0 + k;
                    if dst < N {
                        ctx.send(jsweep::core::Stream {
                            src: self.id,
                            dst: ProgramId::new(PatchId(dst), TaskTag(0)),
                            payload: Bytes::from(vec![0u8; PAYLOAD]),
                        });
                    }
                }
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.pending == 0
        }
        fn remaining_work(&self) -> u64 {
            self.pending
        }
    }
    struct FanFactory;
    impl ProgramFactory for FanFactory {
        type Program = Fan;
        fn create(&self, id: ProgramId) -> Fan {
            Fan {
                id,
                fired: false,
                pending: 0,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..N)
                .filter(|p| (*p as usize) % RANKS == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % RANKS
        }
        fn priority(&self, id: ProgramId) -> i64 {
            i64::from(id.patch.0)
        }
        fn initial_workload(&self, id: ProgramId) -> u64 {
            // Streams program `id` will receive: senders are the N/4
            // predecessors that exist.
            u64::from(id.patch.0.min(N / 4))
        }
    }

    let stats = jsweep::core::run_universe(
        RANKS,
        Arc::new(FanFactory),
        RuntimeConfig {
            num_workers: 2,
            termination: TerminationKind::Counting,
            ..Default::default()
        },
    );
    let sent: u64 = stats.iter().map(|s| s.streams_sent).sum();
    let received: u64 = stats.iter().map(|s| s.streams_received).sum();
    let frames_out: u64 = stats.iter().map(|s| s.frames_sent).sum();
    let frames_in: u64 = stats.iter().map(|s| s.frames_received).sum();
    let bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();
    let local: u64 = stats.iter().map(|s| s.streams_local).sum();
    // Each program p<N sends one stream to each of the N/4 successors
    // that exist; streams either cross ranks or stay local.
    let total_streams: u64 = (0..N).map(|p| u64::from((N - 1 - p).min(N / 4))).sum();
    assert_eq!(sent + local, total_streams);
    assert_eq!(sent, received, "streams lost in flight");
    assert_eq!(frames_out, frames_in, "frames lost in flight");
    assert!(frames_out <= sent);
    assert!(frames_out >= 1);
    assert_eq!(
        bytes,
        sent * (STREAM_WIRE_OVERHEAD + PAYLOAD) as u64,
        "byte accounting must be exact regardless of framing"
    );
}

/// Machine-model sanity: the simulator must react monotonically to
/// resource changes.
#[test]
fn des_model_monotonicity() {
    let mesh = StructuredMesh::unit(12, 12, 12);
    let quad = QuadratureSet::sn(2);
    let patches = jsweep::mesh::partition::decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = SweepProblem::build(
        &mesh,
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    );
    let base = MachineModel::cluster(2, 4);
    let t_base = simulate(&prob, &base, &SimOptions::default()).time;

    // Slower kernel -> slower sweep.
    let mut slow_kernel = base.clone();
    slow_kernel.t_vertex *= 10.0;
    assert!(simulate(&prob, &slow_kernel, &SimOptions::default()).time > t_base);

    // Much higher latency -> slower sweep.
    let mut high_latency = base.clone();
    high_latency.latency *= 1000.0;
    assert!(simulate(&prob, &high_latency, &SimOptions::default()).time > t_base);

    // Much lower bandwidth -> slower sweep.
    let mut thin_pipe = base.clone();
    thin_pipe.bandwidth /= 1e6;
    assert!(simulate(&prob, &thin_pipe, &SimOptions::default()).time > t_base);

    // Zero-cost network -> no slower than the base.
    let mut free_net = base.clone();
    free_net.latency = 0.0;
    free_net.t_route = 0.0;
    free_net.t_pack_per_byte = 0.0;
    assert!(simulate(&prob, &free_net, &SimOptions::default()).time <= t_base);
}

/// The threaded runtime must survive thousands of tiny programs with
/// single-stream interactions (scheduler churn).
#[test]
fn runtime_many_tiny_programs() {
    use jsweep::core::{ComputeCtx, PatchProgram, ProgramFactory, RuntimeConfig};

    const N: u32 = 2000;

    struct Hop {
        id: ProgramId,
        go: bool,
        done: bool,
    }
    impl PatchProgram for Hop {
        fn init(&mut self) {
            self.go = self.id.patch.0 == 0;
        }
        fn input(&mut self, _src: ProgramId, _p: Bytes) {
            self.go = true;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.go && !self.done {
                self.done = true;
                ctx.work_done = 1;
                if self.id.patch.0 + 1 < N {
                    ctx.send(jsweep::core::Stream {
                        src: self.id,
                        dst: ProgramId::new(PatchId(self.id.patch.0 + 1), TaskTag(0)),
                        payload: Bytes::new(),
                    });
                }
            }
        }
        fn vote_to_halt(&self) -> bool {
            true
        }
        fn remaining_work(&self) -> u64 {
            u64::from(!self.done)
        }
    }
    struct HopFactory {
        ranks: usize,
    }
    impl ProgramFactory for HopFactory {
        type Program = Hop;
        fn create(&self, id: ProgramId) -> Hop {
            Hop {
                id,
                go: false,
                done: false,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..N)
                .filter(|p| (*p as usize) % self.ranks == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % self.ranks
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    let stats = jsweep::core::run_universe(
        4,
        Arc::new(HopFactory { ranks: 4 }),
        RuntimeConfig {
            num_workers: 2,
            termination: TerminationKind::Counting,
            ..Default::default()
        },
    );
    let total: u64 = stats.iter().map(|s| s.work_done).sum();
    assert_eq!(total, N as u64);
    // The chain crosses ranks at every hop (round-robin placement).
    let sent: u64 = stats.iter().map(|s| s.streams_sent).sum();
    assert_eq!(sent, (N - 1) as u64);
}
