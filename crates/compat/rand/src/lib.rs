//! Offline, API-compatible stand-in for the subset of the [`rand`]
//! crate that jsweep uses: [`rngs::StdRng`], [`SeedableRng`] and the
//! [`Rng`] extension trait with `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic per seed, and statistically solid for mesh jitter and
//! particle sampling (cryptographic strength is explicitly a non-goal,
//! exactly as with the real `StdRng` contract).
//!
//! [`rand`]: https://docs.rs/rand

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the one method everything else is
/// derived from.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type usable as the seed of a [`SeedableRng`].
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw one uniform sample from itself.
pub trait SampleRange<T> {
    /// Draw a sample using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_unit() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_unit() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $ty
                }
            }
        )*
    };
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
