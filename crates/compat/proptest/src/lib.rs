//! Offline, API-compatible stand-in for the subset of the
//! [`proptest`] crate that jsweep's property tests use: the
//! [`proptest!`] macro, [`Strategy`] (ranges, tuples, `prop_map`),
//! [`any`], `prop::collection::vec`, [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Semantics are "pure random testing": each test runs
//! `ProptestConfig::cases` iterations with inputs drawn from a
//! deterministic per-test RNG (seeded from the test name, so failures
//! reproduce across runs). Shrinking is not implemented — on failure
//! the asserting macro panics with the usual assertion message.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a), so every test gets a distinct
    /// but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; 64 keeps `cargo test -q`
        // fast while still exercising a meaningful input spread.
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }
        )*
    };
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T` (`any::<f64>()` may produce
/// infinities and NaN, exactly like the real crate's bit-pattern
/// coverage).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises subnormals, infinities and NaN.
        f64::from_bits(rng.next_u64())
    }
}

impl Strategy for Any<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: length drawn from `size`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports property tests conventionally glob in.

    pub use crate::{any, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespace mirror of the real crate's `prop` re-export.
        pub use crate::collection;
    }
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body
/// runs `cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] — a tt-muncher over the test
/// functions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(v < 19);
        }

        #[test]
        fn collection_vec_respects_size(xs in prop::collection::vec(any::<f64>(), 0..8)) {
            prop_assert!(xs.len() < 8);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
