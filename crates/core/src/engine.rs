//! The per-rank runtime engine: master thread + worker threads (Fig. 8).
//!
//! The master owns the rank's [`Comm`] endpoint and runs the stream
//! router and progress tracker; workers execute patch-programs from the
//! shared [`Pool`]. The call [`run_rank`] embodies one rank; use
//! [`run_universe`] to run a whole simulated MPI world.

use crate::pool::Pool;
use crate::program::{pack_stream, unpack_stream, ComputeCtx, ProgramFactory, Stream};
use crate::stats::{Breakdown, Category, RunStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use jsweep_comm::termination::{Counting, Safra, Verdict};
use jsweep_comm::{Comm, Universe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which termination detector the runtime uses (§IV-C: "we support
/// both").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationKind {
    /// Workload counting — the fast path for known-total algorithms.
    Counting,
    /// Dijkstra–Safra token ring — the general protocol.
    Safra,
}

/// Runtime configuration of one rank.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads per rank (the paper reserves one core for the
    /// master and uses the rest as workers).
    pub num_workers: usize,
    /// Termination detector.
    pub termination: TerminationKind,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_workers: 2,
            termination: TerminationKind::Counting,
        }
    }
}

/// User stream messages travel under this tag.
const TAG_STREAM: u32 = 0;

/// Report a worker sends the master after each compute round.
struct Report {
    outputs: Vec<Stream>,
    work_done: u64,
}

fn worker_loop<F: ProgramFactory>(
    pool: Arc<Pool>,
    factory: Arc<F>,
    to_master: Sender<Report>,
) -> (Breakdown, u64) {
    let mut bd = Breakdown::default();
    let mut compute_calls = 0u64;
    while let Some(claim) = pool.take(&mut bd) {
        let mut program = match claim.program {
            Some(p) => p,
            None => bd.timed(Category::Other, || {
                Box::new(factory.create(claim.id)) as Box<dyn crate::program::PatchProgram>
            }),
        };
        if !claim.initialized {
            bd.timed(Category::Other, || program.init());
        }
        bd.timed(Category::Input, || {
            for (src, payload) in claim.pending {
                program.input(src, payload);
            }
        });
        let mut ctx = ComputeCtx::default();
        let t0 = Instant::now();
        program.compute(&mut ctx);
        let dt = t0.elapsed().as_secs_f64();
        compute_calls += 1;
        bd.add(Category::Kernel, ctx.kernel_seconds);
        bd.add(Category::GraphOp, (dt - ctx.kernel_seconds).max(0.0));
        let halted = program.vote_to_halt();
        if !ctx.out.is_empty() || ctx.work_done > 0 {
            bd.timed(Category::Output, || {
                let _ = to_master.send(Report {
                    outputs: ctx.out,
                    work_done: ctx.work_done,
                });
            });
        }
        pool.finish(claim.id, program, halted);
    }
    (bd, compute_calls)
}

/// Run one rank of a patch-centric data-driven computation to global
/// termination. Returns the rank's [`RunStats`].
pub fn run_rank<F: ProgramFactory>(
    mut comm: Comm,
    factory: Arc<F>,
    config: &RuntimeConfig,
) -> RunStats {
    assert!(config.num_workers > 0, "need at least one worker");
    let t_start = Instant::now();
    let rank = comm.rank();
    let size = comm.size();
    let pool = Arc::new(Pool::new());

    // Progress tracking: local committed workload.
    let local_ids = factory.programs_on_rank(rank);
    let total_work: u64 = local_ids
        .iter()
        .map(|&id| factory.initial_workload(id))
        .sum();
    let mut work_done = 0u64;

    // All patch-programs start active (§III-A).
    for &id in &local_ids {
        pool.activate(id, factory.priority(id));
    }

    // Workers.
    let (to_master, from_workers): (Sender<Report>, Receiver<Report>) = unbounded();
    let mut handles = Vec::with_capacity(config.num_workers);
    for w in 0..config.num_workers {
        let pool = pool.clone();
        let factory = factory.clone();
        let tx = to_master.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("rank-{rank}-worker-{w}"))
                .spawn(move || worker_loop(pool, factory, tx))
                .expect("spawn worker"),
        );
    }
    drop(to_master);

    let mut stats = RunStats {
        rank,
        ..Default::default()
    };
    let mut master = Breakdown::default();
    let mut safra = Safra::new(rank, size);
    let mut counting = Counting::new(rank, size);

    'main: loop {
        let mut progress = false;

        // Drain worker reports: route streams, track progress.
        while let Ok(report) = from_workers.try_recv() {
            progress = true;
            work_done += report.work_done;
            stats.work_done += report.work_done;
            for stream in report.outputs {
                let dst_rank = master.timed(Category::Route, || factory.rank_of(stream.dst));
                if dst_rank == rank {
                    master.timed(Category::Route, || {
                        let prio = factory.priority(stream.dst);
                        pool.deliver(stream, prio);
                    });
                    stats.streams_local += 1;
                } else {
                    let packed = master.timed(Category::Pack, || pack_stream(&stream));
                    stats.bytes_sent += packed.len() as u64;
                    master.timed(Category::Comm, || comm.send(dst_rank, TAG_STREAM, packed));
                    safra.on_send();
                    stats.streams_sent += 1;
                }
            }
        }

        // Drain network messages: incoming streams + protocol traffic.
        while let Some(msg) = master.timed(Category::Comm, || comm.try_recv()) {
            progress = true;
            match msg.tag {
                TAG_STREAM => {
                    safra.on_receive();
                    let stream = master.timed(Category::Unpack, || unpack_stream(msg.payload));
                    master.timed(Category::Route, || {
                        let prio = factory.priority(stream.dst);
                        pool.deliver(stream, prio);
                    });
                    stats.streams_received += 1;
                }
                _ => {
                    let v = match config.termination {
                        TerminationKind::Counting => counting.on_message(&msg, &comm),
                        TerminationKind::Safra => safra.on_message(&msg, &comm),
                    };
                    if v == Verdict::Terminated {
                        break 'main;
                    }
                }
            }
        }

        // Termination detection.
        match config.termination {
            TerminationKind::Counting => {
                debug_assert!(
                    work_done <= total_work,
                    "programs over-reported work ({work_done} > committed {total_work})"
                );
                let remaining = total_work.saturating_sub(work_done);
                if counting.maybe_report(remaining, &comm) == Verdict::Terminated {
                    break 'main;
                }
            }
            TerminationKind::Safra => {
                let idle = !progress && pool.is_quiet();
                if safra.maybe_advance(idle, &comm) == Verdict::Terminated {
                    break 'main;
                }
            }
        }

        if !progress {
            // Nothing to do right now: park briefly on the worker
            // channel (the latency-critical path).
            let t0 = Instant::now();
            match from_workers.recv_timeout(Duration::from_micros(200)) {
                Ok(report) => {
                    master.add(Category::Idle, t0.elapsed().as_secs_f64());
                    work_done += report.work_done;
                    stats.work_done += report.work_done;
                    for stream in report.outputs {
                        let dst_rank = factory.rank_of(stream.dst);
                        if dst_rank == rank {
                            let prio = factory.priority(stream.dst);
                            pool.deliver(stream, prio);
                            stats.streams_local += 1;
                        } else {
                            let packed = master.timed(Category::Pack, || pack_stream(&stream));
                            stats.bytes_sent += packed.len() as u64;
                            master
                                .timed(Category::Comm, || comm.send(dst_rank, TAG_STREAM, packed));
                            safra.on_send();
                            stats.streams_sent += 1;
                        }
                    }
                }
                Err(_) => {
                    master.add(Category::Idle, t0.elapsed().as_secs_f64());
                }
            }
        }
    }

    // Shut workers down and collect their breakdowns.
    pool.stop();
    for h in handles {
        let (bd, calls) = h.join().expect("worker panicked");
        stats.workers.push(bd);
        stats.compute_calls += calls;
    }
    stats.master = master;
    stats.wall_seconds = t_start.elapsed().as_secs_f64();
    stats
}

/// Run a full simulated-MPI computation: `num_ranks` ranks, each with
/// `config.num_workers` workers, sharing one program factory.
pub fn run_universe<F: ProgramFactory>(
    num_ranks: usize,
    factory: Arc<F>,
    config: RuntimeConfig,
) -> Vec<RunStats> {
    Universe::run(num_ranks, move |comm| {
        run_rank(comm, factory.clone(), &config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PatchProgram, ProgramId, TaskTag};
    use bytes::Bytes;
    use jsweep_mesh::PatchId;
    use parking_lot::Mutex;

    /// A chain of programs 0..n: program k waits for a token from k-1,
    /// increments it, forwards to k+1. Program 0 starts with the token.
    struct ChainProgram {
        id: ProgramId,
        n: u32,
        token: Option<u64>,
        done: bool,
        log: Arc<Mutex<Vec<(u32, u64)>>>,
    }

    impl PatchProgram for ChainProgram {
        fn init(&mut self) {
            if self.id.patch.0 == 0 {
                self.token = Some(0);
            }
        }
        fn input(&mut self, _src: ProgramId, payload: Bytes) {
            self.token = Some(u64::from_le_bytes(payload[..8].try_into().unwrap()));
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.done {
                return;
            }
            let Some(tok) = self.token.take() else {
                return;
            };
            self.log.lock().push((self.id.patch.0, tok));
            self.done = true;
            ctx.work_done = 1;
            if self.id.patch.0 + 1 < self.n {
                ctx.send(Stream {
                    src: self.id,
                    dst: ProgramId::new(PatchId(self.id.patch.0 + 1), TaskTag(0)),
                    payload: Bytes::copy_from_slice(&(tok + 1).to_le_bytes()),
                });
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.token.is_none()
        }
        fn remaining_work(&self) -> u64 {
            u64::from(!self.done)
        }
    }

    struct ChainFactory {
        n: u32,
        ranks: usize,
        log: Arc<Mutex<Vec<(u32, u64)>>>,
    }

    impl ProgramFactory for ChainFactory {
        type Program = ChainProgram;
        fn create(&self, id: ProgramId) -> ChainProgram {
            ChainProgram {
                id,
                n: self.n,
                token: None,
                done: false,
                log: self.log.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..self.n)
                .filter(|p| (*p as usize) % self.ranks == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % self.ranks
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    fn run_chain(n: u32, ranks: usize, workers: usize, term: TerminationKind) -> Vec<(u32, u64)> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(ChainFactory {
            n,
            ranks,
            log: log.clone(),
        });
        let stats = run_universe(
            ranks,
            factory,
            RuntimeConfig {
                num_workers: workers,
                termination: term,
            },
        );
        let total_work: u64 = stats.iter().map(|s| s.work_done).sum();
        assert_eq!(total_work, n as u64);
        let mut out = log.lock().clone();
        out.sort_unstable();
        out
    }

    #[test]
    fn chain_single_rank_counting() {
        let log = run_chain(10, 1, 2, TerminationKind::Counting);
        assert_eq!(log, (0..10).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_multi_rank_counting() {
        let log = run_chain(20, 3, 2, TerminationKind::Counting);
        assert_eq!(log, (0..20).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_multi_rank_safra() {
        let log = run_chain(12, 2, 2, TerminationKind::Safra);
        assert_eq!(log, (0..12).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_single_worker() {
        let log = run_chain(8, 2, 1, TerminationKind::Counting);
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn stats_track_streams() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(ChainFactory {
            n: 6,
            ranks: 2,
            log,
        });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        // Round-robin placement of a chain: every hop crosses ranks.
        let sent: u64 = stats.iter().map(|s| s.streams_sent).sum();
        let received: u64 = stats.iter().map(|s| s.streams_received).sum();
        assert_eq!(sent, 5);
        assert_eq!(received, 5);
        let calls: u64 = stats.iter().map(|s| s.compute_calls).sum();
        assert!(calls >= 6);
        let bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        assert_eq!(bytes, 5 * (16 + 8));
    }

    /// Two programs that ping-pong a fixed number of times exercise
    /// reentrancy (partial computation) and reactivation.
    struct PingPong {
        id: ProgramId,
        rounds: u32,
        sent: u32,
        received: u32,
        pending: u32,
    }

    impl PatchProgram for PingPong {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {
            self.received += 1;
            self.pending += 1;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            let can_start = self.id.patch.0 == 0 && self.sent == 0;
            if can_start || self.pending > 0 {
                if self.pending > 0 {
                    self.pending -= 1;
                    ctx.work_done = 1;
                }
                if self.sent < self.rounds {
                    self.sent += 1;
                    ctx.send(Stream {
                        src: self.id,
                        dst: ProgramId::new(PatchId(1 - self.id.patch.0), TaskTag(0)),
                        payload: Bytes::new(),
                    });
                }
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.pending == 0
        }
        fn remaining_work(&self) -> u64 {
            (self.rounds - self.received) as u64
        }
    }

    struct PingPongFactory {
        rounds: u32,
    }

    impl ProgramFactory for PingPongFactory {
        type Program = PingPong;
        fn create(&self, id: ProgramId) -> PingPong {
            PingPong {
                id,
                rounds: self.rounds,
                sent: 0,
                received: 0,
                pending: 0,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            vec![ProgramId::new(PatchId(rank as u32), TaskTag(0))]
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            self.rounds as u64
        }
    }

    #[test]
    fn ping_pong_reentrancy() {
        for term in [TerminationKind::Counting, TerminationKind::Safra] {
            let factory = Arc::new(PingPongFactory { rounds: 25 });
            let stats = run_universe(
                2,
                factory,
                RuntimeConfig {
                    num_workers: 1,
                    termination: term,
                },
            );
            let total: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(total, 50, "termination {term:?}");
        }
    }

    #[test]
    fn wall_time_recorded() {
        let factory = Arc::new(PingPongFactory { rounds: 2 });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        for s in &stats {
            assert!(s.wall_seconds > 0.0);
            assert_eq!(s.workers.len(), 2);
        }
    }
}
