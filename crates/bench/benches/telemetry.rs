//! Telemetry overhead benchmark: what span recording costs a real
//! solve.
//!
//! Three variants of the same 8³-cell, 2-rank fine-path solve, all in
//! one `--features telemetry` binary:
//!
//! - **detached** — the default [`TelemetryHandle`]: hooks compiled in
//!   but pointing nowhere. The baseline.
//! - **disarmed** — a [`Telemetry`] attached but never armed: every
//!   hook pays one relaxed atomic load and nothing else.
//! - **armed** — recording live: every claim/compute/pack/route span
//!   lands in a lock-free lane ring and epoch boundaries feed the
//!   metrics registry.
//!
//! The acceptance bars (full mode only): armed overhead under 5% of
//! the detached baseline, and bit-identical flux across all three
//! variants — recording must never change physics. The compiled-out
//! configuration (no `telemetry` feature at all) is covered by the
//! `universe` bench baseline staying put; this bench cannot measure it
//! from inside a feature-on binary.
//!
//! A machine-readable baseline is written to `BENCH_telemetry.json` at
//! the workspace root (the CI `obs` job checks presence after the
//! `--test` smoke pass). Without the `telemetry` feature the bench is
//! a no-op so `cargo bench` of the whole workspace stays green.

#[cfg(feature = "telemetry")]
mod run {
    use jsweep_bench::setups::{replay_scenario, ReplayScenario};
    use jsweep_core::telemetry::{obs::Telemetry, TelemetryHandle};
    use jsweep_transport::{solve_parallel, SnSolution};
    use std::sync::Arc;
    use std::time::Instant;

    const N: usize = 8;
    const RANKS: usize = 2;
    /// Enough iterations that sweep compute dominates the one-off
    /// universe launch: thread spawn/join jitter is several percent of
    /// a short solve and would drown the effect being measured.
    const ITERATIONS: usize = 160;
    const ARMED_BAR_PCT: f64 = 5.0;

    fn solve_with(sc: &ReplayScenario, telemetry: TelemetryHandle) -> SnSolution {
        let mut config = sc.config.clone();
        // Fine path every iteration: the hot hooks (claim, compute,
        // pack, route) all fire, so this is the worst case for
        // recording overhead.
        config.coarsen = false;
        config.telemetry = telemetry;
        solve_parallel(
            sc.mesh.clone(),
            sc.problem.clone(),
            &sc.quad,
            sc.materials.clone(),
            &config,
        )
    }

    struct Numbers {
        detached_s: f64,
        disarmed_s: f64,
        armed_s: f64,
        events_recorded: u64,
        events_dropped: u64,
    }

    impl Numbers {
        fn disarmed_pct(&self) -> f64 {
            (self.disarmed_s / self.detached_s - 1.0) * 100.0
        }
        fn armed_pct(&self) -> f64 {
            (self.armed_s / self.detached_s - 1.0) * 100.0
        }
    }

    /// Best-of-`runs` wall time per variant. The variant order rotates
    /// every round: clock boost and thermal drift systematically favor
    /// whichever solve runs first after a lull, so a fixed order would
    /// bias the comparison far more than the effect being measured.
    fn measure(runs: usize) -> Numbers {
        let sc = replay_scenario(N, 4, RANKS, ITERATIONS, 16);
        let golden = solve_with(&sc, TelemetryHandle::default());
        let mut best = [f64::INFINITY; 3];
        let mut events_recorded = 0;
        let mut events_dropped = 0;
        for round in 0..runs {
            for k in 0..3 {
                match (round + k) % 3 {
                    0 => {
                        let t = Instant::now();
                        let sol = solve_with(&sc, TelemetryHandle::default());
                        best[0] = best[0].min(t.elapsed().as_secs_f64());
                        assert_eq!(sol.phi, golden.phi, "detached flux mismatch");
                    }
                    1 => {
                        let idle = Arc::new(Telemetry::new());
                        let t = Instant::now();
                        let sol = solve_with(&sc, TelemetryHandle::attach(idle));
                        best[1] = best[1].min(t.elapsed().as_secs_f64());
                        assert_eq!(sol.phi, golden.phi, "disarmed flux mismatch");
                    }
                    _ => {
                        let live = Arc::new(Telemetry::new());
                        live.arm();
                        let t = Instant::now();
                        let sol = solve_with(&sc, TelemetryHandle::attach(live.clone()));
                        best[2] = best[2].min(t.elapsed().as_secs_f64());
                        assert_eq!(sol.phi, golden.phi, "armed flux mismatch");
                        let lanes = live.snapshot();
                        events_recorded = lanes.iter().map(|l| l.events.len() as u64).sum();
                        events_dropped = lanes.iter().map(|l| l.dropped).sum();
                        assert!(events_recorded > 0, "armed run recorded nothing");
                    }
                }
            }
        }
        Numbers {
            detached_s: best[0],
            disarmed_s: best[1],
            armed_s: best[2],
            events_recorded,
            events_dropped,
        }
    }

    pub fn main() {
        let test_mode = std::env::args().any(|a| a == "--test");
        // Oversubscribed boxes (CI runs this on a single core) need
        // many samples before best-of converges past scheduler noise.
        let runs = if test_mode { 1 } else { 10 };
        let n = measure(runs);

        println!(
            "telemetry ({}^3 cells, {} ranks, {} iterations): detached {:>8.3} ms | disarmed {:>8.3} ms ({:+.2}%) | armed {:>8.3} ms ({:+.2}%) | {} events ({} dropped)",
            N,
            RANKS,
            ITERATIONS,
            n.detached_s * 1e3,
            n.disarmed_s * 1e3,
            n.disarmed_pct(),
            n.armed_s * 1e3,
            n.armed_pct(),
            n.events_recorded,
            n.events_dropped,
        );

        // Only enforced in full mode (best-of-5); a single smoke
        // sample on a loaded CI core would flake.
        if !test_mode {
            assert!(
                n.armed_pct() < ARMED_BAR_PCT,
                "armed telemetry overhead {:.2}% exceeds the {ARMED_BAR_PCT}% bar",
                n.armed_pct()
            );
        }

        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"telemetry\",\n",
                "  \"mode\": \"{mode}\",\n",
                "  \"config\": {{\n",
                "    \"cells\": {cells},\n",
                "    \"ranks\": {ranks},\n",
                "    \"workers_per_rank\": 2,\n",
                "    \"iterations\": {iters},\n",
                "    \"grain\": 16\n",
                "  }},\n",
                "  \"detached_seconds\": {det:.6},\n",
                "  \"disarmed_seconds\": {dis:.6},\n",
                "  \"armed_seconds\": {arm:.6},\n",
                "  \"disarmed_overhead_pct\": {disp:.3},\n",
                "  \"armed_overhead_pct\": {armp:.3},\n",
                "  \"armed_overhead_bar_pct\": {bar:.1},\n",
                "  \"events_recorded\": {ev},\n",
                "  \"events_dropped\": {drop},\n",
                "  \"phi_bit_identical\": true\n",
                "}}\n"
            ),
            mode = if test_mode { "test" } else { "full" },
            cells = N * N * N,
            ranks = RANKS,
            iters = ITERATIONS,
            det = n.detached_s,
            dis = n.disarmed_s,
            arm = n.armed_s,
            disp = n.disarmed_pct(),
            armp = n.armed_pct(),
            bar = ARMED_BAR_PCT,
            ev = n.events_recorded,
            drop = n.events_dropped,
        );
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_telemetry.json");
        if test_mode && out.exists() {
            // Smoke numbers are not a baseline: keep the committed
            // full-mode file, only prove the bench still runs.
            println!("test mode: committed baseline left in place");
        } else {
            std::fs::write(&out, json).expect("write BENCH_telemetry.json");
            println!("baseline written to {}", out.display());
        }
    }
}

#[cfg(feature = "telemetry")]
fn main() {
    run::main();
}

#[cfg(not(feature = "telemetry"))]
fn main() {
    println!("telemetry bench skipped: rebuild with --features telemetry");
}
