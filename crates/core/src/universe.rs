//! The persistent sweep universe: a resident runtime that lives for a
//! whole multi-epoch computation.
//!
//! [`run_universe`](crate::run_universe) pays a full spawn/teardown per
//! call: rank threads, worker threads, pool, route table and every
//! patch-program are built, run to quiescence and dropped. That is the
//! right shape for a single sweep — and pure overhead for iterative
//! workloads (source iterations, time steps, eigenvalue loops, AMR
//! cycles) that run the *same* program topology dozens of times with
//! only the input data changing.
//!
//! A [`Universe`] keeps the whole world resident instead:
//!
//! * **launch** — rank threads, workers, pools and master routing
//!   state are created once ([`Universe::launch`]);
//! * **epoch** — each [`Universe::run_epoch`] call re-activates every
//!   program, runs the data-driven computation to distributed
//!   termination (either detector) and returns per-rank [`RunStats`];
//!   programs persist across epochs and are re-armed in place through
//!   [`PatchProgram::reset`](crate::PatchProgram::reset) with the
//!   caller's opaque epoch input — no reallocation of their buffers;
//! * **shutdown** — [`Universe::shutdown`] (or drop) stops the pools
//!   and joins every thread.
//!
//! Epochs are separated by a two-barrier fence on the simulated MPI
//! world, so termination of epoch `k` is globally observed before any
//! rank starts epoch `k+1` — streams can never bleed between epochs.

use crate::engine::{Rank, RuntimeConfig};
use crate::fault::{panic_message, EpochFault};
use crate::program::{EpochInput, ProgramFactory};
use crate::stats::RunStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use jsweep_comm::socket::SocketUniverse;
use jsweep_comm::{Comm, TransportKind, Universe as CommUniverse};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Builds the connected [`Comm`] world a universe launches its ranks
/// over, in rank order. Called once per launch *and once per
/// [`Universe::relaunch`]* — a relaunched universe must get fresh
/// endpoints (a socket world's old connections carry death residue),
/// which is why the fabric is a factory rather than a `Vec<Comm>`.
pub type CommFabric = Arc<dyn Fn(usize) -> Vec<Comm> + Send + Sync>;

/// The [`CommFabric`] for a built-in transport: crossbeam channels for
/// [`TransportKind::Thread`], a UNIX-domain-socket world (still one
/// process here — rank *processes* use `SpmdRank` + `SocketUniverse::
/// connect` instead) for [`TransportKind::Socket`].
pub fn fabric_for(kind: TransportKind) -> CommFabric {
    match kind {
        TransportKind::Thread => Arc::new(CommUniverse::endpoints),
        TransportKind::Socket => Arc::new(SocketUniverse::endpoints),
    }
}

/// Per-epoch overrides of the worker batching knobs (`None` keeps the
/// previous value). Lets one resident universe run a recording epoch
/// with fine-path batching and replay epochs with replay-tuned
/// batching, matching the per-mode `RuntimeConfig`s the respawning
/// solver used.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochTuning {
    /// Override for [`RuntimeConfig::report_flush_streams`].
    pub report_flush_streams: Option<usize>,
    /// Override for [`RuntimeConfig::claim_batch`].
    pub claim_batch: Option<usize>,
    /// Span id stamped on this epoch's trace events (`0` = none). A
    /// session driver assigns each request a span id and passes it
    /// down here, so a ticket's epochs can be located in an exported
    /// Chrome trace. Inert unless the `telemetry` feature is on and
    /// recording is armed.
    pub span: u64,
}

enum Cmd {
    Epoch(Arc<EpochInput>, EpochTuning),
    Shutdown,
}

struct RankHandle {
    cmd: Sender<Cmd>,
    stats: Receiver<Result<RunStats, EpochFault>>,
    join: Option<JoinHandle<()>>,
}

/// A resident simulated-MPI world: `num_ranks` rank threads (each with
/// its master state and worker threads) that stay alive across any
/// number of epochs. See the [module docs](self) for the lifecycle.
pub struct Universe {
    ranks: Vec<RankHandle>,
    /// Respawns a fresh set of rank threads from the original factory
    /// and config — the machinery behind [`Universe::relaunch`].
    spawner: Box<dyn Fn() -> Vec<RankHandle> + Send>,
    epochs_run: u64,
    /// Set when an epoch faulted; the universe refuses further epochs
    /// until [`Universe::relaunch`].
    faulted: Option<EpochFault>,
}

impl Universe {
    /// Spawn a resident world of `num_ranks` ranks sharing `factory`.
    ///
    /// Programs created during the first epoch come straight from the
    /// factory — the factory's initial state *is* the first epoch's
    /// input. From the second epoch on, every resident (and every
    /// late-materialising) program is re-armed via
    /// [`PatchProgram::reset`](crate::PatchProgram::reset) with the
    /// input passed to [`Universe::run_epoch`].
    pub fn launch<F: ProgramFactory>(
        num_ranks: usize,
        factory: Arc<F>,
        config: RuntimeConfig,
    ) -> Universe {
        Universe::launch_with_fabric(
            num_ranks,
            factory,
            config,
            fabric_for(TransportKind::Thread),
        )
    }

    /// [`Universe::launch`] over an explicit transport fabric. The
    /// fabric is re-invoked on every [`Universe::relaunch`], so each
    /// incarnation of the world gets fresh endpoints.
    pub fn launch_with_fabric<F: ProgramFactory>(
        num_ranks: usize,
        factory: Arc<F>,
        config: RuntimeConfig,
        fabric: CommFabric,
    ) -> Universe {
        let spawner = Box::new(move || {
            let endpoints = fabric(num_ranks);
            assert_eq!(endpoints.len(), num_ranks, "fabric world size mismatch");
            Universe::spawn_ranks(endpoints, factory.clone(), config.clone())
        });
        let ranks = spawner();
        Universe {
            ranks,
            spawner,
            epochs_run: 0,
            faulted: None,
        }
    }

    fn spawn_ranks<F: ProgramFactory>(
        endpoints: Vec<Comm>,
        factory: Arc<F>,
        config: RuntimeConfig,
    ) -> Vec<RankHandle> {
        endpoints
            .into_iter()
            .map(|comm| {
                let (cmd_tx, cmd_rx) = unbounded::<Cmd>();
                let (stats_tx, stats_rx) = unbounded::<Result<RunStats, EpochFault>>();
                let factory = factory.clone();
                let config = config.clone();
                let rank_id = comm.rank();
                let join = std::thread::Builder::new()
                    .name(format!("universe-rank-{rank_id}"))
                    .spawn(move || {
                        let mut rank = Rank::launch(comm, factory, &config);
                        while let Ok(cmd) = cmd_rx.recv() {
                            match cmd {
                                Cmd::Epoch(input, tuning) => {
                                    // A faulted epoch sends `Err` and
                                    // keeps the thread alive: the rank
                                    // still answers `Shutdown` (or is
                                    // retired by a relaunch); it just
                                    // never runs another epoch.
                                    let result = rank.run_epoch(&input, tuning);
                                    if stats_tx.send(result).is_err() {
                                        break;
                                    }
                                }
                                Cmd::Shutdown => break,
                            }
                        }
                        rank.shutdown();
                    })
                    .expect("spawn universe rank thread");
                RankHandle {
                    cmd: cmd_tx,
                    stats: stats_rx,
                    join: Some(join),
                }
            })
            .collect()
    }

    /// Number of resident ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Epochs completed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// The fault that poisoned this universe, if any. While set,
    /// [`Universe::run_epoch`] returns this fault without running;
    /// [`Universe::relaunch`] clears it.
    pub fn fault(&self) -> Option<&EpochFault> {
        self.faulted.as_ref()
    }

    /// Run one epoch to global termination on every rank; returns the
    /// per-rank [`RunStats`] in rank order.
    ///
    /// `input` is shared with every rank and handed to each resident
    /// program's [`PatchProgram::reset`](crate::PatchProgram::reset)
    /// before the epoch's activation (epochs ≥ 2; the first epoch runs
    /// factory-fresh programs as-is). Epochs with no input use
    /// `Arc::new(())`.
    ///
    /// `Err` means the epoch was poisoned — a contained program panic,
    /// a watchdog stall, or a rank-thread death — and the universe is
    /// now faulted: further `run_epoch` calls return the same fault
    /// without running until [`Universe::relaunch`] respawns the
    /// world.
    pub fn run_epoch(&mut self, input: Arc<EpochInput>) -> Result<Vec<RunStats>, EpochFault> {
        self.run_epoch_tuned(input, EpochTuning::default())
    }

    /// [`Universe::run_epoch`] with per-epoch batching-knob overrides.
    pub fn run_epoch_tuned(
        &mut self,
        input: Arc<EpochInput>,
        tuning: EpochTuning,
    ) -> Result<Vec<RunStats>, EpochFault> {
        if let Some(f) = &self.faulted {
            return Err(f.clone());
        }
        for i in 0..self.ranks.len() {
            if self.ranks[i]
                .cmd
                .send(Cmd::Epoch(input.clone(), tuning))
                .is_err()
            {
                // The rank thread is gone before shutdown — an engine
                // bug, contained as a fault with the thread's panic
                // payload (joining a vanished thread is immediate).
                let fault = self.rank_death(i, "exited before shutdown");
                self.faulted = Some(fault.clone());
                return Err(fault);
            }
        }
        let raw: Vec<Option<Result<RunStats, EpochFault>>> =
            self.ranks.iter().map(|r| r.stats.recv().ok()).collect();
        let mut results: Vec<Result<RunStats, EpochFault>> = Vec::with_capacity(raw.len());
        for (i, recvd) in raw.into_iter().enumerate() {
            results.push(match recvd {
                Some(result) => result,
                None => Err(self.rank_death(i, "died during the epoch")),
            });
        }
        // Deterministic fault choice when several ranks report one
        // (the origin's broadcast means its peers usually return the
        // *same* fault): the lowest-ranked error wins.
        if let Some(fault) = results.iter().filter_map(|r| r.as_ref().err()).next() {
            let fault = fault.clone();
            self.faulted = Some(fault.clone());
            return Err(fault);
        }
        self.epochs_run += 1;
        Ok(results.into_iter().map(|r| r.expect("no errs")).collect())
    }

    /// Describe rank `i`'s thread death as a fault, harvesting its
    /// panic payload (the thread is already gone, so the join cannot
    /// block).
    fn rank_death(&mut self, i: usize, what: &str) -> EpochFault {
        let payload = match self.ranks[i].join.take().map(|j| j.join()) {
            Some(Err(e)) => format!("rank thread {what}: {}", panic_message(e.as_ref())),
            _ => format!("rank thread {what}"),
        };
        EpochFault {
            rank: i,
            worker: 0,
            program: None,
            payload,
            kind: crate::fault::FaultKind::RankDeath,
        }
    }

    /// Retire every rank thread and respawn a fresh world from the
    /// original factory and config, clearing the fault. The relaunched
    /// universe starts from factory-fresh program state — exactly like
    /// a first epoch — on fresh comm endpoints, so no poisoned pool
    /// state, in-flight frame or abort residue survives. Anything
    /// keyed on the *mesh generation* (coarse plans in a shared
    /// `PlanCache`, in particular) remains valid: relaunching changes
    /// the runtime instance, not the problem (see `docs/replay.md`).
    pub fn relaunch(&mut self) {
        self.shutdown();
        self.ranks = (self.spawner)();
        self.faulted = None;
    }

    /// Stop every rank: pools stop, workers and rank threads join.
    /// Idempotent; also invoked on drop, so an explicit call is only
    /// needed to observe thread panics eagerly.
    ///
    /// # Panics
    ///
    /// If a rank thread itself panicked (an engine bug — program
    /// panics are contained as epoch faults and do not kill rank
    /// threads), this panics with the rank id, the universe's epoch
    /// count and the thread's panic payload — after joining the
    /// remaining ranks, so no thread is leaked behind the abort.
    pub fn shutdown(&mut self) {
        for r in &self.ranks {
            // Ignore a closed channel: the rank already exited.
            let _ = r.cmd.send(Cmd::Shutdown);
        }
        let epoch = self.epochs_run;
        let mut failures: Vec<String> = Vec::new();
        for (i, r) in self.ranks.iter_mut().enumerate() {
            if let Some(join) = r.join.take() {
                if let Err(e) = join.join() {
                    failures.push(format!(
                        "rank {i} panicked (universe at epoch {epoch}): {}",
                        panic_message(e.as_ref())
                    ));
                }
            }
        }
        if !failures.is_empty() {
            panic!("universe shutdown: {}", failures.join("; "));
        }
    }
}

impl Drop for Universe {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Already unwinding: shut down without risking a double
            // panic. Rank threads still get a `Shutdown` and a join —
            // their panic payloads (if any) are swallowed here, since
            // the unwind in progress is the error being reported — so
            // dropping mid-unwind leaks no threads.
            for r in &self.ranks {
                let _ = r.cmd.send(Cmd::Shutdown);
            }
            for r in &mut self.ranks {
                if let Some(join) = r.join.take() {
                    let _ = join.join();
                }
            }
            return;
        }
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ComputeCtx, PatchProgram, ProgramId, Stream, TaskTag};
    use crate::TerminationKind;
    use bytes::Bytes;
    use jsweep_mesh::PatchId;
    use parking_lot::Mutex;

    /// Epoch-aware accumulator ring: each epoch, every program adds the
    /// epoch's offset (the downcast epoch input) to a running sum and
    /// forwards a token around the ring once. Exercises reset, the
    /// fence, and per-epoch stats isolation.
    struct RingProgram {
        id: ProgramId,
        n: u32,
        offset: u64,
        token: Option<u64>,
        fired: bool,
        sums: Arc<Mutex<Vec<u64>>>,
    }

    impl PatchProgram for RingProgram {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, payload: Bytes) {
            self.token = Some(u64::from_le_bytes(payload[..8].try_into().unwrap()));
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            let starts = self.id.patch.0 == 0 && !self.fired;
            if starts {
                self.token = Some(0);
            }
            let Some(tok) = self.token.take() else {
                return;
            };
            if self.fired {
                return;
            }
            self.fired = true;
            ctx.work_done = 1;
            self.sums.lock()[self.id.patch.0 as usize] += tok + self.offset;
            if self.id.patch.0 + 1 < self.n {
                ctx.send(Stream {
                    src: self.id,
                    dst: ProgramId::new(PatchId(self.id.patch.0 + 1), TaskTag(0)),
                    payload: Bytes::copy_from_slice(&(tok + 1).to_le_bytes()),
                });
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.token.is_none()
        }
        fn remaining_work(&self) -> u64 {
            u64::from(!self.fired)
        }
        fn reset(&mut self, epoch: &crate::EpochInput) {
            let &offset = epoch.downcast_ref::<u64>().expect("ring epoch input");
            self.offset = offset;
            self.fired = false;
            self.token = None;
        }
    }

    struct RingFactory {
        n: u32,
        ranks: usize,
        sums: Arc<Mutex<Vec<u64>>>,
    }

    impl ProgramFactory for RingFactory {
        type Program = RingProgram;
        fn create(&self, id: ProgramId) -> RingProgram {
            RingProgram {
                id,
                n: self.n,
                offset: 0,
                token: None,
                fired: false,
                sums: self.sums.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..self.n)
                .filter(|p| (*p as usize) % self.ranks == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % self.ranks
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    fn run_ring_epochs(n: u32, ranks: usize, term: TerminationKind, offsets: &[u64]) -> Vec<u64> {
        let sums = Arc::new(Mutex::new(vec![0u64; n as usize]));
        let factory = Arc::new(RingFactory {
            n,
            ranks,
            sums: sums.clone(),
        });
        let mut u = Universe::launch(
            ranks,
            factory,
            RuntimeConfig {
                num_workers: 2,
                termination: term,
                ..Default::default()
            },
        );
        assert_eq!(u.num_ranks(), ranks);
        for (k, &off) in offsets.iter().enumerate() {
            let stats = u.run_epoch(Arc::new(off)).expect("epoch");
            assert_eq!(stats.len(), ranks);
            let work: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(work, n as u64, "epoch {k} work accounting");
            // Per-epoch stream accounting: the token crosses n-1 hops,
            // every epoch, from a cold counter.
            let moved: u64 = stats.iter().map(|s| s.streams_sent + s.streams_local).sum();
            assert_eq!(moved, (n - 1) as u64, "epoch {k} stream accounting");
        }
        assert_eq!(u.epochs_run(), offsets.len() as u64);
        u.shutdown();
        let out = sums.lock().clone();
        out
    }

    #[test]
    fn resident_ring_runs_many_epochs_counting() {
        // First epoch: factory-fresh (offset 0); later epochs add
        // their downcast offset. Program k accumulates k per epoch
        // plus the epoch offsets of epochs 2..: check exact sums.
        let offsets = [0, 10, 100];
        let sums = run_ring_epochs(6, 2, TerminationKind::Counting, &offsets);
        for (k, &s) in sums.iter().enumerate() {
            let expect = 3 * k as u64 + offsets.iter().sum::<u64>();
            assert_eq!(s, expect, "program {k}");
        }
    }

    #[test]
    fn resident_ring_runs_many_epochs_safra() {
        let offsets = [0, 7];
        let sums = run_ring_epochs(5, 3, TerminationKind::Safra, &offsets);
        for (k, &s) in sums.iter().enumerate() {
            assert_eq!(s, 2 * k as u64 + 7, "program {k}");
        }
    }

    #[test]
    fn single_epoch_universe_matches_run_universe_semantics() {
        let sums = Arc::new(Mutex::new(vec![0u64; 4]));
        let factory = Arc::new(RingFactory {
            n: 4,
            ranks: 2,
            sums: sums.clone(),
        });
        let mut u = Universe::launch(2, factory, RuntimeConfig::default());
        let stats = u.run_epoch(Arc::new(())).expect("epoch");
        drop(u); // shutdown via Drop
        let work: u64 = stats.iter().map(|s| s.work_done).sum();
        assert_eq!(work, 4);
        assert_eq!(sums.lock().clone(), vec![0, 1, 2, 3]);
    }

    /// A program that only materialises in epoch 2 (it is not listed by
    /// the factory; a listed program streams to it lazily) must be
    /// reset with the current epoch input right after creation.
    struct LazyTarget {
        armed: bool,
        got: Arc<Mutex<Vec<u64>>>,
    }

    struct LazySource {
        id: ProgramId,
        fire: bool,
        epoch: u64,
    }

    enum LazyProgram {
        Source(LazySource),
        Target(LazyTarget),
    }

    impl PatchProgram for LazyProgram {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, payload: Bytes) {
            match self {
                LazyProgram::Target(t) => {
                    assert!(t.armed, "lazy program ran un-reset in a later epoch");
                    t.got
                        .lock()
                        .push(u64::from_le_bytes(payload[..8].try_into().unwrap()));
                }
                LazyProgram::Source(_) => {}
            }
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if let LazyProgram::Source(s) = self {
                if s.fire {
                    s.fire = false;
                    ctx.work_done = 1;
                    // Only epoch 2 targets the hidden program.
                    if s.epoch == 1 {
                        ctx.send(Stream {
                            src: s.id,
                            dst: ProgramId::new(PatchId(99), TaskTag(0)),
                            payload: Bytes::copy_from_slice(&s.epoch.to_le_bytes()),
                        });
                    }
                }
            }
        }
        fn vote_to_halt(&self) -> bool {
            match self {
                LazyProgram::Source(s) => !s.fire,
                LazyProgram::Target(_) => true,
            }
        }
        fn remaining_work(&self) -> u64 {
            match self {
                LazyProgram::Source(s) => u64::from(s.fire),
                LazyProgram::Target(_) => 0,
            }
        }
        fn reset(&mut self, epoch: &crate::EpochInput) {
            let &e = epoch.downcast_ref::<u64>().expect("lazy epoch input");
            match self {
                LazyProgram::Source(s) => {
                    s.fire = true;
                    s.epoch = e;
                }
                LazyProgram::Target(t) => t.armed = true,
            }
        }
    }

    struct LazyFactory {
        got: Arc<Mutex<Vec<u64>>>,
    }

    impl ProgramFactory for LazyFactory {
        type Program = LazyProgram;
        fn create(&self, id: ProgramId) -> LazyProgram {
            if id.patch.0 == 99 {
                LazyProgram::Target(LazyTarget {
                    armed: false,
                    got: self.got.clone(),
                })
            } else {
                LazyProgram::Source(LazySource {
                    id,
                    fire: true,
                    epoch: 0,
                })
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            if rank == 0 {
                vec![ProgramId::new(PatchId(0), TaskTag(0))]
            } else {
                Vec::new()
            }
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            // The hidden target lives on rank 1.
            usize::from(id.patch.0 == 99)
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    /// Seconds of virtual kernel time the straggler books per epoch —
    /// a constant marker, so per-epoch attribution is exactly testable.
    const STRAGGLER_MARKER: f64 = 42.0;
    const STRAGGLER_SLEEP: std::time::Duration = std::time::Duration::from_millis(40);

    /// Two programs across two ranks engineered so counting
    /// termination is declared while a worker still runs a compute:
    /// P0 (rank 0) fires the token (its only committed work); P1
    /// (rank 1) consumes it, echoes a stream back, and defers its own
    /// work commitment by one claim cycle (a self-stream). The echo
    /// frame therefore leaves a full claim + report + counting round
    /// ahead of the report that completes the committed-work total, so
    /// P0's worker has reliably claimed the zero-work echo compute —
    /// which sleeps — by the time the epoch terminates around it. Its
    /// stat-only report can only reach the epoch through the
    /// end-of-epoch quiesce drain.
    struct EchoStraggler {
        id: ProgramId,
        fired: bool,
        consumed: bool,
        token_pending: bool,
        commit_pending: bool,
        echo_pending: bool,
    }

    impl PatchProgram for EchoStraggler {
        fn init(&mut self) {}
        fn input(&mut self, src: ProgramId, _payload: Bytes) {
            if self.id.patch.0 == 0 {
                self.echo_pending = true;
            } else if src == self.id {
                self.commit_pending = true;
            } else {
                self.token_pending = true;
            }
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.id.patch.0 == 0 {
                if !self.fired {
                    self.fired = true;
                    ctx.work_done = 1;
                    ctx.send(Stream {
                        src: self.id,
                        dst: ProgramId::new(PatchId(1), TaskTag(0)),
                        payload: Bytes::new(),
                    });
                } else if self.echo_pending {
                    // The straggler: all committed work is already
                    // done. Hold the claim long enough that global
                    // termination beats this compute's report, and book
                    // a marker the epoch's stats must still contain.
                    self.echo_pending = false;
                    std::thread::sleep(STRAGGLER_SLEEP);
                    ctx.kernel_seconds = STRAGGLER_MARKER;
                }
            } else if self.token_pending {
                self.token_pending = false;
                ctx.send(Stream {
                    src: self.id,
                    dst: ProgramId::new(PatchId(0), TaskTag(0)),
                    payload: Bytes::new(),
                });
                ctx.send(Stream {
                    src: self.id,
                    dst: self.id,
                    payload: Bytes::new(),
                });
            } else if self.commit_pending {
                self.commit_pending = false;
                self.consumed = true;
                ctx.work_done = 1;
            }
        }
        fn vote_to_halt(&self) -> bool {
            if self.id.patch.0 == 0 {
                self.fired && !self.echo_pending
            } else {
                !self.token_pending && !self.commit_pending
            }
        }
        fn remaining_work(&self) -> u64 {
            if self.id.patch.0 == 0 {
                u64::from(!self.fired)
            } else {
                u64::from(!self.consumed)
            }
        }
        fn reset(&mut self, _epoch: &crate::EpochInput) {
            self.fired = false;
            self.consumed = false;
            self.token_pending = false;
            self.commit_pending = false;
            self.echo_pending = false;
        }
    }

    struct EchoFactory;

    impl ProgramFactory for EchoFactory {
        type Program = EchoStraggler;
        fn create(&self, id: ProgramId) -> EchoStraggler {
            EchoStraggler {
                id,
                fired: false,
                consumed: false,
                token_pending: false,
                commit_pending: false,
                echo_pending: false,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            vec![ProgramId::new(PatchId(rank as u32), TaskTag(0))]
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    /// Regression (this PR): per-epoch `RunStats` deltas must stay
    /// exact when an epoch terminates while its quiesce drain is still
    /// collecting a straggling compute — and the next epoch is
    /// submitted immediately after. The straggler's stat-only report
    /// (a `STRAGGLER_MARKER` of virtual kernel seconds) must land in
    /// the epoch that ran it, every epoch; any cross-epoch bleed shows
    /// up as a 0 / 2× marker split between adjacent epochs. This is
    /// exactly the race the quiesce drain's post-quiet sweep closes: a
    /// worker releases its held report after the channel send, so the
    /// final report can land just as the master observes quiet.
    #[test]
    fn quiesce_drain_keeps_straggler_stats_in_their_epoch() {
        let mut u = Universe::launch(
            2,
            Arc::new(EchoFactory),
            RuntimeConfig {
                num_workers: 2,
                termination: TerminationKind::Counting,
                ..Default::default()
            },
        );
        for epoch in 0..3 {
            let stats = u.run_epoch(Arc::new(())).expect("epoch");
            let work: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(work, 2, "epoch {epoch} work accounting");
            let moved: u64 = stats.iter().map(|s| s.streams_sent + s.streams_local).sum();
            assert_eq!(moved, 3, "epoch {epoch} stream accounting");
            // The marker is virtual time: booked exactly once per
            // epoch, by the straggler. The quiesce drain waits for
            // ready-but-unclaimed programs too (`active` covers them),
            // so the echo compute always runs inside its epoch — the
            // only way this assert fails is its report crossing the
            // fence.
            let kernel: f64 = stats
                .iter()
                .map(|s| s.workers_merged().get(crate::stats::Category::Kernel))
                .sum();
            assert_eq!(
                kernel, STRAGGLER_MARKER,
                "epoch {epoch}: straggler report bled across the fence"
            );
            // While the straggler slept, rank 0's other worker (or the
            // straggler's own earlier hand-off) sat in the drain tail:
            // the per-epoch drain stamps must see a tail of the same
            // order as the sleep.
            let max_drain = stats[0]
                .worker_drain_seconds
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            assert!(
                max_drain >= STRAGGLER_SLEEP.as_secs_f64() * 0.25,
                "epoch {epoch}: drain tail {max_drain}s lost the straggler window"
            );
        }
        u.shutdown();
    }

    /// Per-epoch worker-drain stamps on a plain 2-rank ring: every
    /// rank reports one entry per worker, bounded by the epoch wall,
    /// and the worker that carried the token drains for less than the
    /// whole epoch.
    #[test]
    fn worker_drain_stamps_cover_every_worker_each_epoch() {
        let sums = Arc::new(Mutex::new(vec![0u64; 6]));
        let factory = Arc::new(RingFactory {
            n: 6,
            ranks: 2,
            sums,
        });
        let mut u = Universe::launch(
            2,
            factory,
            RuntimeConfig {
                num_workers: 2,
                ..Default::default()
            },
        );
        for epoch in 0..3u64 {
            let stats = u.run_epoch(Arc::new(epoch)).expect("epoch");
            for s in &stats {
                assert_eq!(
                    s.worker_drain_seconds.len(),
                    2,
                    "rank {} epoch {epoch}: one stamp per worker",
                    s.rank
                );
                for &d in &s.worker_drain_seconds {
                    assert!(d.is_finite() && d >= 0.0);
                    assert!(
                        d <= s.wall_seconds,
                        "rank {} epoch {epoch}: drain {d}s exceeds wall {}s",
                        s.rank,
                        s.wall_seconds
                    );
                }
                // Both ranks hold ring programs, so some worker on each
                // rank acted this epoch and its tail is a strict
                // sub-interval of the epoch.
                let min = s
                    .worker_drain_seconds
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    min < s.wall_seconds,
                    "rank {} epoch {epoch}: no worker was ever active",
                    s.rank
                );
            }
        }
        u.shutdown();
    }

    /// The same resident ring over a socket fabric: epochs run, and a
    /// relaunch rebuilds a *fresh* socket world (stale connections from
    /// the first incarnation must not leak into the second).
    #[test]
    fn socket_fabric_runs_epochs_and_relaunches() {
        let n = 4u32;
        let sums = Arc::new(Mutex::new(vec![0u64; n as usize]));
        let factory = Arc::new(RingFactory {
            n,
            ranks: 2,
            sums: sums.clone(),
        });
        let mut u = Universe::launch_with_fabric(
            2,
            factory,
            RuntimeConfig::default(),
            super::fabric_for(jsweep_comm::TransportKind::Socket),
        );
        u.run_epoch(Arc::new(0u64)).expect("epoch 1");
        u.run_epoch(Arc::new(10u64)).expect("epoch 2");
        u.relaunch();
        u.run_epoch(Arc::new(0u64)).expect("post-relaunch epoch");
        u.shutdown();
        // Each incarnation's first epoch runs factory-fresh (offset 0);
        // only the second epoch carried an offset. Program k sees the
        // ring token k three times plus one offset of 10.
        for (k, &s) in sums.lock().iter().enumerate() {
            assert_eq!(s, 3 * k as u64 + 10, "program {k}");
        }
    }

    #[test]
    fn lazily_created_program_is_reset_to_current_epoch() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(LazyFactory { got: got.clone() });
        let mut u = Universe::launch(
            2,
            factory,
            RuntimeConfig {
                termination: TerminationKind::Safra,
                ..Default::default()
            },
        );
        u.run_epoch(Arc::new(0u64)).expect("epoch");
        u.run_epoch(Arc::new(1u64)).expect("epoch");
        u.shutdown();
        assert_eq!(got.lock().clone(), vec![1]);
    }

    /// A ring program that panics mid-compute when the epoch input
    /// asks for it (`u64::MAX` offset). Exercises the containment
    /// path without any injection machinery.
    struct FaultyRing {
        inner: RingProgram,
        panic_now: bool,
    }

    impl PatchProgram for FaultyRing {
        fn init(&mut self) {
            self.inner.init()
        }
        fn input(&mut self, src: ProgramId, payload: Bytes) {
            self.inner.input(src, payload)
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.panic_now && self.inner.id.patch.0 == 1 {
                panic!("faulty ring program blew up");
            }
            self.inner.compute(ctx)
        }
        fn vote_to_halt(&self) -> bool {
            self.inner.vote_to_halt()
        }
        fn remaining_work(&self) -> u64 {
            self.inner.remaining_work()
        }
        fn reset(&mut self, epoch: &crate::EpochInput) {
            let &offset = epoch.downcast_ref::<u64>().expect("ring epoch input");
            self.panic_now = offset == u64::MAX;
            self.inner
                .reset(&(if self.panic_now { 0u64 } else { offset }));
        }
    }

    struct FaultyRingFactory {
        inner: RingFactory,
    }

    impl ProgramFactory for FaultyRingFactory {
        type Program = FaultyRing;
        fn create(&self, id: ProgramId) -> FaultyRing {
            FaultyRing {
                inner: self.inner.create(id),
                panic_now: false,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            self.inner.programs_on_rank(rank)
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            self.inner.rank_of(id)
        }
        fn priority(&self, id: ProgramId) -> i64 {
            self.inner.priority(id)
        }
        fn initial_workload(&self, id: ProgramId) -> u64 {
            self.inner.initial_workload(id)
        }
    }

    /// A program panic must poison the epoch (not the process), mark
    /// the universe faulted, and relaunch must restore full service
    /// from factory-fresh state — across both ranks, through the
    /// abort broadcast.
    #[test]
    fn program_panic_faults_epoch_and_relaunch_recovers() {
        let n = 6u32;
        let sums = Arc::new(Mutex::new(vec![0u64; n as usize]));
        let factory = Arc::new(FaultyRingFactory {
            inner: RingFactory {
                n,
                ranks: 2,
                sums: sums.clone(),
            },
        });
        let mut u = Universe::launch(2, factory, RuntimeConfig::default());
        // Healthy first epoch.
        u.run_epoch(Arc::new(0u64)).expect("healthy epoch");
        // Poisoned second epoch: program 1 (rank 1) panics.
        let fault = u.run_epoch(Arc::new(u64::MAX)).expect_err("poisoned epoch");
        assert_eq!(fault.kind, crate::fault::FaultKind::Panic);
        assert_eq!(fault.rank, 1);
        assert_eq!(fault.program.map(|id| id.patch.0), Some(1));
        assert!(
            fault.payload.contains("blew up"),
            "payload: {}",
            fault.payload
        );
        // The universe is now faulted: epochs are refused, cheaply.
        assert!(u.fault().is_some());
        let again = u.run_epoch(Arc::new(0u64)).expect_err("still faulted");
        assert_eq!(again, fault);
        // Relaunch restores service from factory-fresh state.
        u.relaunch();
        assert!(u.fault().is_none());
        let stats = u.run_epoch(Arc::new(0u64)).expect("post-relaunch epoch");
        let work: u64 = stats.iter().map(|s| s.work_done).sum();
        assert_eq!(work, n as u64);
        u.shutdown();
    }

    /// A compute that sleeps far past the watchdog deadline while
    /// holding its claim: the watchdog must convert the hang into a
    /// `Stall` fault instead of blocking the epoch forever.
    struct Sleeper;

    impl PatchProgram for Sleeper {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {}
        fn compute(&mut self, _ctx: &mut ComputeCtx) {
            std::thread::sleep(std::time::Duration::from_millis(600));
        }
        fn vote_to_halt(&self) -> bool {
            // Never halts and never commits work: with the claim held
            // by the sleep, the master sees active work and no
            // progress — the watchdog's exact trigger.
            false
        }
        fn remaining_work(&self) -> u64 {
            1
        }
    }

    struct SleeperFactory;

    impl ProgramFactory for SleeperFactory {
        type Program = Sleeper;
        fn create(&self, _id: ProgramId) -> Sleeper {
            Sleeper
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            if rank == 0 {
                vec![ProgramId::new(PatchId(0), TaskTag(0))]
            } else {
                Vec::new()
            }
        }
        fn rank_of(&self, _id: ProgramId) -> usize {
            0
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    #[test]
    fn watchdog_converts_stall_into_fault() {
        let mut u = Universe::launch(
            1,
            Arc::new(SleeperFactory),
            RuntimeConfig {
                num_workers: 1,
                watchdog: Some(std::time::Duration::from_millis(100)),
                ..Default::default()
            },
        );
        let t0 = std::time::Instant::now();
        let fault = u.run_epoch(Arc::new(())).expect_err("stalled epoch");
        assert_eq!(fault.kind, crate::fault::FaultKind::Stall);
        assert_eq!(fault.rank, 0);
        assert!(
            fault.payload.contains("watchdog"),
            "payload: {}",
            fault.payload
        );
        // The fault surfaces well before the sleeping compute ends —
        // that is the whole point of the watchdog.
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(550),
            "watchdog fired too late: {:?}",
            t0.elapsed()
        );
        u.shutdown();
    }
}
