//! The per-rank runtime engine: master thread + worker threads (Fig. 8).
//!
//! The master owns the rank's [`Comm`] endpoint and runs the stream
//! router and progress tracker; workers execute patch-programs from the
//! shared [`Pool`]. The call [`run_rank`] embodies one rank; use
//! [`run_universe`] to run a whole simulated MPI world.
//!
//! The data plane is **batched end-to-end** (the paper's §II
//! "communication aggregation", profiled in Fig. 16):
//!
//! * workers accumulate compute outputs into one `Report` per flush
//!   (at most [`RuntimeConfig::report_flush_streams`] streams, flushed
//!   eagerly before a worker would block), so the master channel does
//!   not carry one message per compute round;
//! * the master routes through a precomputed **route table** (one
//!   `rank_of`/`priority` evaluation per program, ever) and coalesces
//!   all outbound streams per destination rank per drain round into a
//!   single multi-stream frame built in a reusable per-destination
//!   writer ([`crate::program::frame_push`]);
//! * incoming frames are unpacked zero-copy and handed to the pool as
//!   one [`Pool::deliver_batch`] call.

use crate::pool::Pool;
use crate::program::{frame_push, unpack_frame, ComputeCtx, ProgramFactory, ProgramId, Stream};
use crate::stats::{Breakdown, Category, RunStats};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use jsweep_comm::pack::Writer;
use jsweep_comm::termination::{Counting, Safra, Verdict};
use jsweep_comm::{Comm, Universe};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which termination detector the runtime uses (§IV-C: "we support
/// both").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationKind {
    /// Workload counting — the fast path for known-total algorithms.
    Counting,
    /// Dijkstra–Safra token ring — the general protocol.
    Safra,
}

/// Runtime configuration of one rank.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads per rank (the paper reserves one core for the
    /// master and uses the rest as workers). Also the number of
    /// ready-queue shards in the [`Pool`].
    pub num_workers: usize,
    /// Termination detector.
    pub termination: TerminationKind,
    /// Batching knob: max output streams a worker buffers across
    /// compute calls before flushing a report to the master. Batches
    /// are always flushed before a worker blocks, so this trades
    /// master-channel traffic against stream latency. `1` restores
    /// one-report-per-compute behaviour.
    pub report_flush_streams: usize,
    /// Batching knob: max streams packed into one outbound frame. A
    /// destination's frame is sent mid-round once it fills; otherwise
    /// frames flush at the end of each master drain round. `1`
    /// restores one-message-per-stream behaviour.
    pub max_frame_streams: usize,
    /// Batching knob: program claims a worker takes per pool
    /// round-trip. Only already-ready programs are batched, so sparse
    /// workloads still flow one at a time — which is why the default
    /// of 8 measured fine for both fine-grained compute storms and
    /// few-large-compute replay iterations (see the coarse-replay
    /// tuning notes in `jsweep-transport::solver`; shrinking the batch
    /// bought nothing there). The knob exists for workloads where
    /// claim latency provably dominates; `1` restores
    /// one-claim-per-round-trip behaviour.
    pub claim_batch: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_workers: 2,
            termination: TerminationKind::Counting,
            report_flush_streams: 32,
            max_frame_streams: 256,
            claim_batch: 8,
        }
    }
}

/// Multi-stream frames travel under this tag.
const TAG_FRAME: u32 = 0;

/// Report a worker sends the master after one or more compute rounds.
#[derive(Default)]
struct Report {
    outputs: Vec<Stream>,
    work_done: u64,
}

impl Report {
    fn is_empty(&self) -> bool {
        self.outputs.is_empty() && self.work_done == 0
    }
}

/// Send the accumulated report to the master (no-op when empty).
fn flush_report(pool: &Pool, to_master: &Sender<Report>, batch: &mut Report, bd: &mut Breakdown) {
    if batch.is_empty() {
        return;
    }
    let report = std::mem::take(batch);
    bd.timed(Category::Output, || {
        let _ = to_master.send(report);
    });
    pool.release_report();
}

fn worker_loop<F: ProgramFactory>(
    worker: usize,
    pool: Arc<Pool>,
    factory: Arc<F>,
    to_master: Sender<Report>,
    flush_streams: usize,
    claim_batch: usize,
) -> (Breakdown, u64) {
    let mut bd = Breakdown::default();
    let mut compute_calls = 0u64;
    let mut batch = Report::default();
    let mut claims: Vec<crate::pool::Claim> = Vec::new();
    let mut finishes: Vec<crate::pool::FinishEntry> = Vec::new();
    loop {
        // Flush the batch before blocking, never while work is ready:
        // streams keep moving, and quiescence stays honest.
        if pool.try_take_batch(worker, claim_batch, &mut claims) == 0 {
            flush_report(&pool, &to_master, &mut batch, &mut bd);
            if pool.take_batch(worker, claim_batch, &mut claims, &mut bd) == 0 {
                break;
            }
        }
        for claim in claims.drain(..) {
            let mut program = match claim.program {
                Some(p) => p,
                None => bd.timed(Category::Other, || {
                    Box::new(factory.create(claim.id)) as Box<dyn crate::program::PatchProgram>
                }),
            };
            if !claim.initialized {
                bd.timed(Category::Other, || program.init());
            }
            let mut pending = claim.pending;
            bd.timed(Category::Input, || {
                for (src, payload) in pending.drain(..) {
                    program.input(src, payload);
                }
            });
            let mut ctx = ComputeCtx::default();
            let t0 = Instant::now();
            program.compute(&mut ctx);
            let dt = t0.elapsed().as_secs_f64();
            compute_calls += 1;
            bd.add(Category::Kernel, ctx.kernel_seconds);
            bd.add(Category::GraphOp, (dt - ctx.kernel_seconds).max(0.0));
            let halted = program.vote_to_halt();
            if !ctx.out.is_empty() || ctx.work_done > 0 {
                bd.timed(Category::Output, || {
                    if batch.is_empty() {
                        // Must precede the batch's `finish_batch`:
                        // while this program still counts as Running,
                        // quiet cannot be observed with our outputs in
                        // hand.
                        pool.hold_report();
                    }
                    batch.outputs.append(&mut ctx.out);
                    batch.work_done += ctx.work_done;
                });
            }
            finishes.push(crate::pool::FinishEntry {
                id: claim.id,
                program,
                halted,
                scratch: pending,
            });
        }
        // One lock per same-shard run instead of one per program.
        pool.finish_batch(&mut finishes);
        if batch.outputs.len() >= flush_streams {
            flush_report(&pool, &to_master, &mut batch, &mut bd);
        }
    }
    flush_report(&pool, &to_master, &mut batch, &mut bd);
    (bd, compute_calls)
}

/// One outbound frame under construction (writer reused across
/// flushes; see [`jsweep_comm::pack::Writer::take`]).
struct FrameSlot {
    w: Writer,
    count: u64,
}

/// Route-table entry: hosting rank and scheduling priority, evaluated
/// once per program instead of per stream.
#[derive(Clone, Copy)]
struct RouteEntry {
    rank: usize,
    priority: i64,
}

fn route_lookup<F: ProgramFactory>(
    routes: &mut HashMap<ProgramId, RouteEntry>,
    factory: &F,
    id: ProgramId,
) -> RouteEntry {
    *routes.entry(id).or_insert_with(|| RouteEntry {
        rank: factory.rank_of(id),
        priority: factory.priority(id),
    })
}

/// Master-side routing state of one rank: route table, per-destination
/// outbound frames, and the stats/timing they feed.
///
/// Priorities are snapshotted into the route table (one
/// `ProgramFactory::priority` evaluation per program); factories with
/// genuinely dynamic priorities should re-`activate` explicitly.
struct Master<'f, F: ProgramFactory> {
    rank: usize,
    factory: &'f F,
    routes: HashMap<ProgramId, RouteEntry>,
    frames: Vec<FrameSlot>,
    /// Destination ranks with a non-empty frame (pushed on the 0→1
    /// stream transition; duplicates are benign, `flush_one` skips
    /// empty frames).
    dirty: Vec<usize>,
    local: Vec<(Stream, i64)>,
    max_frame_streams: u64,
    stats: RunStats,
    bd: Breakdown,
    safra: Safra,
    work_done: u64,
}

impl<'f, F: ProgramFactory> Master<'f, F> {
    fn new(rank: usize, size: usize, factory: &'f F, config: &RuntimeConfig) -> Master<'f, F> {
        // Precompute the route table from the placement the factory
        // already describes; any id it misses (dynamically created
        // targets) falls back to one factory evaluation, cached.
        let mut routes = HashMap::new();
        for r in 0..size {
            for id in factory.programs_on_rank(r) {
                // Only local destinations are ever delivered with a
                // priority; remote entries are routing-only, so skip
                // their (potentially expensive) priority evaluation.
                let priority = if r == rank { factory.priority(id) } else { 0 };
                routes.insert(id, RouteEntry { rank: r, priority });
            }
        }
        Master {
            rank,
            factory,
            routes,
            frames: (0..size)
                .map(|_| FrameSlot {
                    w: Writer::new(),
                    count: 0,
                })
                .collect(),
            dirty: Vec::new(),
            local: Vec::new(),
            max_frame_streams: config.max_frame_streams.max(1) as u64,
            stats: RunStats {
                rank,
                ..Default::default()
            },
            bd: Breakdown::default(),
            safra: Safra::new(rank, size),
            work_done: 0,
        }
    }

    /// Priority of a local program (route-table hit or cached fallback).
    fn priority_of(&mut self, id: ProgramId) -> i64 {
        route_lookup(&mut self.routes, self.factory, id).priority
    }

    /// Route one worker report: local streams are delivered to the pool
    /// in one batch, remote streams are appended to their destination
    /// frames (sent by [`Master::flush_frames`], or mid-round when a
    /// frame fills). Shared by the busy drain loop and the idle
    /// `recv_timeout` fallback — both paths get identical routing and
    /// timing.
    fn route_report(&mut self, pool: &Pool, comm: &Comm, report: Report) {
        self.work_done += report.work_done;
        self.stats.work_done += report.work_done;
        if report.outputs.is_empty() {
            return;
        }
        let t_route = Instant::now();
        // Pack and send time inside this loop is booked to its own
        // category and must not also count as Route.
        let mut non_route_seconds = 0.0;
        let mut pack_seconds = 0.0;
        for stream in report.outputs {
            let entry = route_lookup(&mut self.routes, self.factory, stream.dst);
            if entry.rank == self.rank {
                self.stats.streams_local += 1;
                self.local.push((stream, entry.priority));
            } else {
                let t_pack = Instant::now();
                let count = {
                    let slot = &mut self.frames[entry.rank];
                    frame_push(&mut slot.w, &stream);
                    slot.count += 1;
                    slot.count
                };
                pack_seconds += t_pack.elapsed().as_secs_f64();
                if count == 1 {
                    self.dirty.push(entry.rank);
                }
                if count >= self.max_frame_streams {
                    let t_flush = Instant::now();
                    self.flush_one(comm, entry.rank);
                    non_route_seconds += t_flush.elapsed().as_secs_f64();
                }
            }
        }
        if !self.local.is_empty() {
            pool.deliver_batch(self.local.drain(..));
        }
        non_route_seconds += pack_seconds;
        self.bd.add(Category::Pack, pack_seconds);
        self.bd.add(
            Category::Route,
            (t_route.elapsed().as_secs_f64() - non_route_seconds).max(0.0),
        );
    }

    /// Send `dst`'s frame if it has content.
    fn flush_one(&mut self, comm: &Comm, dst: usize) {
        let slot = &mut self.frames[dst];
        if slot.count == 0 {
            return;
        }
        let payload = slot.w.take();
        self.stats.streams_sent += slot.count;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        slot.count = 0;
        self.bd
            .timed(Category::Comm, || comm.send(dst, TAG_FRAME, payload));
        self.safra.on_send();
    }

    /// Send every pending frame (end of a drain round).
    fn flush_frames(&mut self, comm: &Comm) {
        while let Some(dst) = self.dirty.pop() {
            self.flush_one(comm, dst);
        }
    }

    /// An incoming frame: unpack zero-copy, deliver as one pool batch.
    fn recv_frame(&mut self, pool: &Pool, payload: Bytes) {
        self.safra.on_receive();
        self.stats.frames_received += 1;
        let streams = self.bd.timed(Category::Unpack, || unpack_frame(payload));
        self.stats.streams_received += streams.len() as u64;
        let t0 = Instant::now();
        let routes = &mut self.routes;
        let factory = self.factory;
        pool.deliver_batch(streams.into_iter().map(|s| {
            let prio = route_lookup(routes, factory, s.dst).priority;
            (s, prio)
        }));
        self.bd.add(Category::Route, t0.elapsed().as_secs_f64());
    }
}

/// Run one rank of a patch-centric data-driven computation to global
/// termination. Returns the rank's [`RunStats`].
pub fn run_rank<F: ProgramFactory>(
    mut comm: Comm,
    factory: Arc<F>,
    config: &RuntimeConfig,
) -> RunStats {
    assert!(config.num_workers > 0, "need at least one worker");
    let t_start = Instant::now();
    let rank = comm.rank();
    let size = comm.size();
    let pool = Arc::new(Pool::new(config.num_workers));
    let mut m = Master::new(rank, size, factory.as_ref(), config);

    // Progress tracking: local committed workload.
    let local_ids = factory.programs_on_rank(rank);
    let total_work: u64 = local_ids
        .iter()
        .map(|&id| factory.initial_workload(id))
        .sum();

    // All patch-programs start active (§III-A).
    for &id in &local_ids {
        let prio = m.priority_of(id);
        pool.activate(id, prio);
    }

    // Workers.
    let (to_master, from_workers): (Sender<Report>, Receiver<Report>) = unbounded();
    let mut handles = Vec::with_capacity(config.num_workers);
    for w in 0..config.num_workers {
        let pool = pool.clone();
        let factory = factory.clone();
        let tx = to_master.clone();
        let flush_streams = config.report_flush_streams.max(1);
        let claim_batch = config.claim_batch.max(1);
        handles.push(
            std::thread::Builder::new()
                .name(format!("rank-{rank}-worker-{w}"))
                .spawn(move || worker_loop(w, pool, factory, tx, flush_streams, claim_batch))
                .expect("spawn worker"),
        );
    }
    drop(to_master);

    let mut counting = Counting::new(rank, size);

    'main: loop {
        let mut progress = false;

        // Drain worker reports: route streams, track progress.
        while let Ok(report) = from_workers.try_recv() {
            progress = true;
            m.route_report(&pool, &comm, report);
        }
        // One frame per destination per drain round.
        m.flush_frames(&comm);

        // Drain network messages: incoming frames + protocol traffic.
        while let Some(msg) = m.bd.timed(Category::Comm, || comm.try_recv()) {
            progress = true;
            match msg.tag {
                TAG_FRAME => m.recv_frame(&pool, msg.payload),
                _ => {
                    let v = match config.termination {
                        TerminationKind::Counting => counting.on_message(&msg, &comm),
                        TerminationKind::Safra => m.safra.on_message(&msg, &comm),
                    };
                    if v == Verdict::Terminated {
                        break 'main;
                    }
                }
            }
        }

        // Termination detection.
        match config.termination {
            TerminationKind::Counting => {
                debug_assert!(
                    m.work_done <= total_work,
                    "programs over-reported work ({} > committed {total_work})",
                    m.work_done
                );
                let remaining = total_work.saturating_sub(m.work_done);
                if counting.maybe_report(remaining, &comm) == Verdict::Terminated {
                    break 'main;
                }
            }
            TerminationKind::Safra => {
                debug_assert!(m.dirty.is_empty(), "unflushed frames at idle check");
                let idle = !progress && pool.is_quiet();
                if m.safra.maybe_advance(idle, &comm) == Verdict::Terminated {
                    break 'main;
                }
            }
        }

        if !progress {
            // Nothing to do right now: park briefly on the worker
            // channel (the latency-critical path).
            let t0 = Instant::now();
            let parked = from_workers.recv_timeout(Duration::from_micros(200));
            m.bd.add(Category::Idle, t0.elapsed().as_secs_f64());
            if let Ok(report) = parked {
                m.route_report(&pool, &comm, report);
                m.flush_frames(&comm);
            }
        }
    }

    // Shut workers down and collect their breakdowns.
    pool.stop();
    let mut stats = m.stats;
    for h in handles {
        let (bd, calls) = h.join().expect("worker panicked");
        stats.workers.push(bd);
        stats.compute_calls += calls;
    }
    stats.master = m.bd;
    stats.wall_seconds = t_start.elapsed().as_secs_f64();
    stats
}

/// Run a full simulated-MPI computation: `num_ranks` ranks, each with
/// `config.num_workers` workers, sharing one program factory.
pub fn run_universe<F: ProgramFactory>(
    num_ranks: usize,
    factory: Arc<F>,
    config: RuntimeConfig,
) -> Vec<RunStats> {
    Universe::run(num_ranks, move |comm| {
        run_rank(comm, factory.clone(), &config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PatchProgram, ProgramId, TaskTag, STREAM_WIRE_OVERHEAD};
    use jsweep_mesh::PatchId;
    use parking_lot::Mutex;

    /// A chain of programs 0..n: program k waits for a token from k-1,
    /// increments it, forwards to k+1. Program 0 starts with the token.
    struct ChainProgram {
        id: ProgramId,
        n: u32,
        token: Option<u64>,
        done: bool,
        log: Arc<Mutex<Vec<(u32, u64)>>>,
    }

    impl PatchProgram for ChainProgram {
        fn init(&mut self) {
            if self.id.patch.0 == 0 {
                self.token = Some(0);
            }
        }
        fn input(&mut self, _src: ProgramId, payload: Bytes) {
            self.token = Some(u64::from_le_bytes(payload[..8].try_into().unwrap()));
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.done {
                return;
            }
            let Some(tok) = self.token.take() else {
                return;
            };
            self.log.lock().push((self.id.patch.0, tok));
            self.done = true;
            ctx.work_done = 1;
            if self.id.patch.0 + 1 < self.n {
                ctx.send(Stream {
                    src: self.id,
                    dst: ProgramId::new(PatchId(self.id.patch.0 + 1), TaskTag(0)),
                    payload: Bytes::copy_from_slice(&(tok + 1).to_le_bytes()),
                });
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.token.is_none()
        }
        fn remaining_work(&self) -> u64 {
            u64::from(!self.done)
        }
    }

    struct ChainFactory {
        n: u32,
        ranks: usize,
        log: Arc<Mutex<Vec<(u32, u64)>>>,
    }

    impl ProgramFactory for ChainFactory {
        type Program = ChainProgram;
        fn create(&self, id: ProgramId) -> ChainProgram {
            ChainProgram {
                id,
                n: self.n,
                token: None,
                done: false,
                log: self.log.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..self.n)
                .filter(|p| (*p as usize) % self.ranks == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % self.ranks
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    fn run_chain(n: u32, ranks: usize, workers: usize, term: TerminationKind) -> Vec<(u32, u64)> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(ChainFactory {
            n,
            ranks,
            log: log.clone(),
        });
        let stats = run_universe(
            ranks,
            factory,
            RuntimeConfig {
                num_workers: workers,
                termination: term,
                ..Default::default()
            },
        );
        let total_work: u64 = stats.iter().map(|s| s.work_done).sum();
        assert_eq!(total_work, n as u64);
        let mut out = log.lock().clone();
        out.sort_unstable();
        out
    }

    #[test]
    fn chain_single_rank_counting() {
        let log = run_chain(10, 1, 2, TerminationKind::Counting);
        assert_eq!(log, (0..10).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_multi_rank_counting() {
        let log = run_chain(20, 3, 2, TerminationKind::Counting);
        assert_eq!(log, (0..20).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_multi_rank_safra() {
        let log = run_chain(12, 2, 2, TerminationKind::Safra);
        assert_eq!(log, (0..12).map(|k| (k, k as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn chain_single_worker() {
        let log = run_chain(8, 2, 1, TerminationKind::Counting);
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn stats_track_streams_and_frames() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(ChainFactory {
            n: 6,
            ranks: 2,
            log,
        });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        // Round-robin placement of a chain: every hop crosses ranks.
        let sent: u64 = stats.iter().map(|s| s.streams_sent).sum();
        let received: u64 = stats.iter().map(|s| s.streams_received).sum();
        assert_eq!(sent, 5);
        assert_eq!(received, 5);
        // A chain is latency-bound: every frame carries one stream.
        let frames: u64 = stats.iter().map(|s| s.frames_sent).sum();
        let frames_in: u64 = stats.iter().map(|s| s.frames_received).sum();
        assert_eq!(frames, 5);
        assert_eq!(frames_in, 5);
        let calls: u64 = stats.iter().map(|s| s.compute_calls).sum();
        assert!(calls >= 6);
        // Exact wire accounting: 20-byte record header + 8-byte token.
        let bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        assert_eq!(bytes, 5 * (STREAM_WIRE_OVERHEAD as u64 + 8));
    }

    /// One program on rank 0 fans a burst of streams out to rank 1 in a
    /// single compute call: aggregation must pack the burst into fewer
    /// frames than streams, with byte accounting still exact.
    struct Burst {
        id: ProgramId,
        fan: u32,
        fired: bool,
        pending: u64,
        received: Arc<Mutex<u32>>,
    }

    impl PatchProgram for Burst {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {
            *self.received.lock() += 1;
            self.pending += 1;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.id.patch.0 == 0 {
                if !self.fired {
                    self.fired = true;
                    ctx.work_done = 1;
                    for k in 0..self.fan {
                        ctx.send(Stream {
                            src: self.id,
                            dst: ProgramId::new(PatchId(1 + k), TaskTag(0)),
                            payload: Bytes::copy_from_slice(&u64::from(k).to_le_bytes()),
                        });
                    }
                }
            } else {
                // Work = inputs consumed, so accounting is exact no
                // matter how activation and delivery interleave.
                ctx.work_done = self.pending;
                self.pending = 0;
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.pending == 0
        }
        fn remaining_work(&self) -> u64 {
            self.pending
        }
    }

    struct BurstFactory {
        fan: u32,
        received: Arc<Mutex<u32>>,
    }

    impl ProgramFactory for BurstFactory {
        type Program = Burst;
        fn create(&self, id: ProgramId) -> Burst {
            Burst {
                id,
                fan: self.fan,
                fired: false,
                pending: 0,
                received: self.received.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            if rank == 0 {
                vec![ProgramId::new(PatchId(0), TaskTag(0))]
            } else {
                (0..self.fan)
                    .map(|k| ProgramId::new(PatchId(1 + k), TaskTag(0)))
                    .collect()
            }
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            usize::from(id.patch.0 != 0)
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            // Source: the one firing compute. Receivers: the one
            // stream each will consume.
            1
        }
    }

    #[test]
    fn burst_aggregates_into_fewer_frames() {
        let fan = 8u32;
        let received = Arc::new(Mutex::new(0));
        let factory = Arc::new(BurstFactory {
            fan,
            received: received.clone(),
        });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        assert_eq!(*received.lock(), fan);
        let r0 = &stats[0];
        assert_eq!(r0.streams_sent, u64::from(fan));
        // The whole burst leaves one compute call and one drain round:
        // strictly fewer frames than streams (1, with default knobs).
        assert!(
            r0.frames_sent < r0.streams_sent,
            "burst was not aggregated: {} frames for {} streams",
            r0.frames_sent,
            r0.streams_sent
        );
        assert_eq!(r0.frames_sent, 1);
        // Byte accounting is framing-independent and exact.
        assert_eq!(
            r0.bytes_sent,
            u64::from(fan) * (STREAM_WIRE_OVERHEAD as u64 + 8)
        );
        let r1 = &stats[1];
        assert_eq!(r1.streams_received, u64::from(fan));
        assert_eq!(r1.frames_received, r0.frames_sent);
    }

    #[test]
    fn burst_unbatched_knobs_restore_stream_granularity() {
        let fan = 6u32;
        let received = Arc::new(Mutex::new(0));
        let factory = Arc::new(BurstFactory {
            fan,
            received: received.clone(),
        });
        let stats = run_universe(
            2,
            factory,
            RuntimeConfig {
                max_frame_streams: 1,
                report_flush_streams: 1,
                ..Default::default()
            },
        );
        assert_eq!(*received.lock(), fan);
        let r0 = &stats[0];
        assert_eq!(r0.streams_sent, u64::from(fan));
        assert_eq!(r0.frames_sent, u64::from(fan));
        // Same bytes either way: frames add no per-frame header.
        assert_eq!(
            r0.bytes_sent,
            u64::from(fan) * (STREAM_WIRE_OVERHEAD as u64 + 8)
        );
    }

    /// Two programs that ping-pong a fixed number of times exercise
    /// reentrancy (partial computation) and reactivation.
    struct PingPong {
        id: ProgramId,
        rounds: u32,
        sent: u32,
        received: u32,
        pending: u32,
    }

    impl PatchProgram for PingPong {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, _payload: Bytes) {
            self.received += 1;
            self.pending += 1;
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            let can_start = self.id.patch.0 == 0 && self.sent == 0;
            if can_start || self.pending > 0 {
                if self.pending > 0 {
                    self.pending -= 1;
                    ctx.work_done = 1;
                }
                if self.sent < self.rounds {
                    self.sent += 1;
                    ctx.send(Stream {
                        src: self.id,
                        dst: ProgramId::new(PatchId(1 - self.id.patch.0), TaskTag(0)),
                        payload: Bytes::new(),
                    });
                }
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.pending == 0
        }
        fn remaining_work(&self) -> u64 {
            (self.rounds - self.received) as u64
        }
    }

    struct PingPongFactory {
        rounds: u32,
    }

    impl ProgramFactory for PingPongFactory {
        type Program = PingPong;
        fn create(&self, id: ProgramId) -> PingPong {
            PingPong {
                id,
                rounds: self.rounds,
                sent: 0,
                received: 0,
                pending: 0,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            vec![ProgramId::new(PatchId(rank as u32), TaskTag(0))]
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            self.rounds as u64
        }
    }

    #[test]
    fn ping_pong_reentrancy() {
        for term in [TerminationKind::Counting, TerminationKind::Safra] {
            let factory = Arc::new(PingPongFactory { rounds: 25 });
            let stats = run_universe(
                2,
                factory,
                RuntimeConfig {
                    num_workers: 1,
                    termination: term,
                    ..Default::default()
                },
            );
            let total: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(total, 50, "termination {term:?}");
        }
    }

    #[test]
    fn ping_pong_accounting_is_exact_across_ranks() {
        let factory = Arc::new(PingPongFactory { rounds: 25 });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        for s in &stats {
            // Every stream crosses ranks with an empty payload.
            assert_eq!(s.streams_sent, 25);
            assert_eq!(s.bytes_sent, 25 * STREAM_WIRE_OVERHEAD as u64);
            assert!(s.frames_sent >= 1);
            assert!(s.frames_sent <= s.streams_sent);
        }
        // Per-direction conservation: everything sent was received.
        assert_eq!(stats[0].streams_sent, stats[1].streams_received);
        assert_eq!(stats[1].streams_sent, stats[0].streams_received);
        assert_eq!(stats[0].frames_sent, stats[1].frames_received);
        assert_eq!(stats[1].frames_sent, stats[0].frames_received);
    }

    #[test]
    fn wall_time_recorded() {
        let factory = Arc::new(PingPongFactory { rounds: 2 });
        let stats = run_universe(2, factory, RuntimeConfig::default());
        for s in &stats {
            assert!(s.wall_seconds > 0.0);
            assert_eq!(s.workers.len(), 2);
        }
    }
}
