//! Level-symmetric Sn quadrature construction.
//!
//! For an even order `N`, the set has `N(N+2)/8` ordinates per octant and
//! `N(N+2)` in total (S2 → 8, S4 → 24, S8 → 80, S16 → 288). Directions are
//! placed on the standard triangular level arrangement: level cosines
//! `μ₁ < μ₂ < … < μ_{N/2}` with `μ_i² = μ₁² + (i-1)·Δ` and
//! `Δ = 2(1-3μ₁²)/(N-2)`, so every ordinate is a permutation
//! `(±μ_i, ±μ_j, ±μ_k)` with `i+j+k = N/2 + 2`.
//!
//! Weights are equal within a set (EQn variant); see the crate docs for
//! why this is sufficient for this reproduction.

use crate::{AngleId, Octant, Ordinate};

/// Order of a level-symmetric Sn quadrature set (must be even, ≥ 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnOrder(pub u32);

impl SnOrder {
    /// Number of ordinates in the full set: `N(N+2)`.
    pub fn num_angles(self) -> usize {
        let n = self.0 as usize;
        n * (n + 2)
    }

    /// Number of ordinates per octant: `N(N+2)/8`.
    pub fn angles_per_octant(self) -> usize {
        self.num_angles() / 8
    }
}

/// A complete angular quadrature set.
#[derive(Debug, Clone)]
pub struct QuadratureSet {
    order: SnOrder,
    ordinates: Vec<Ordinate>,
}

impl QuadratureSet {
    /// Build the level-symmetric set of the given (even) order.
    ///
    /// # Panics
    /// Panics when `order` is odd or zero.
    pub fn level_symmetric(order: SnOrder) -> QuadratureSet {
        let n = order.0;
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "Sn order must be even and >= 2, got {n}"
        );
        let levels = level_cosines(n);
        let half = (n / 2) as usize;

        // First-octant ordinates: all (i, j, k) level triples with
        // i + j + k == half + 2 (1-based), i.e. the triangular arrangement.
        let mut first_octant: Vec<[f64; 3]> = Vec::with_capacity(order.angles_per_octant());
        for i in 1..=half {
            for j in 1..=half {
                for k in 1..=half {
                    if i + j + k == half + 2 {
                        first_octant.push([levels[i - 1], levels[j - 1], levels[k - 1]]);
                    }
                }
            }
        }
        debug_assert_eq!(first_octant.len(), order.angles_per_octant());

        let weight = 4.0 * std::f64::consts::PI / order.num_angles() as f64;
        let mut ordinates = Vec::with_capacity(order.num_angles());
        for oct in Octant::ALL {
            for base in &first_octant {
                ordinates.push(Ordinate {
                    dir: oct.apply(*base),
                    weight,
                });
            }
        }
        QuadratureSet { order, ordinates }
    }

    /// Convenience constructor from a plain even integer order.
    pub fn sn(order: u32) -> QuadratureSet {
        QuadratureSet::level_symmetric(SnOrder(order))
    }

    /// The order this set was built with.
    pub fn order(&self) -> SnOrder {
        self.order
    }

    /// All ordinates, indexed by [`AngleId`].
    pub fn ordinates(&self) -> &[Ordinate] {
        &self.ordinates
    }

    /// Number of ordinates.
    pub fn len(&self) -> usize {
        self.ordinates.len()
    }

    /// True when the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.ordinates.is_empty()
    }

    /// Ordinate for an angle id.
    #[inline]
    pub fn ordinate(&self, a: AngleId) -> Ordinate {
        self.ordinates[a.index()]
    }

    /// Direction unit vector for an angle id.
    #[inline]
    pub fn direction(&self, a: AngleId) -> [f64; 3] {
        self.ordinates[a.index()].dir
    }

    /// Iterate over `(AngleId, Ordinate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AngleId, Ordinate)> + '_ {
        self.ordinates
            .iter()
            .enumerate()
            .map(|(i, &o)| (AngleId(i as u32), o))
    }

    /// Angle ids whose direction lies in the given octant.
    pub fn angles_in_octant(&self, oct: Octant) -> Vec<AngleId> {
        self.iter()
            .filter(|(_, o)| o.octant() == oct)
            .map(|(a, _)| a)
            .collect()
    }

    /// Integrate a direction-dependent function over the sphere:
    /// `∑ w_a f(Ω_a)`.
    pub fn integrate(&self, mut f: impl FnMut([f64; 3]) -> f64) -> f64 {
        self.ordinates.iter().map(|o| o.weight * f(o.dir)).sum()
    }
}

/// Level cosines `μ_1 … μ_{N/2}` of the triangular arrangement.
fn level_cosines(n: u32) -> Vec<f64> {
    let half = (n / 2) as usize;
    if n == 2 {
        // Single level at the diagonal direction.
        return vec![1.0 / 3f64.sqrt()];
    }
    // Standard choice of the first level; any mu1 in (0, 1/sqrt(3))
    // yields a valid arrangement. 0.2 reproduces commonly tabulated
    // low-order LQn sets to within a few percent.
    let mu1_sq = if n <= 8 { 0.04 } else { 0.01 };
    let delta = 2.0 * (1.0 - 3.0 * mu1_sq) / (n as f64 - 2.0);
    (0..half)
        .map(|i| (mu1_sq + i as f64 * delta).sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn orders() -> Vec<u32> {
        vec![2, 4, 6, 8, 12, 16]
    }

    #[test]
    fn counts_match_formula() {
        for n in orders() {
            let q = QuadratureSet::sn(n);
            assert_eq!(q.len(), (n * (n + 2)) as usize, "S{n}");
        }
    }

    #[test]
    fn directions_are_unit_vectors() {
        for n in orders() {
            let q = QuadratureSet::sn(n);
            for (_, o) in q.iter() {
                let norm2: f64 = o.dir.iter().map(|c| c * c).sum();
                assert!((norm2 - 1.0).abs() < 1e-12, "S{n} dir {:?}", o.dir);
            }
        }
    }

    #[test]
    fn weights_sum_to_4pi() {
        for n in orders() {
            let q = QuadratureSet::sn(n);
            let total: f64 = q.ordinates().iter().map(|o| o.weight).sum();
            assert!((total - 4.0 * PI).abs() < 1e-10, "S{n}: {total}");
        }
    }

    #[test]
    fn first_moment_vanishes() {
        for n in orders() {
            let q = QuadratureSet::sn(n);
            for axis in 0..3 {
                let m = q.integrate(|d| d[axis]);
                assert!(m.abs() < 1e-10, "S{n} axis {axis}: {m}");
            }
        }
    }

    #[test]
    fn second_moment_is_isotropic() {
        // ∑ w Ω_x² == ∑ w Ω_y² == ∑ w Ω_z² == 4π/3 by symmetry of the
        // triangular arrangement (exact for level-symmetric placements).
        for n in orders() {
            let q = QuadratureSet::sn(n);
            let trace: f64 = (0..3).map(|ax| q.integrate(|d| d[ax] * d[ax])).sum();
            assert!((trace - 4.0 * PI).abs() < 1e-10);
            for axis in 0..3 {
                let m = q.integrate(|d| d[axis] * d[axis]);
                assert!(
                    (m - 4.0 * PI / 3.0).abs() < 1e-9,
                    "S{n} axis {axis}: {m} vs {}",
                    4.0 * PI / 3.0
                );
            }
        }
    }

    #[test]
    fn cross_moments_vanish() {
        for n in orders() {
            let q = QuadratureSet::sn(n);
            for (a, b) in [(0, 1), (0, 2), (1, 2)] {
                let m = q.integrate(|d| d[a] * d[b]);
                assert!(m.abs() < 1e-10, "S{n} axes {a}{b}: {m}");
            }
        }
    }

    #[test]
    fn octants_are_balanced() {
        for n in orders() {
            let q = QuadratureSet::sn(n);
            for oct in Octant::ALL {
                assert_eq!(
                    q.angles_in_octant(oct).len(),
                    q.order().angles_per_octant(),
                    "S{n} octant {:?}",
                    oct
                );
            }
        }
    }

    #[test]
    fn s2_is_diagonal() {
        let q = QuadratureSet::sn(2);
        let inv_sqrt3 = 1.0 / 3f64.sqrt();
        for (_, o) in q.iter() {
            for c in o.dir {
                assert!((c.abs() - inv_sqrt3).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn no_duplicate_directions() {
        for n in orders() {
            let q = QuadratureSet::sn(n);
            for i in 0..q.len() {
                for j in (i + 1)..q.len() {
                    let a = q.direction(AngleId(i as u32));
                    let b = q.direction(AngleId(j as u32));
                    let d2: f64 = (0..3).map(|ax| (a[ax] - b[ax]).powi(2)).sum();
                    assert!(d2 > 1e-12, "S{n}: duplicate ordinates {i} and {j}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_order_rejected() {
        QuadratureSet::sn(3);
    }

    #[test]
    fn integrate_constant_is_4pi() {
        let q = QuadratureSet::sn(4);
        assert!((q.integrate(|_| 1.0) - 4.0 * PI).abs() < 1e-10);
    }
}
