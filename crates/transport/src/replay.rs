//! The compiled coarse-graph replay plan and its lifecycle (paper
//! §V-E). See `docs/replay.md` for the end-to-end story.
//!
//! The first fine-grained (DAG-driven) sweep iteration records, per
//! `(patch, angle)` task, the vertex clusters its `compute()` calls
//! formed ([`ClusterTrace`]). Because the mesh — and hence every sweep
//! DAG — is constant across source iterations, those clusters can be
//! cached as a **coarsened task graph** and replayed verbatim from the
//! second iteration on: each coarse vertex executes its recorded vertex
//! list in order, and each outgoing coarse edge becomes exactly one
//! stream, so iterations ≥ 2 pay no per-vertex in-degree bookkeeping
//! and no priority recomputation.
//!
//! The plan has a real lifecycle, not just a per-solve existence:
//!
//! * **Record** — one [`ClusterTrace`] per *canonical* angle (under
//!   `share_octant_dags` all member angles of an octant share one DAG,
//!   so one trace per octant is recorded and replayed for every
//!   member, cutting plan memory and build time `num_angles/8`-fold);
//! * **Compile** — [`build_plan`] runs
//!   [`jsweep_graph::coarse::build_coarse`] per canonical angle (the
//!   Theorem-1 acyclicity check on the *real* solver traces) and
//!   resolves every coarse-edge item `P(ce)` down to two static
//!   indices: the destination's incoming face-flux slot (shipped on
//!   the wire, so the receiver does no adjacency scan) and the
//!   source-side staging slot in the remote-edge CSR;
//! * **Cache** — a [`PlanCache`] keyed by [`PlanKey`] (mesh generation
//!   stamp + a structural fingerprint of the compiled problem + grain)
//!   carries plans across `solve_parallel_cached` calls, so multi-solve
//!   workloads record once and replay from iteration 1 afterwards;
//! * **Invalidate** — every mesh carries a process-unique
//!   [`generation stamp`](jsweep_mesh::SweepTopology::generation)
//!   bumped by refinement (any topology-producing operation draws a
//!   fresh stamp). The stamp is part of the cache key *and* stored in
//!   the plan, so a stale plan is rebuilt, never replayed.

use bytes::Bytes;
use jsweep_graph::coarse::{build_coarse, ClusterTrace, CoarsenedTask};
use jsweep_graph::SweepProblem;
use jsweep_mesh::{PatchId, SweepTopology};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-task trace bins filled during the recording iteration, indexed
/// by [`SweepProblem::tid`] (`angle * num_patches + patch`). A slot is
/// `None` until its `(patch, angle)` program completes and deposits;
/// only canonical-angle tasks record (octant members share the
/// canonical trace), so non-canonical slots stay `None`.
pub type TraceBins = Vec<Mutex<Option<ClusterTrace>>>;

/// Allocate empty trace bins for every `(patch, angle)` task.
pub fn new_trace_bins(num_tasks: usize) -> TraceBins {
    (0..num_tasks).map(|_| Mutex::new(None)).collect()
}

/// One item of a replayed coarse edge: which face-flux value travels,
/// and where it lands. Both indices are resolved once at plan-build
/// time — the replay hot path derives nothing per iteration.
#[derive(Debug, Clone, Copy)]
pub struct ReplayItem {
    /// Incoming face-flux slot on the destination patch:
    /// `local_cell * max_faces + face`, where `face` is the upwind face
    /// of the destination cell that touches the producer. Shipped on
    /// the wire, so the receiver writes `face_flux[dst_slot * groups ..]`
    /// directly instead of scanning the destination cell's faces.
    pub dst_slot: u32,
    /// Index of the fine remote edge in the source subgraph's remote
    /// CSR — the slot of the staged outgoing face-flux values.
    pub rem_idx: u32,
}

/// One outgoing coarse edge of a coarse vertex: a single stream to
/// `(patch, same angle)` carrying the combined items `P(ce)`.
#[derive(Debug, Clone)]
pub struct ReplayEmit {
    /// Patch owning the target coarse vertex.
    pub patch: PatchId,
    /// Target cluster index within that patch's coarsened task.
    pub cluster: u32,
    /// The coarse edge's items, in deterministic (source vertex,
    /// destination cell) order.
    pub items: Vec<ReplayItem>,
    /// Pre-packed stream skeleton: the coarse stream's constant prefix
    /// `u32 dst_cluster, u32 item_count, item_count × u32 dst_slot`,
    /// built once at plan-compile time (see [`ReplayEmit::skeleton`]).
    /// Replay-side packing is one `memcpy` of this template followed
    /// by the per-item `f64` flux writes — no per-item header packing
    /// in the hot path.
    pub skeleton: Bytes,
}

impl ReplayEmit {
    /// Build a coarse edge's pre-packed stream skeleton from its
    /// resolved items. The flux block that follows on the wire is
    /// groups-dependent (physics), so the skeleton deliberately stops
    /// at the slot words — one plan stays valid for any group count.
    pub fn skeleton(cluster: u32, items: &[ReplayItem]) -> Bytes {
        let mut w = jsweep_comm::pack::Writer::with_capacity(8 + items.len() * 4);
        w.put_u32(cluster);
        w.put_u32(items.len() as u32);
        for item in items {
            w.put_u32(item.dst_slot);
        }
        w.finish()
    }
}

/// The replayable form of one `(patch, angle)` task: the coarsened
/// task graph plus its pre-resolved stream emissions. Under octant
/// sharing all member angles of an octant hold the same `Arc`.
#[derive(Debug, Clone)]
pub struct ReplayTask {
    /// The coarsened task (clusters, coarse in-degrees, internal coarse
    /// edges) driving [`jsweep_graph::coarse::CoarseSweepState`].
    pub coarse: CoarsenedTask,
    /// `emits[cv]`: the streams emitted when coarse vertex `cv`
    /// finishes — one per outgoing remote coarse edge.
    pub emits: Vec<Vec<ReplayEmit>>,
}

impl ReplayTask {
    /// Estimated heap footprint of this task's plan data.
    fn memory_bytes(&self) -> usize {
        let emits: usize = self
            .emits
            .iter()
            .map(|per_cv| {
                per_cv.len() * std::mem::size_of::<ReplayEmit>()
                    + per_cv
                        .iter()
                        .map(|e| {
                            e.items.len() * std::mem::size_of::<ReplayItem>() + e.skeleton.len()
                        })
                        .sum::<usize>()
            })
            .sum();
        self.coarse.memory_bytes()
            + self.emits.len() * std::mem::size_of::<Vec<ReplayEmit>>()
            + emits
    }
}

/// The full coarse-graph replay plan of a sweep problem, built once
/// after the recording iteration and shared by all later iterations —
/// and, through a [`PlanCache`], by all later solves of the same
/// problem shape.
#[derive(Debug)]
pub struct CoarsePlan {
    /// `tasks[angle][patch]`; octant members share `Arc`s with their
    /// canonical angle.
    pub tasks: Vec<Vec<Arc<ReplayTask>>>,
    /// Host seconds spent coarsening (the paper reports this build cost
    /// staying below one DAG-driven iteration).
    pub build_seconds: f64,
    /// Generation stamp of the mesh the traces were recorded on (see
    /// [`jsweep_mesh::SweepTopology::generation`]). A plan whose stamp
    /// differs from the problem's mesh is stale and must be rebuilt,
    /// never replayed.
    pub mesh_generation: u64,
}

impl CoarsePlan {
    /// Total coarse vertices across all tasks (octant-shared tasks are
    /// counted once per member angle — this is the scheduling workload,
    /// not the memory footprint).
    pub fn num_coarse_vertices(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(|per_patch| per_patch.iter())
            .map(|t| t.coarse.num_clusters())
            .sum()
    }

    /// Number of distinct compiled [`ReplayTask`] allocations — with
    /// octant sharing, `num_patches * num_octants` instead of
    /// `num_patches * num_angles`.
    pub fn num_distinct_tasks(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for per_patch in &self.tasks {
            for t in per_patch {
                seen.insert(Arc::as_ptr(t));
            }
        }
        seen.len()
    }

    /// Estimated heap footprint of the plan. Shared (octant-canonical)
    /// tasks are counted once, so this is what caching the plan
    /// actually costs.
    pub fn memory_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut total = std::mem::size_of::<CoarsePlan>();
        for per_patch in &self.tasks {
            total += per_patch.len() * std::mem::size_of::<Arc<ReplayTask>>();
            for t in per_patch {
                if seen.insert(Arc::as_ptr(t)) {
                    total += std::mem::size_of::<ReplayTask>() + t.memory_bytes();
                }
            }
        }
        total
    }
}

/// Drain the recorded traces out of `bins` into `traces[angle][patch]`
/// order (the layout [`build_plan`] consumes). Only canonical angles
/// record, so non-canonical entries come back empty; [`build_plan`]
/// reads the canonical entry for every octant member. Tasks that never
/// deposited (empty patches) yield an empty trace.
pub fn collect_traces(problem: &SweepProblem, bins: &TraceBins) -> Vec<Vec<ClusterTrace>> {
    (0..problem.num_angles)
        .map(|a| {
            (0..problem.num_patches())
                .map(|p| {
                    if problem.canonical_angle(a) == a {
                        bins[problem.tid(p, a)].lock().take().unwrap_or_default()
                    } else {
                        ClusterTrace::default()
                    }
                })
                .collect()
        })
        .collect()
}

/// Compile the coarse-graph replay plan from the recording iteration's
/// traces (`traces[angle][patch]`; only canonical-angle entries are
/// read — octant members replay their canonical angle's trace, which is
/// valid because they share the same DAG).
///
/// Runs the Theorem-1 topological check once per canonical angle (via
/// [`build_coarse`], which panics on a cyclic coarse graph — a
/// scheduler bug) and resolves each coarse-edge item to its two static
/// slots: the staging slot in the source subgraph's remote-edge CSR and
/// the incoming face-flux slot on the destination patch (which is why
/// compilation needs the mesh).
pub fn build_plan<T: SweepTopology + ?Sized>(
    problem: &SweepProblem,
    traces: &[Vec<ClusterTrace>],
    mesh: &T,
) -> CoarsePlan {
    assert_eq!(traces.len(), problem.num_angles);
    let t0 = std::time::Instant::now();
    let mf = mesh.num_faces(0) as u32;
    let mut tasks: Vec<Vec<Arc<ReplayTask>>> = Vec::with_capacity(problem.num_angles);
    for (a, angle_traces) in traces.iter().enumerate() {
        let c = problem.canonical_angle(a);
        if c < a {
            // Octant member: share the canonical angle's compiled tasks.
            let shared = tasks[c].clone();
            tasks.push(shared);
            continue;
        }
        let subs = &problem.subs[a];
        let per_patch: Vec<Arc<ReplayTask>> = build_coarse(subs, angle_traces)
            .into_iter()
            .enumerate()
            .map(|(p, coarse)| {
                let sub = &subs[p];
                let emits: Vec<Vec<ReplayEmit>> = coarse
                    .remote
                    .iter()
                    .map(|edges| {
                        edges
                            .iter()
                            .map(|e| {
                                let items: Vec<ReplayItem> = e
                                    .items
                                    .iter()
                                    .map(|&(v, cell)| resolve_item(problem, sub, mesh, mf, v, cell))
                                    .collect();
                                let skeleton = ReplayEmit::skeleton(e.cluster, &items);
                                ReplayEmit {
                                    patch: e.patch,
                                    cluster: e.cluster,
                                    items,
                                    skeleton,
                                }
                            })
                            .collect()
                    })
                    .collect();
                Arc::new(ReplayTask { coarse, emits })
            })
            .collect();
        tasks.push(per_patch);
    }
    CoarsePlan {
        tasks,
        build_seconds: t0.elapsed().as_secs_f64(),
        mesh_generation: problem.mesh_generation,
    }
}

/// Resolve one coarse-edge item `(source local vertex, destination
/// global cell)` to its wire/staging form (see [`ReplayItem`]).
fn resolve_item<T: SweepTopology + ?Sized>(
    problem: &SweepProblem,
    sub: &jsweep_graph::Subgraph,
    mesh: &T,
    mf: u32,
    v: u32,
    cell: u32,
) -> ReplayItem {
    let src_cell = sub.cells[v as usize] as usize;
    let local = sub
        .remote_succ(v)
        .iter()
        .position(|re| re.cell == cell)
        .expect("coarse-edge item without fine edge");
    // The upwind face of the destination cell that touches the
    // producer — the scan `ingest_item` used to run per item per
    // iteration, now run once per item per plan build.
    let dst = cell as usize;
    let face = jsweep_mesh::face_toward(mesh, dst, src_cell)
        .expect("coarse-edge item with non-adjacent cells") as u32;
    let dst_li = problem.patches.local_index(dst) as u32;
    ReplayItem {
        dst_slot: dst_li * mf + face,
        rem_idx: sub.rem_off[v as usize] + local as u32,
    }
}

/// Identity of a compiled plan: everything replay validity depends on.
///
/// * `mesh_generation` — the topology stamp (process-unique; refinement
///   always yields a fresh one, so stale plans can never be looked up);
/// * `fingerprint` — the problem's
///   [`dag_fingerprint`](SweepProblem::dag_fingerprint): an FNV-1a
///   digest of the compiled structure (decomposition,
///   per-canonical-angle subgraph edges, octant-sharing layout,
///   cycle-breaker sets), computed once at `SweepProblem::build` time,
///   which distinguishes different problems built over the *same*
///   mesh;
/// * `grain` — the clustering grain the trace was recorded at.
///
/// Materials, sources and kernels deliberately do not appear: the plan
/// is pure scheduling state, valid for any physics on the same DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    mesh_generation: u64,
    fingerprint: u64,
    grain: u32,
}

/// The [`PlanKey`] of a compiled problem at a clustering grain. O(1):
/// both identity components were digested at `SweepProblem::build`
/// time, so solve hot paths pay no per-solve DAG traversal for cache
/// lookups.
pub fn plan_key(problem: &SweepProblem, grain: usize) -> PlanKey {
    PlanKey {
        mesh_generation: problem.mesh_generation,
        fingerprint: problem.dag_fingerprint,
        grain: grain as u32,
    }
}

impl PlanKey {
    /// The mesh generation stamp this key binds to.
    pub fn mesh_generation(&self) -> u64 {
        self.mesh_generation
    }
}

/// Automatic eviction policy of a [`PlanCache`].
///
/// Because generation stamps are process-unique and never reused, a
/// plan whose mesh has been refined away can never be looked up again,
/// yet it still occupies memory — long AMR-style runs need *some*
/// bound. The automatic policies make such runs safe by default;
/// [`PlanCache::retain_generations`] remains the precise manual hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Never evict automatically (the pre-existing behaviour): callers
    /// manage growth with [`PlanCache::retain_generations`] /
    /// [`PlanCache::clear`], watching [`PlanCache::memory_bytes`].
    #[default]
    Manual,
    /// Bound the cache by estimated plan bytes
    /// ([`CoarsePlan::memory_bytes`], shared tasks counted once per
    /// plan): on every insert, least-recently-*used* plans are evicted
    /// *before* the new plan enters, until it fits. The cache is never
    /// observed holding both the victims and the new plan, and the
    /// most recently inserted plan always survives, even if it alone
    /// exceeds the bound.
    LruBytes {
        /// Total estimated footprint to keep the cache under.
        max_bytes: usize,
    },
    /// Keep only plans recorded on the newest `keep` distinct mesh
    /// generations. The natural policy for refinement loops: each
    /// refinement's plans supersede the previous mesh's, which can
    /// never be looked up again.
    NewestGenerations {
        /// Number of distinct (newest) mesh generations to retain.
        keep: usize,
    },
}

#[derive(Debug)]
struct CacheEntry {
    plan: Arc<CoarsePlan>,
    /// `plan.memory_bytes()`, computed once at insert.
    bytes: usize,
    /// Logical access clock value of the last `get`/`insert` touch.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    plans: HashMap<PlanKey, CacheEntry>,
    /// Logical access clock (bumped on every touch).
    tick: u64,
    /// Plans dropped by the automatic policy since construction.
    evicted: u64,
    /// `get` calls that found their plan.
    hits: u64,
    /// `get` calls that found nothing (each typically buys a recording
    /// iteration plus a plan compile downstream).
    misses: u64,
}

/// Cross-solve cache of compiled [`CoarsePlan`]s, keyed by [`PlanKey`].
///
/// Hand one to `solve_parallel_cached` and multi-solve workloads (time
/// steps, eigenvalue iterations, many material sets) pay the recording
/// iteration and plan compile once: every later solve of the same
/// problem shape starts replaying from iteration 1. A refined or
/// rebuilt mesh carries a fresh generation stamp, so its solves miss
/// the cache and record fresh — stale plans are structurally
/// unreachable.
///
/// **Growth contract:** by default ([`EvictionPolicy::Manual`]) the
/// cache never evicts on its own and refinement loops should call
/// [`PlanCache::retain_generations`] (or [`PlanCache::clear`]) after
/// each refinement, watching [`PlanCache::memory_bytes`]. Construct
/// with [`PlanCache::with_policy`] for an automatic bound — LRU by
/// bytes, or keep-newest-N-generations.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    policy: EvictionPolicy,
}

impl PlanCache {
    /// An empty cache that never evicts automatically
    /// ([`EvictionPolicy::Manual`]).
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache governed by the given automatic eviction policy
    /// (enforced after every [`PlanCache::insert`]).
    ///
    /// Panics on `NewestGenerations { keep: 0 }`: a cache that may
    /// keep nothing is a configuration error, not a policy.
    pub fn with_policy(policy: EvictionPolicy) -> PlanCache {
        if let EvictionPolicy::NewestGenerations { keep } = policy {
            assert!(keep >= 1, "NewestGenerations must keep at least one");
        }
        PlanCache {
            inner: Mutex::new(CacheInner::default()),
            policy,
        }
    }

    /// The eviction policy this cache was built with.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Look up a compiled plan (touches it for LRU purposes and the
    /// hit/miss counters).
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CoarsePlan>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.plans.get_mut(key).map(|e| {
            e.last_used = tick;
            e.plan.clone()
        });
        match found {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        found
    }

    /// Store a compiled plan, enforcing the eviction policy
    /// **atomically with the insertion** (one lock acquisition): under
    /// [`EvictionPolicy::LruBytes`] the victims are evicted *before*
    /// the new plan enters, so no concurrent [`PlanCache::get`] /
    /// [`PlanCache::memory_bytes`] can observe the cache holding both
    /// — insertion can never transiently exceed the byte bound. The
    /// plan just inserted counts as most recently used and is never
    /// the one evicted (a sole plan survives even a zero budget).
    pub fn insert(&self, key: PlanKey, plan: Arc<CoarsePlan>) {
        self.store(key, plan, false);
    }

    /// [`PlanCache::insert`] that refuses to evict: the plan is stored
    /// only if the policy admits it without dropping any other entry
    /// (same-key replacement is always allowed). Returns whether the
    /// plan was stored. This is the right call for opportunistic
    /// inserts — e.g. a plan compiled on a solve's final iteration,
    /// which the solve itself will never replay: caching it is a bet
    /// on a future solve, and that bet must not thrash plans other
    /// requests are actively hitting out of an at-capacity
    /// [`EvictionPolicy::LruBytes`] cache.
    pub fn insert_opportunistic(&self, key: PlanKey, plan: Arc<CoarsePlan>) -> bool {
        self.store(key, plan, true)
    }

    fn store(&self, key: PlanKey, plan: Arc<CoarsePlan>, opportunistic: bool) -> bool {
        let bytes = plan.memory_bytes();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let last_used = inner.tick;
        // Same-key replacement frees its own bytes first and never
        // needs headroom beyond the size delta.
        let replaced = inner.plans.remove(&key);
        if let EvictionPolicy::LruBytes { max_bytes } = self.policy {
            let mut total: usize = inner.plans.values().map(|e| e.bytes).sum();
            if opportunistic && total + bytes > max_bytes {
                // Would need an eviction (or exceed the budget while
                // alone): decline and keep the cache exactly as found.
                if let Some(e) = replaced {
                    inner.plans.insert(key, e);
                }
                return false;
            }
            // Evict-before-insert: least-recently-used entries leave
            // until the newcomer fits, stopping (at the latest) when it
            // would be alone.
            while total + bytes > max_bytes && !inner.plans.is_empty() {
                let oldest = inner
                    .plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&k, _)| k)
                    .expect("non-empty cache");
                let e = inner.plans.remove(&oldest).expect("key just observed");
                total -= e.bytes;
                inner.evicted += 1;
            }
        }
        inner.plans.insert(
            key,
            CacheEntry {
                plan,
                bytes,
                last_used,
            },
        );
        if let EvictionPolicy::NewestGenerations { keep } = self.policy {
            // Superseded generations are structurally unreachable, so
            // dropping them is hygiene, not thrash — the opportunistic
            // path applies it too.
            let mut gens: Vec<u64> = inner.plans.keys().map(|k| k.mesh_generation).collect();
            gens.sort_unstable();
            gens.dedup();
            if gens.len() > keep {
                let cutoff = gens[gens.len() - keep];
                let before = inner.plans.len();
                inner.plans.retain(|k, _| k.mesh_generation >= cutoff);
                inner.evicted += (before - inner.plans.len()) as u64;
            }
        }
        true
    }

    /// Plans dropped by the automatic policy so far (manual
    /// [`PlanCache::retain_generations`]/[`PlanCache::clear`] drops are
    /// not counted).
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// [`PlanCache::get`] calls that found their plan, since
    /// construction.
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// [`PlanCache::get`] calls that found nothing, since construction.
    pub fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().plans.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().plans.is_empty()
    }

    /// Estimated heap footprint of every cached plan (shared tasks
    /// counted once per plan; per-plan sizes are snapshotted at
    /// insert).
    pub fn memory_bytes(&self) -> usize {
        self.inner.lock().plans.values().map(|e| e.bytes).sum()
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        self.inner.lock().plans.clear();
    }

    /// Keep only plans recorded on the given mesh generations; returns
    /// the number of plans evicted. The manual eviction hook for
    /// refinement loops: after building a refined mesh, pass the
    /// generations of every mesh still in use and the superseded plans
    /// are dropped (their stamps can never be looked up again — see
    /// the growth contract above). Works under any policy.
    pub fn retain_generations(&self, live: &[u64]) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.plans.len();
        inner.plans.retain(|k, _| live.contains(&k.mesh_generation));
        before - inner.plans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_graph::problem::ProblemOptions;
    use jsweep_quadrature::QuadratureSet;

    fn build_problem(share: bool) -> (jsweep_mesh::StructuredMesh, SweepProblem) {
        let m = jsweep_mesh::StructuredMesh::unit(4, 4, 4);
        let ps = jsweep_mesh::partition::decompose_structured(&m, (2, 2, 2), 2);
        let q = QuadratureSet::sn(4);
        let prob = SweepProblem::build(
            &m,
            ps,
            &q,
            &ProblemOptions {
                share_octant_dags: share,
                ..Default::default()
            },
        );
        (m, prob)
    }

    #[test]
    fn empty_bins_collect_to_default_traces() {
        let (_, prob) = build_problem(false);
        let bins = new_trace_bins(prob.num_tasks());
        let traces = collect_traces(&prob, &bins);
        assert_eq!(traces.len(), prob.num_angles);
        assert!(traces
            .iter()
            .all(|per_patch| per_patch.iter().all(|t| t.clusters.is_empty())));
    }

    #[test]
    fn plan_key_is_stable_and_grain_sensitive() {
        let (_, prob) = build_problem(true);
        let a = plan_key(&prob, 16);
        let b = plan_key(&prob, 16);
        assert_eq!(a, b, "same problem, same grain, same key");
        assert_ne!(a, plan_key(&prob, 32), "grain is part of the key");
    }

    #[test]
    fn plan_key_distinguishes_mesh_generations() {
        let (_, p1) = build_problem(true);
        let (_, p2) = build_problem(true);
        // Identical shape, but independently built meshes never share a
        // generation stamp — conservative, and what makes refinement
        // invalidation structurally sound.
        assert_ne!(plan_key(&p1, 16), plan_key(&p2, 16));
        assert_eq!(plan_key(&p1, 16).mesh_generation(), p1.mesh_generation);
    }

    fn dummy_plan(generation: u64) -> Arc<CoarsePlan> {
        Arc::new(CoarsePlan {
            tasks: Vec::new(),
            build_seconds: 0.0,
            mesh_generation: generation,
        })
    }

    #[test]
    fn emit_skeleton_prefix_matches_wire_layout() {
        let items = vec![
            ReplayItem {
                dst_slot: 7,
                rem_idx: 0,
            },
            ReplayItem {
                dst_slot: 9,
                rem_idx: 3,
            },
        ];
        let sk = ReplayEmit::skeleton(5, &items);
        assert_eq!(sk.len(), 8 + 4 * items.len());
        let mut r = jsweep_comm::pack::Reader::new(sk);
        assert_eq!(r.get_u32(), 5, "dst_cluster");
        assert_eq!(r.get_u32(), 2, "item_count");
        assert_eq!(r.get_u32(), 7);
        assert_eq!(r.get_u32(), 9);
        assert!(r.is_exhausted(), "skeleton stops before the flux block");
    }

    #[test]
    fn lru_bytes_policy_evicts_least_recently_used() {
        let (_, prob) = build_problem(true);
        let unit = dummy_plan(prob.mesh_generation).memory_bytes();
        let cache = PlanCache::with_policy(EvictionPolicy::LruBytes {
            max_bytes: 2 * unit,
        });
        let keys = [plan_key(&prob, 8), plan_key(&prob, 16), plan_key(&prob, 32)];
        cache.insert(keys[0], dummy_plan(prob.mesh_generation));
        cache.insert(keys[1], dummy_plan(prob.mesh_generation));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[2], dummy_plan(prob.mesh_generation));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&keys[0]).is_some(), "recently used survives");
        assert!(cache.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&keys[2]).is_some(), "fresh insert survives");
        assert!(cache.memory_bytes() <= 2 * unit);
    }

    #[test]
    fn lru_bytes_never_evicts_the_only_plan() {
        let (_, prob) = build_problem(true);
        let cache = PlanCache::with_policy(EvictionPolicy::LruBytes { max_bytes: 0 });
        cache.insert(plan_key(&prob, 16), dummy_plan(prob.mesh_generation));
        assert_eq!(cache.len(), 1, "sole plan survives a zero budget");
    }

    #[test]
    fn opportunistic_insert_declines_instead_of_evicting() {
        let (_, prob) = build_problem(true);
        let unit = dummy_plan(prob.mesh_generation).memory_bytes();
        let cache = PlanCache::with_policy(EvictionPolicy::LruBytes { max_bytes: unit });
        let hot = plan_key(&prob, 8);
        cache.insert(hot, dummy_plan(prob.mesh_generation));
        // No headroom: the opportunistic insert must leave the
        // resident plan alone rather than thrash it.
        assert!(!cache.insert_opportunistic(plan_key(&prob, 16), dummy_plan(prob.mesh_generation)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.get(&hot).is_some(), "resident plan untouched");
        // Same-key replacement is always admitted.
        assert!(cache.insert_opportunistic(hot, dummy_plan(prob.mesh_generation)));
        assert_eq!(cache.len(), 1);
        // With headroom, the opportunistic insert stores normally.
        let roomy = PlanCache::with_policy(EvictionPolicy::LruBytes {
            max_bytes: 2 * unit,
        });
        roomy.insert(hot, dummy_plan(prob.mesh_generation));
        assert!(roomy.insert_opportunistic(plan_key(&prob, 16), dummy_plan(prob.mesh_generation)));
        assert_eq!(roomy.len(), 2);
        // Under Manual policy it is a plain insert.
        let manual = PlanCache::new();
        assert!(manual.insert_opportunistic(hot, dummy_plan(prob.mesh_generation)));
        assert_eq!(manual.len(), 1);
    }

    #[test]
    fn insert_never_exceeds_budget_even_transiently() {
        // Evict-before-insert means the byte total observed through
        // the public API is <= max_bytes after every mutation (sole
        // oversized plan excepted) — including a same-key replacement
        // that grows.
        let (_, prob) = build_problem(true);
        let unit = dummy_plan(prob.mesh_generation).memory_bytes();
        let cache = PlanCache::with_policy(EvictionPolicy::LruBytes {
            max_bytes: 3 * unit,
        });
        for (i, grain) in [8usize, 16, 32].iter().enumerate() {
            cache.insert(plan_key(&prob, *grain), dummy_plan(prob.mesh_generation));
            assert_eq!(cache.len(), i + 1);
            assert!(cache.memory_bytes() <= 3 * unit);
        }
        // A fourth distinct key evicts exactly one victim first.
        cache.insert(plan_key(&prob, 64), dummy_plan(prob.mesh_generation));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.memory_bytes() <= 3 * unit);
        // Same-key replacement does not count its own old bytes
        // against the headroom.
        cache.insert(plan_key(&prob, 64), dummy_plan(prob.mesh_generation));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1, "replacement evicts nothing");
    }

    #[test]
    fn newest_generations_policy_drops_superseded_meshes() {
        // Two independently built problems: strictly increasing
        // generation stamps.
        let (_, old) = build_problem(true);
        let (_, new) = build_problem(true);
        assert!(new.mesh_generation > old.mesh_generation);
        let cache = PlanCache::with_policy(EvictionPolicy::NewestGenerations { keep: 1 });
        cache.insert(plan_key(&old, 8), dummy_plan(old.mesh_generation));
        cache.insert(plan_key(&old, 16), dummy_plan(old.mesh_generation));
        assert_eq!(cache.len(), 2, "same generation: nothing to evict");
        cache.insert(plan_key(&new, 16), dummy_plan(new.mesh_generation));
        assert_eq!(cache.len(), 1, "old generation dropped wholesale");
        assert!(cache.get(&plan_key(&new, 16)).is_some());
        assert_eq!(cache.evictions(), 2);
        // The manual hook still works under a policy.
        assert_eq!(cache.retain_generations(&[]), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_round_trips_plans() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let (_, prob) = build_problem(true);
        let key = plan_key(&prob, 16);
        assert!(cache.get(&key).is_none());
        let plan = Arc::new(CoarsePlan {
            tasks: Vec::new(),
            build_seconds: 0.0,
            mesh_generation: prob.mesh_generation,
        });
        cache.insert(key, plan.clone());
        assert_eq!(cache.len(), 1);
        let got = cache.get(&key).expect("cached plan");
        assert!(Arc::ptr_eq(&got, &plan));
        cache.clear();
        assert!(cache.is_empty());
    }
}
