//! Cross-crate integration tests: the full JSweep stack (mesh →
//! decomposition → DAG → runtime → physics) against the serial golden
//! solver, across mesh families, kernels, decompositions and
//! termination detectors.

use jsweep::prelude::*;
use jsweep::transport::kobayashi;
use std::sync::Arc;

fn assert_flux_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * y.abs().max(1e-30),
            "flux mismatch at {i}: {x} vs {y}"
        );
    }
}

fn config() -> SnConfig {
    SnConfig {
        max_iterations: 6,
        tolerance: 1e-10,
        grain: 32,
        workers_per_rank: 2,
        ..Default::default()
    }
}

#[test]
fn structured_three_ranks_matches_serial() {
    let mesh = Arc::new(StructuredMesh::unit(9, 9, 9));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        729,
        Material::uniform(1, 1.2, 0.6, 1.0),
    ));
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &config());
    let patches = decompose_structured(&mesh, (3, 3, 3), 3);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &config());
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
}

#[test]
fn kobayashi_parallel_matches_serial_dd() {
    let k = kobayashi::kobayashi(12, 0.5);
    let mesh = Arc::new(k.mesh);
    let mats = Arc::new(k.materials);
    let quad = QuadratureSet::sn(2);
    let mut cfg = config();
    cfg.kernel = KernelKind::DiamondDifference;
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &cfg);
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg);
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
}

#[test]
fn tet_ball_multigroup_matches_serial() {
    let mesh = Arc::new(jsweep::mesh::tetgen::ball(3, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material {
            sigma_t: vec![1.0, 2.0],
            sigma_s: vec![0.5, 0.8],
            source: vec![1.0, 0.5],
        },
    ));
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &config());
    let patches = decompose_unstructured(mesh.as_ref(), 64, 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &config());
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
}

#[test]
fn safra_and_counting_terminations_agree() {
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let patches = decompose_structured(&mesh, (3, 3, 3), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let mut cfg_counting = config();
    cfg_counting.termination = TerminationKind::Counting;
    let mut cfg_safra = config();
    cfg_safra.termination = TerminationKind::Safra;
    let a = solve_parallel(
        mesh.clone(),
        prob.clone(),
        &quad,
        mats.clone(),
        &cfg_counting,
    );
    let b = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg_safra);
    assert_eq!(a.phi, b.phi, "termination protocol must not change physics");
}

#[test]
fn every_priority_strategy_gives_identical_flux() {
    // Scheduling order must never change the converged physics.
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.5, 2.0),
    ));
    let mut reference: Option<Vec<f64>> = None;
    for strat in [
        PriorityStrategy::Bfs,
        PriorityStrategy::Ldcp,
        PriorityStrategy::Slbd,
    ] {
        let patches = decompose_structured(&mesh, (3, 3, 3), 2);
        let prob = Arc::new(SweepProblem::build(
            mesh.as_ref(),
            patches,
            &quad,
            &ProblemOptions {
                vertex_strategy: strat,
                patch_strategy: strat,
                ..Default::default()
            },
        ));
        let sol = solve_parallel(mesh.clone(), prob, &quad, mats.clone(), &config());
        match &reference {
            None => reference = Some(sol.phi),
            Some(r) => assert_flux_close(&sol.phi, r, 1e-12),
        }
    }
}

#[test]
fn grain_does_not_change_physics() {
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.3, 1.0),
    ));
    let patches = decompose_structured(&mesh, (2, 2, 2), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let mut reference: Option<Vec<f64>> = None;
    for grain in [1, 7, 64, 100_000] {
        let mut cfg = config();
        cfg.grain = grain;
        let sol = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &cfg);
        match &reference {
            None => reference = Some(sol.phi),
            Some(r) => assert_flux_close(&sol.phi, r, 1e-12),
        }
    }
}

#[test]
fn worker_count_does_not_change_physics() {
    let mesh = Arc::new(jsweep::mesh::tetgen::cube(2, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let patches = decompose_unstructured(mesh.as_ref(), 12, 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let mut reference: Option<Vec<f64>> = None;
    for workers in [1, 2, 4] {
        let mut cfg = config();
        cfg.workers_per_rank = workers;
        let sol = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &cfg);
        match &reference {
            None => reference = Some(sol.phi),
            Some(r) => assert_eq!(&sol.phi, r, "workers={workers}"),
        }
    }
}

#[test]
fn coarse_replay_bit_identical_structured_both_terminations() {
    // §V-E golden: with coarsen on, iterations ≥ 2 run on the
    // coarsened graph, yet the flux must equal the fine path *bit for
    // bit* — the replay executes the same cells with the same inputs.
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    for termination in [TerminationKind::Counting, TerminationKind::Safra] {
        let mut fine_cfg = config();
        fine_cfg.termination = termination;
        fine_cfg.coarsen = false;
        let mut coarse_cfg = fine_cfg.clone();
        coarse_cfg.coarsen = true;
        let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
        let coarse = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &coarse_cfg);
        assert_eq!(
            fine.phi, coarse.phi,
            "replay flux must be bit-identical ({termination:?})"
        );
        assert_eq!(fine.iterations, coarse.iterations);
        assert!(coarse.iterations >= 2, "need replay iterations to compare");
        assert!(coarse.coarse_build_seconds > 0.0, "plan was never built");
        assert_eq!(fine.coarse_build_seconds, 0.0);
        // Both paths complete the same committed workload per
        // iteration. (Compute-*call* counts are scheduling noise —
        // spurious activations — and are compared in the bench, not
        // asserted here.)
        for (f, c) in fine.stats.iter().zip(&coarse.stats) {
            assert_eq!(f.work_done, c.work_done);
        }
    }
}

#[test]
fn coarse_replay_bit_identical_unstructured_both_terminations() {
    let mesh = Arc::new(jsweep::mesh::tetgen::ball(3, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material {
            sigma_t: vec![1.0, 2.0],
            sigma_s: vec![0.5, 0.8],
            source: vec![1.0, 0.5],
        },
    ));
    let patches = decompose_unstructured(mesh.as_ref(), 64, 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    for termination in [TerminationKind::Counting, TerminationKind::Safra] {
        let mut fine_cfg = config();
        fine_cfg.termination = termination;
        fine_cfg.coarsen = false;
        let mut coarse_cfg = fine_cfg.clone();
        coarse_cfg.coarsen = true;
        let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
        let coarse = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &coarse_cfg);
        assert_eq!(
            fine.phi, coarse.phi,
            "replay flux must be bit-identical on tets ({termination:?})"
        );
        assert!(coarse.iterations >= 2);
    }
}

#[test]
fn coarse_replay_bit_identical_deformed_with_cycle_breaking() {
    // Broken upwind edges must be excluded identically from the fine
    // DAG and the replayed coarse graph.
    use jsweep::mesh::deformed::DeformedMesh;
    let mesh = Arc::new(DeformedMesh::jittered(5, 5, 5, 0.3, 23));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        125,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let mut patches = jsweep::mesh::partition::rcb(mesh.as_ref(), 4);
    patches.distribute((0..4).map(|p| (p % 2) as u32).collect(), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            check_cycles: true,
            ..Default::default()
        },
    ));
    let mut fine_cfg = config();
    fine_cfg.break_cycles = true;
    fine_cfg.coarsen = false;
    let mut coarse_cfg = fine_cfg.clone();
    coarse_cfg.coarsen = true;
    let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
    let coarse = solve_parallel(mesh.clone(), prob, &quad, mats, &coarse_cfg);
    assert_eq!(fine.phi, coarse.phi);
}

#[test]
fn plan_lifecycle_golden_fresh_cached_octant_shared() {
    // The plan-lifecycle golden: phi must be bit-identical across
    // (a) a fresh plan recorded in this solve, (b) a cached plan served
    // by the PlanCache on a second solve (replay from iteration 1), and
    // (c) octant-shared canonical-trace replay (S4: 3 member angles per
    // octant replay one canonical trace) — all against the fine path.
    use jsweep::transport::PlanCache;
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(4); // 24 angles, 3 per octant
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let build = |share: bool| {
        Arc::new(SweepProblem::build(
            mesh.as_ref(),
            decompose_structured(&mesh, (3, 3, 3), 2),
            &quad,
            &ProblemOptions {
                share_octant_dags: share,
                ..Default::default()
            },
        ))
    };
    let shared = build(true);
    let owned = build(false);

    let mut fine_cfg = config();
    fine_cfg.coarsen = false;
    let fine = solve_parallel(mesh.clone(), shared.clone(), &quad, mats.clone(), &fine_cfg);

    // (a) fresh plan, octant-shared canonical traces (c).
    let fresh = solve_parallel(mesh.clone(), shared.clone(), &quad, mats.clone(), &config());
    assert_eq!(
        fine.phi, fresh.phi,
        "fresh plan must replay bit-identically"
    );
    assert!(!fresh.plan_from_cache);

    // (b) cached plan on the second solve.
    let cache = PlanCache::new();
    let first = jsweep::transport::solve_parallel_cached(
        mesh.clone(),
        shared.clone(),
        &quad,
        mats.clone(),
        &config(),
        &cache,
    );
    assert!(!first.plan_from_cache, "first solve records");
    assert!(first.coarse_build_seconds > 0.0);
    assert_eq!(cache.len(), 1);
    let second = jsweep::transport::solve_parallel_cached(
        mesh.clone(),
        shared.clone(),
        &quad,
        mats.clone(),
        &config(),
        &cache,
    );
    assert!(second.plan_from_cache, "second solve must hit the cache");
    assert_eq!(
        second.coarse_build_seconds, 0.0,
        "a cached plan is neither re-recorded nor re-compiled"
    );
    assert_eq!(fine.phi, first.phi);
    assert_eq!(
        fine.phi, second.phi,
        "cached replay must stay bit-identical"
    );
    assert_eq!(cache.len(), 1, "second solve must not insert a new plan");

    // Octant sharing vs per-angle plans: same physics, ~3x less plan
    // memory at S4 (one compiled task set per octant instead of per
    // angle).
    let unshared = solve_parallel(mesh.clone(), owned.clone(), &quad, mats.clone(), &config());
    assert_eq!(fine.phi, unshared.phi);
    let traces_shared = jsweep::transport::record_cluster_traces(
        mesh.clone(),
        shared.clone(),
        &quad,
        mats.clone(),
        &config(),
    );
    let traces_owned = jsweep::transport::record_cluster_traces(
        mesh.clone(),
        owned.clone(),
        &quad,
        mats.clone(),
        &config(),
    );
    let plan_shared = jsweep::transport::replay::build_plan(&shared, &traces_shared, mesh.as_ref());
    let plan_owned = jsweep::transport::replay::build_plan(&owned, &traces_owned, mesh.as_ref());
    assert_eq!(plan_shared.num_distinct_tasks(), 8 * shared.num_patches());
    assert_eq!(plan_owned.num_distinct_tasks(), 24 * owned.num_patches());
    let ratio = plan_owned.memory_bytes() as f64 / plan_shared.memory_bytes() as f64;
    assert!(
        ratio > 2.5,
        "octant sharing should cut plan memory ~num_angles/8-fold, got {ratio:.2}x"
    );
}

#[test]
fn refinement_between_solves_rebuilds_the_plan() {
    // Generation-stamp invalidation: a refined mesh carries a fresh
    // stamp, so the rebuilt problem misses the cache and its solve
    // records a new plan instead of replaying the stale one.
    use jsweep::mesh::refine::refine_structured;
    use jsweep::transport::{solve_parallel_cached, PlanCache};
    let cache = PlanCache::new();
    let quad = QuadratureSet::sn(2);

    let coarse_mesh = Arc::new(StructuredMesh::unit(4, 4, 4));
    let mats = Arc::new(MaterialSet::homogeneous(
        64,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let prob = Arc::new(SweepProblem::build(
        coarse_mesh.as_ref(),
        decompose_structured(&coarse_mesh, (2, 2, 2), 2),
        &quad,
        &ProblemOptions::default(),
    ));
    let a = solve_parallel_cached(
        coarse_mesh.clone(),
        prob.clone(),
        &quad,
        mats,
        &config(),
        &cache,
    );
    assert!(!a.plan_from_cache);
    assert_eq!(cache.len(), 1);

    // Refine: 4^3 -> 8^3 cells, fresh generation stamp.
    let fine_mesh = Arc::new(refine_structured(&coarse_mesh));
    assert!(fine_mesh.generation() > coarse_mesh.generation());
    let fine_mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let fine_prob = Arc::new(SweepProblem::build(
        fine_mesh.as_ref(),
        decompose_structured(&fine_mesh, (4, 4, 4), 2),
        &quad,
        &ProblemOptions::default(),
    ));
    let b = solve_parallel_cached(
        fine_mesh.clone(),
        fine_prob.clone(),
        &quad,
        fine_mats.clone(),
        &config(),
        &cache,
    );
    assert!(
        !b.plan_from_cache,
        "refinement must invalidate: the refined solve records fresh"
    );
    assert!(b.coarse_build_seconds > 0.0, "a new plan was compiled");
    assert_eq!(
        cache.len(),
        2,
        "old and new plans coexist under distinct keys"
    );

    // And the refined problem's plan is genuinely reusable.
    let c = solve_parallel_cached(
        fine_mesh.clone(),
        fine_prob,
        &quad,
        fine_mats,
        &config(),
        &cache,
    );
    assert!(c.plan_from_cache);
    assert_eq!(b.phi, c.phi);

    // The superseded plan's generation can never be looked up again;
    // the eviction hook reclaims it for refinement loops.
    let evicted = cache.retain_generations(&[fine_mesh.generation()]);
    assert_eq!(evicted, 1, "exactly the stale coarse-mesh plan is dropped");
    assert_eq!(cache.len(), 1);
}

#[test]
fn des_and_threaded_replay_consume_identical_coarse_graphs() {
    // ROADMAP cross-check: des::simulate_coarse and the threaded replay
    // both consume build_coarse output. On the *same* solver-recorded
    // traces their compute-call accounting must agree: the DES executes
    // exactly one compute call per coarse vertex (plus one spurious
    // initial activation per task that starts with no ready cluster),
    // and the threaded plan schedules exactly the same coarse vertices.
    use jsweep::graph::coarse::{build_coarse, CoarsenedTask};
    use jsweep_des::simulate_coarse;
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        decompose_structured(&mesh, (4, 4, 4), 2),
        &quad,
        &ProblemOptions::default(),
    ));
    let mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let traces = jsweep::transport::record_cluster_traces(
        mesh.clone(),
        prob.clone(),
        &quad,
        mats,
        &config(),
    );

    let tasks: Vec<Vec<CoarsenedTask>> = (0..prob.num_angles)
        .map(|a| build_coarse(&prob.subs[a], &traces[a]))
        .collect();
    let total_clusters: usize = tasks
        .iter()
        .flat_map(|per_patch| per_patch.iter())
        .map(|t| t.num_clusters())
        .sum();
    let sourceless: usize = tasks
        .iter()
        .flat_map(|per_patch| per_patch.iter())
        .filter(|t| !t.in_degree.contains(&0))
        .count();

    let machine = MachineModel::cluster(2, 2);
    let des = simulate_coarse(&prob, &tasks, &machine, 32);
    assert_eq!(des.vertices, prob.total_vertices);
    // Every coarse vertex executes in exactly one productive compute
    // call; the only extra calls are spurious initial activations of
    // tasks that start with no ready cluster (at most one each, and
    // none when a task's inputs arrive before a worker claims it).
    assert!(
        (total_clusters..=total_clusters + sourceless).contains(&(des.compute_calls as usize)),
        "DES compute calls {} outside [{total_clusters}, {}]",
        des.compute_calls,
        total_clusters + sourceless
    );

    // The threaded plan compiled from the same traces replays exactly
    // the same coarse vertices, one per productive compute call (the
    // replay program asserts clusters are non-empty).
    let plan = jsweep::transport::replay::build_plan(&prob, &traces, mesh.as_ref());
    assert_eq!(plan.num_coarse_vertices(), total_clusters);
}

#[test]
fn deformed_mesh_sweeps_complete_with_cycle_breaking() {
    use jsweep::graph::{cycles, Subgraph, SweepState};

    let mesh = jsweep::mesh::deformed::DeformedMesh::jittered(6, 6, 6, 0.35, 11);
    let quad = QuadratureSet::sn(2);
    let patches = PatchSet::single(mesh.num_cells());
    for (a, o) in quad.iter() {
        let broken = cycles::broken_edges_for_direction(&mesh, o.dir);
        let sub = Subgraph::build(&mesh, &patches, PatchId(0), a, o.dir, &broken);
        let mut st = SweepState::with_priorities(&sub, &vec![0; sub.num_vertices()]);
        while !st.is_complete() {
            let cluster = st.pop_cluster(&sub, 64, |_, _| {});
            assert!(
                !cluster.is_empty(),
                "deadlock on deformed mesh, direction {:?} ({} broken edges)",
                o.dir,
                broken.len()
            );
        }
    }
}

#[test]
fn des_and_threaded_runtime_compute_the_same_vertex_count() {
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    // DES vertex count.
    let machine = MachineModel::cluster(2, 2);
    let des = simulate(&prob, &machine, &SimOptions::default());
    // Threaded-runtime vertex count: one sweep = one source iteration
    // with zero scattering.
    let mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.0, 1.0),
    ));
    let mut cfg = config();
    cfg.max_iterations = 1;
    let sol = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg);
    let threaded_vertices: u64 = sol.stats.iter().map(|s| s.work_done).sum();
    assert_eq!(des.vertices, threaded_vertices);
}

#[test]
fn deformed_mesh_parallel_matches_serial_with_cycle_breaking() {
    use jsweep::mesh::deformed::DeformedMesh;
    let mesh = Arc::new(DeformedMesh::jittered(6, 6, 6, 0.3, 17));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let mut cfg = config();
    cfg.break_cycles = true;
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &cfg);
    let patches = jsweep::mesh::partition::rcb(mesh.as_ref(), 8);
    let mut patches = patches;
    patches.distribute((0..8).map(|p| (p % 2) as u32).collect(), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            check_cycles: true,
            ..Default::default()
        },
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg);
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
    assert!(par.phi.iter().all(|&x| x > 0.0));
}

#[test]
fn resident_universe_bit_identical_to_respawned_structured() {
    // Persistent-universe golden: one resident runtime running every
    // source iteration as an epoch must produce the same flux *bit for
    // bit* as respawning a one-shot `run_universe` per iteration —
    // under both termination detectors, with replay on.
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    for termination in [TerminationKind::Counting, TerminationKind::Safra] {
        let mut respawned_cfg = config();
        respawned_cfg.termination = termination;
        respawned_cfg.resident = false;
        let mut resident_cfg = respawned_cfg.clone();
        resident_cfg.resident = true;
        let respawned = solve_parallel(
            mesh.clone(),
            prob.clone(),
            &quad,
            mats.clone(),
            &respawned_cfg,
        );
        let resident = solve_parallel(
            mesh.clone(),
            prob.clone(),
            &quad,
            mats.clone(),
            &resident_cfg,
        );
        assert_eq!(
            respawned.phi, resident.phi,
            "resident universe flux must be bit-identical ({termination:?})"
        );
        assert_eq!(respawned.iterations, resident.iterations);
        assert!(resident.iterations >= 2, "need replay epochs to compare");
        // Same committed workload per iteration on both paths.
        for (a, b) in respawned.stats.iter().zip(&resident.stats) {
            assert_eq!(a.work_done, b.work_done);
        }
    }
}

#[test]
fn resident_universe_bit_identical_to_respawned_unstructured() {
    let mesh = Arc::new(jsweep::mesh::tetgen::ball(3, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material::uniform(2, 1.5, 0.6, 2.0),
    ));
    let patches = decompose_unstructured(mesh.as_ref(), 60, 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    for termination in [TerminationKind::Counting, TerminationKind::Safra] {
        for coarsen in [true, false] {
            let mut respawned_cfg = config();
            respawned_cfg.termination = termination;
            respawned_cfg.coarsen = coarsen;
            respawned_cfg.resident = false;
            let mut resident_cfg = respawned_cfg.clone();
            resident_cfg.resident = true;
            let respawned = solve_parallel(
                mesh.clone(),
                prob.clone(),
                &quad,
                mats.clone(),
                &respawned_cfg,
            );
            let resident = solve_parallel(
                mesh.clone(),
                prob.clone(),
                &quad,
                mats.clone(),
                &resident_cfg,
            );
            assert_eq!(
                respawned.phi, resident.phi,
                "resident flux mismatch ({termination:?}, coarsen {coarsen})"
            );
            assert_eq!(respawned.iterations, resident.iterations);
        }
    }
}

/// Per-group-varied 16-group material: every group gets distinct
/// cross sections and source so a group-blocking bug that mixes
/// lanes cannot cancel out.
fn multigroup16_material() -> Material {
    let groups = 16;
    Material {
        sigma_t: (0..groups).map(|g| 0.5 + 0.23 * g as f64).collect(),
        sigma_s: (0..groups).map(|g| 0.2 + 0.04 * g as f64).collect(),
        source: (0..groups).map(|g| 1.0 + 0.5 * (g % 3) as f64).collect(),
    }
}

#[test]
fn multigroup16_goldens_bit_identical_across_execution_modes() {
    // G=16 golden for the blocked kernel (two full GROUP_BLOCK=8
    // blocks): fine, coarse-replay, cached-replay and respawned
    // solves must all produce the *bit-identical* flux, for both
    // kernel kinds, and match the scalar serial solver to 1e-11.
    use jsweep::transport::PlanCache;
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(216, multigroup16_material()));
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        decompose_structured(&mesh, (3, 3, 3), 2),
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    for kernel in [KernelKind::Step, KernelKind::DiamondDifference] {
        let mut cfg = config();
        cfg.kernel = kernel;
        let serial = solve_serial(mesh.as_ref(), &quad, &mats, &cfg);
        let mut fine_cfg = cfg.clone();
        fine_cfg.coarsen = false;
        let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
        assert_flux_close(&fine.phi, &serial.phi, 1e-11);

        let replay = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &cfg);
        assert_eq!(
            fine.phi, replay.phi,
            "G=16 replay flux must be bit-identical ({kernel:?})"
        );

        let cache = PlanCache::new();
        let c1 = solve_parallel_cached(
            mesh.clone(),
            prob.clone(),
            &quad,
            mats.clone(),
            &cfg,
            &cache,
        );
        let c2 = solve_parallel_cached(
            mesh.clone(),
            prob.clone(),
            &quad,
            mats.clone(),
            &cfg,
            &cache,
        );
        assert!(c2.plan_from_cache, "second cached solve must hit the cache");
        assert_eq!(fine.phi, c1.phi, "G=16 fresh-plan flux ({kernel:?})");
        assert_eq!(fine.phi, c2.phi, "G=16 cached-replay flux ({kernel:?})");

        let mut respawn_cfg = cfg.clone();
        respawn_cfg.resident = false;
        let respawned = solve_parallel(
            mesh.clone(),
            prob.clone(),
            &quad,
            mats.clone(),
            &respawn_cfg,
        );
        assert_eq!(
            fine.phi, respawned.phi,
            "G=16 respawned flux must be bit-identical ({kernel:?})"
        );
    }
}

#[test]
fn multigroup16_tet_fine_vs_replay_bit_identical() {
    // The same G=16 golden on tetrahedra (step kernel — DD is
    // hex-only): the blocked kernel's 4-face path and the scalar
    // tail see real unstructured geometry here.
    let mesh = Arc::new(jsweep::mesh::tetgen::ball(2, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(n, multigroup16_material()));
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        decompose_unstructured(mesh.as_ref(), 32, 2),
        &quad,
        &ProblemOptions::default(),
    ));
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &config());
    let mut fine_cfg = config();
    fine_cfg.coarsen = false;
    let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
    assert_flux_close(&fine.phi, &serial.phi, 1e-11);
    let replay = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &config());
    assert_eq!(
        fine.phi, replay.phi,
        "G=16 tet replay flux must be bit-identical"
    );
}

#[test]
fn flux_bin_pool_reuses_buffers_across_epochs() {
    // Regression guard for the phi_part round-trip: after the first
    // epoch has populated the pool (one fresh buffer per program),
    // every later epoch must re-acquire recycled buffers — zero new
    // allocations — and keep producing the identical fold.
    use jsweep::transport::program::{FluxBins, SweepEpoch, SweepFactory, SweepMode, SweepSetup};
    let mesh = Arc::new(StructuredMesh::unit(4, 4, 4));
    let n = mesh.num_cells();
    let groups = 3;
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material::uniform(groups, 1.0, 0.4, 1.0),
    ));
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        decompose_structured(&mesh, (2, 2, 2), 2),
        &quad,
        &ProblemOptions::default(),
    ));
    let flux_bins = Arc::new(FluxBins::new(prob.num_patches()));
    let emission = Arc::new(vec![0.1; n * groups]);
    let factory = Arc::new(SweepFactory::new(SweepSetup {
        mesh: mesh.clone(),
        problem: prob.clone(),
        quadrature: quad.clone(),
        materials: mats.clone(),
        emission: emission.clone(),
        kernel: KernelKind::Step,
        grain: 16,
        flux_bins: flux_bins.clone(),
        mode: SweepMode::Fine { trace_bins: None },
    }));
    let mut u = Universe::launch(
        2,
        factory,
        RuntimeConfig {
            num_workers: 2,
            ..Default::default()
        },
    );
    let mut folds: Vec<Vec<f64>> = Vec::new();
    for _ in 0..4 {
        u.run_epoch(Arc::new(SweepEpoch {
            emission: emission.clone(),
            mode: SweepMode::Fine { trace_bins: None },
            materials: None,
        }))
        .unwrap_or_else(|f| panic!("sweep epoch faulted: {f}"));
        folds.push(flux_bins.fold(&prob, n, groups));
    }
    u.shutdown();
    assert_eq!(
        flux_bins.fresh_allocations(),
        prob.num_tasks() as u64,
        "later epochs must reuse pooled phi_part buffers, not allocate"
    );
    for (k, w) in folds.windows(2).enumerate() {
        assert_eq!(w[0], w[1], "fold changed between epochs {k} and {}", k + 1);
    }
}

#[test]
fn resident_universe_multi_epoch_stress_leaves_no_stale_state() {
    // Drive many forced epochs (negative tolerance: the solver never
    // converges early) through one resident universe, in both
    // scheduling modes, and check epoch-to-epoch invariants that any
    // stale pool/program state would break:
    //  * committed workload completes exactly, every epoch (stale
    //    in-degree counters or ready-heap entries would change it);
    //  * stream counts are identical across all replay epochs (stale
    //    staging or held reports would skew them);
    //  * the flux stays bit-identical to the respawned path after 8
    //    epochs of buffer reuse.
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    let epochs = 8;
    let committed = (512 * quad.len()) as u64;
    for termination in [TerminationKind::Counting, TerminationKind::Safra] {
        for coarsen in [true, false] {
            let mut resident_cfg = config();
            resident_cfg.termination = termination;
            resident_cfg.coarsen = coarsen;
            resident_cfg.max_iterations = epochs;
            resident_cfg.tolerance = -1.0;
            let mut respawned_cfg = resident_cfg.clone();
            respawned_cfg.resident = false;
            let resident = solve_parallel(
                mesh.clone(),
                prob.clone(),
                &quad,
                mats.clone(),
                &resident_cfg,
            );
            assert_eq!(resident.iterations, epochs);
            for (k, s) in resident.stats.iter().enumerate() {
                assert_eq!(
                    s.work_done, committed,
                    "epoch {k} work accounting ({termination:?}, coarsen {coarsen})"
                );
            }
            // Replay epochs (2..) run the identical coarse schedule:
            // their wire traffic must not drift across epochs. (Fine
            // epochs legitimately vary — cluster formation is
            // timing-dependent — so this invariant is replay-only.)
            if coarsen {
                let tail = &resident.stats[1..];
                let first_streams = tail[0].streams_sent + tail[0].streams_local;
                for (k, s) in tail.iter().enumerate() {
                    assert_eq!(
                        s.streams_sent + s.streams_local,
                        first_streams,
                        "replay epoch {} stream drift ({termination:?})",
                        k + 1
                    );
                }
            }
            let respawned = solve_parallel(
                mesh.clone(),
                prob.clone(),
                &quad,
                mats.clone(),
                &respawned_cfg,
            );
            assert_eq!(
                respawned.phi, resident.phi,
                "multi-epoch flux mismatch ({termination:?}, coarsen {coarsen})"
            );
        }
    }
}
