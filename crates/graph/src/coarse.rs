//! The coarsened graph (paper §V-E).
//!
//! Mesh structure — and hence the sweep DAG — is constant across most
//! or all sweep iterations, so the vertex clusters formed during the
//! first DAG-driven sweep can be cached and reused: each cluster becomes
//! a coarse vertex `cv` with property `P(cv)` = its vertex list in
//! execution order, and cluster-to-cluster data flow becomes a coarse
//! edge carrying the combined face data. Subsequent iterations sweep the
//! much smaller coarsened graph `CG`, skipping per-vertex scheduling.
//!
//! **Theorem 1** (paper): if `G` is acyclic, the derived `CG` is
//! acyclic. The proof carries over to traces: order clusters by their
//! completion instant in the originating execution; every coarse edge
//! points from an earlier-completing cluster to a later one (internal
//! edges because clusters of one patch-program form sequentially, remote
//! edges because a stream is emitted only when its source cluster
//! finishes). [`build_coarse`] checks this by topological sort and
//! panics on violation — which would indicate a scheduler bug.

use crate::dag::{is_acyclic, Csr};
use crate::subgraph::Subgraph;
use jsweep_mesh::PatchId;
use std::collections::HashMap;

/// Clustering trace of one `(patch, angle)` task: the clusters formed
/// by successive `compute()` calls, in formation order.
#[derive(Debug, Clone, Default)]
pub struct ClusterTrace {
    /// `clusters[k]` = local vertices of the `k`-th compute call, in pop
    /// (topological) order.
    pub clusters: Vec<Vec<u32>>,
}

impl ClusterTrace {
    /// Record one compute call's cluster.
    ///
    /// **Contract:** empty clusters are silently dropped — a `compute`
    /// call that found no ready vertex forms no coarse vertex. Replay
    /// code relies on this: every cluster of a [`CoarsenedTask`] is
    /// non-empty, so a coarse-replay program may assert it never
    /// executes (or emits the coarse edges of) an empty compute
    /// cluster.
    pub fn record(&mut self, cluster: Vec<u32>) {
        if !cluster.is_empty() {
            self.clusters.push(cluster);
        }
    }

    /// Total vertices across all clusters.
    pub fn num_vertices(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).sum()
    }
}

/// A coarse remote edge: combined original edges from one source
/// cluster into one remote target cluster.
#[derive(Debug, Clone)]
pub struct CoarseRemoteEdge {
    /// Patch owning the target cluster.
    pub patch: PatchId,
    /// Target cluster index within that patch's coarsened task.
    pub cluster: u32,
    /// Combined items: `(source local vertex, target global cell)` —
    /// the property `P(ce)` of the paper.
    pub items: Vec<(u32, u32)>,
}

/// The coarsened task of one `(patch, angle)`: what the patch-program
/// executes from the second sweep iteration on.
#[derive(Debug, Clone)]
pub struct CoarsenedTask {
    /// `P(cv)`: original local vertices per coarse vertex.
    pub clusters: Vec<Vec<u32>>,
    /// Coarse in-degree (internal + remote incoming coarse edges).
    pub in_degree: Vec<u32>,
    /// Internal coarse edges, CSR offsets (indexing [`Self::int_dst`]).
    pub int_off: Vec<u32>,
    /// Internal coarse edges, CSR destination vertices.
    pub int_dst: Vec<u32>,
    /// Outgoing remote coarse edges per coarse vertex.
    pub remote: Vec<Vec<CoarseRemoteEdge>>,
}

impl CoarsenedTask {
    /// Number of coarse vertices.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Internal coarse successors of cluster `cv`.
    pub fn internal_succ(&self, cv: u32) -> &[u32] {
        &self.int_dst[self.int_off[cv as usize] as usize..self.int_off[cv as usize + 1] as usize]
    }

    /// Total original vertices.
    pub fn num_vertices(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).sum()
    }

    /// Estimated heap footprint of this coarsened task — what caching
    /// it across iterations (and, with a plan cache, across solves)
    /// costs. Used to report the octant-sharing memory saving.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.clusters.len() * size_of::<Vec<u32>>()
            + self.num_vertices() * size_of::<u32>()
            + self.in_degree.len() * size_of::<u32>()
            + self.int_off.len() * size_of::<u32>()
            + self.int_dst.len() * size_of::<u32>()
            + self.remote.len() * size_of::<Vec<CoarseRemoteEdge>>()
            + self
                .remote
                .iter()
                .flat_map(|edges| edges.iter())
                .map(|e| size_of::<CoarseRemoteEdge>() + e.items.len() * size_of::<(u32, u32)>())
                .sum::<usize>()
    }
}

/// Build the coarsened tasks of every patch for one angle from the
/// first iteration's traces.
///
/// `subs[p]` and `traces[p]` are indexed by patch. Panics if a trace
/// does not cover its subgraph exactly or if the resulting coarse graph
/// is cyclic (Theorem 1 violation — a scheduler bug).
pub fn build_coarse(subs: &[Subgraph], traces: &[ClusterTrace]) -> Vec<CoarsenedTask> {
    assert_eq!(subs.len(), traces.len());
    // cluster_of[p][local vertex] = cluster index.
    let mut cluster_of: Vec<Vec<u32>> = Vec::with_capacity(subs.len());
    // local_of[cell] = (patch index, local vertex).
    let mut local_of: HashMap<u32, (u32, u32)> = HashMap::new();
    for (pi, (sub, trace)) in subs.iter().zip(traces).enumerate() {
        assert_eq!(
            trace.num_vertices(),
            sub.num_vertices(),
            "trace of patch {} covers {} of {} vertices",
            sub.patch.0,
            trace.num_vertices(),
            sub.num_vertices()
        );
        let mut map = vec![u32::MAX; sub.num_vertices()];
        for (k, cluster) in trace.clusters.iter().enumerate() {
            for &v in cluster {
                assert!(map[v as usize] == u32::MAX, "vertex {v} in two clusters");
                map[v as usize] = k as u32;
            }
        }
        for (li, &cell) in sub.cells.iter().enumerate() {
            local_of.insert(cell, (pi as u32, li as u32));
        }
        cluster_of.push(map);
    }

    // Patch id -> slice index (patches may be a subset in tests).
    let patch_slot: HashMap<u32, u32> = subs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.patch.0, i as u32))
        .collect();

    let mut tasks: Vec<CoarsenedTask> = traces
        .iter()
        .map(|t| CoarsenedTask {
            clusters: t.clusters.clone(),
            in_degree: vec![0; t.clusters.len()],
            int_off: Vec::new(),
            int_dst: Vec::new(),
            remote: vec![Vec::new(); t.clusters.len()],
        })
        .collect();

    // Gather coarse edges.
    for (pi, sub) in subs.iter().enumerate() {
        let nclust = tasks[pi].num_clusters();
        let mut int_edges: std::collections::HashSet<(u32, u32)> = Default::default();
        // (src cluster, dst patch slot, dst cluster) -> items.
        let mut rem_edges: HashMap<(u32, u32, u32), Vec<(u32, u32)>> = HashMap::new();
        for v in 0..sub.num_vertices() as u32 {
            let cu = cluster_of[pi][v as usize];
            for &w in sub.internal_succ(v) {
                let cv = cluster_of[pi][w as usize];
                if cu != cv {
                    int_edges.insert((cu, cv));
                }
            }
            for re in sub.remote_succ(v) {
                let &(qslot, lw) = local_of
                    .get(&re.cell)
                    .expect("remote edge target outside the provided patch set");
                let cv = cluster_of[qslot as usize][lw as usize];
                rem_edges
                    .entry((cu, qslot, cv))
                    .or_default()
                    .push((v, re.cell));
            }
        }
        // Internal CSR + in-degrees.
        let mut edges: Vec<(u32, u32)> = int_edges.into_iter().collect();
        edges.sort_unstable();
        let csr = Csr::from_edges(nclust, &edges);
        for &(_, d) in &edges {
            tasks[pi].in_degree[d as usize] += 1;
        }
        tasks[pi].int_off = csr.off;
        tasks[pi].int_dst = csr.dst;
        // Remote edges: attach to source task, bump target in-degree.
        type RemoteAcc = Vec<((u32, u32, u32), Vec<(u32, u32)>)>;
        let mut rem: RemoteAcc = rem_edges.into_iter().collect();
        rem.sort_by_key(|&(k, _)| k);
        for ((cu, qslot, cv), mut items) in rem {
            items.sort_unstable();
            tasks[qslot as usize].in_degree[cv as usize] += 1;
            let dst_patch = subs[qslot as usize].patch;
            tasks[pi].remote[cu as usize].push(CoarseRemoteEdge {
                patch: dst_patch,
                cluster: cv,
                items,
            });
        }
    }

    // Theorem 1: the global coarse graph must be acyclic.
    assert!(
        coarse_graph_is_acyclic(subs, &tasks, &patch_slot),
        "coarsened graph is cyclic: Theorem 1 violated (scheduler bug)"
    );
    tasks
}

/// Check global acyclicity of the coarse graph spanning all patches.
fn coarse_graph_is_acyclic(
    subs: &[Subgraph],
    tasks: &[CoarsenedTask],
    patch_slot: &HashMap<u32, u32>,
) -> bool {
    // Global coarse vertex id = offset[patch slot] + cluster.
    let mut offset = vec![0u32; tasks.len() + 1];
    for (i, t) in tasks.iter().enumerate() {
        offset[i + 1] = offset[i] + t.num_clusters() as u32;
    }
    let n = offset[tasks.len()] as usize;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (pi, t) in tasks.iter().enumerate() {
        for cv in 0..t.num_clusters() as u32 {
            for &d in t.internal_succ(cv) {
                edges.push((offset[pi] + cv, offset[pi] + d));
            }
            for re in &t.remote[cv as usize] {
                let q = patch_slot[&re.patch.0] as usize;
                edges.push((offset[pi] + cv, offset[q] + re.cluster));
            }
        }
    }
    let _ = subs;
    is_acyclic(&Csr::from_edges(n, &edges))
}

/// Scheduling state for replaying a coarsened task: the cluster-level
/// analogue of [`crate::SweepState`].
#[derive(Debug, Clone)]
pub struct CoarseSweepState {
    counts: Vec<u32>,
    /// Ready clusters, lowest trace index first (trace order is a valid
    /// priority: it reflects the original priority-driven execution).
    ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
    executed: u32,
}

impl CoarseSweepState {
    /// Initialise from a coarsened task; source clusters become ready.
    pub fn new(task: &CoarsenedTask) -> CoarseSweepState {
        let counts = task.in_degree.clone();
        let mut ready = std::collections::BinaryHeap::new();
        for (cv, &c) in counts.iter().enumerate() {
            if c == 0 {
                ready.push(std::cmp::Reverse(cv as u32));
            }
        }
        CoarseSweepState {
            counts,
            ready,
            executed: 0,
        }
    }

    /// Re-arm this state for another replay of the same coarsened
    /// task, reusing its allocations in place (the persistent-universe
    /// counterpart of [`CoarseSweepState::new`]): counts re-copied
    /// from the coarse in-degrees, ready heap rebuilt, executed tally
    /// restarted.
    pub fn reset(&mut self, task: &CoarsenedTask) {
        assert_eq!(
            self.counts.len(),
            task.in_degree.len(),
            "reset against a different coarsened task"
        );
        self.counts.copy_from_slice(&task.in_degree);
        self.ready.clear();
        for (cv, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                self.ready.push(std::cmp::Reverse(cv as u32));
            }
        }
        self.executed = 0;
    }

    /// A remote coarse edge into cluster `cv` was satisfied.
    pub fn receive(&mut self, cv: u32) {
        let c = &mut self.counts[cv as usize];
        debug_assert!(*c > 0, "cluster {cv} over-received");
        *c -= 1;
        if *c == 0 {
            self.ready.push(std::cmp::Reverse(cv));
        }
    }

    /// True while some cluster is ready to execute.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Clusters not yet executed.
    pub fn remaining(&self) -> u64 {
        self.counts.len() as u64 - self.executed as u64
    }

    /// True when every cluster has executed.
    pub fn is_complete(&self) -> bool {
        self.executed as usize == self.counts.len()
    }

    /// Execute the next ready cluster: returns its index and satisfies
    /// internal coarse edges. The caller runs the kernel over
    /// `task.clusters[cv]` and forwards `task.remote[cv]` as streams.
    pub fn pop(&mut self, task: &CoarsenedTask) -> Option<u32> {
        let std::cmp::Reverse(cv) = self.ready.pop()?;
        self.executed += 1;
        for &d in task.internal_succ(cv) {
            let c = &mut self.counts[d as usize];
            debug_assert!(*c > 0);
            *c -= 1;
            if *c == 0 {
                self.ready.push(std::cmp::Reverse(d));
            }
        }
        Some(cv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{vertex_priorities, PriorityStrategy};
    use crate::sweep_state::SweepState;
    use jsweep_mesh::{partition, PatchSet, StructuredMesh, SweepTopology};
    use jsweep_quadrature::{AngleId, QuadratureSet};
    use std::collections::HashSet;

    /// Run a serial multi-patch sweep recording traces, with the given
    /// clustering grain; returns (subgraphs, traces).
    fn trace_sweep(
        mesh: &impl SweepTopology,
        ps: &PatchSet,
        dir: [f64; 3],
        grain: usize,
    ) -> (Vec<Subgraph>, Vec<ClusterTrace>) {
        let subs = Subgraph::build_all(mesh, ps, AngleId(0), dir, &HashSet::new());
        let mut states: Vec<SweepState> = subs
            .iter()
            .map(|s| SweepState::with_priorities(s, &vertex_priorities(s, PriorityStrategy::Slbd)))
            .collect();
        let mut traces = vec![ClusterTrace::default(); subs.len()];
        // Pending remote notifications: (patch slot, local vertex).
        let cell_local: std::collections::HashMap<u32, (usize, u32)> = subs
            .iter()
            .enumerate()
            .flat_map(|(pi, s)| {
                s.cells
                    .iter()
                    .enumerate()
                    .map(move |(li, &c)| (c, (pi, li as u32)))
            })
            .collect();
        loop {
            let mut progressed = false;
            for pi in 0..subs.len() {
                while states[pi].has_ready() {
                    let mut remote = Vec::new();
                    let cluster = states[pi].pop_cluster(&subs[pi], grain, |v, re| {
                        remote.push((v, re));
                    });
                    traces[pi].record(cluster);
                    progressed = true;
                    for (_, re) in remote {
                        let (qi, lv) = cell_local[&re.cell];
                        states[qi].receive(lv);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        for st in &states {
            assert!(st.is_complete(), "sweep deadlocked");
        }
        (subs, traces)
    }

    #[test]
    fn coarse_build_covers_all_vertices() {
        let m = StructuredMesh::unit(6, 6, 6);
        let ps = partition::decompose_structured(&m, (3, 3, 3), 2);
        let (subs, traces) = trace_sweep(&m, &ps, [1.0, 1.0, 1.0], 10);
        let tasks = build_coarse(&subs, &traces);
        let total: usize = tasks.iter().map(|t| t.num_vertices()).sum();
        assert_eq!(total, m.num_cells());
    }

    #[test]
    fn coarse_graph_is_acyclic_for_many_directions() {
        let m = StructuredMesh::unit(4, 4, 4);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let q = QuadratureSet::sn(2);
        for (_, o) in q.iter() {
            // build_coarse asserts acyclicity internally (Theorem 1).
            let (subs, traces) = trace_sweep(&m, &ps, o.dir, 5);
            let _ = build_coarse(&subs, &traces);
        }
    }

    #[test]
    fn coarse_replay_matches_fine_execution() {
        let m = StructuredMesh::unit(6, 6, 6);
        let ps = partition::decompose_structured(&m, (2, 2, 3), 2);
        let (subs, traces) = trace_sweep(&m, &ps, [1.0, -1.0, 0.5], 8);
        let tasks = build_coarse(&subs, &traces);

        // Replay at cluster level: every original vertex must execute
        // exactly once, and cluster order must respect coarse edges.
        let mut states: Vec<CoarseSweepState> = tasks.iter().map(CoarseSweepState::new).collect();
        let slot: std::collections::HashMap<u32, usize> = subs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.patch.0, i))
            .collect();
        let mut seen = vec![false; m.num_cells()];
        loop {
            let mut progressed = false;
            for pi in 0..tasks.len() {
                while let Some(cv) = states[pi].pop(&tasks[pi]) {
                    progressed = true;
                    for &v in &tasks[pi].clusters[cv as usize] {
                        let cell = subs[pi].cells[v as usize] as usize;
                        assert!(!seen[cell], "cell {cell} replayed twice");
                        seen[cell] = true;
                    }
                    let remotes = tasks[pi].remote[cv as usize].clone();
                    for re in remotes {
                        states[slot[&re.patch.0]].receive(re.cluster);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(seen.iter().all(|&s| s), "coarse replay missed cells");
        for st in &states {
            assert!(st.is_complete());
        }
    }

    #[test]
    fn coarse_is_smaller_than_fine() {
        let m = StructuredMesh::unit(8, 8, 8);
        let ps = partition::decompose_structured(&m, (4, 4, 4), 2);
        let (subs, traces) = trace_sweep(&m, &ps, [1.0, 1.0, 1.0], 32);
        let tasks = build_coarse(&subs, &traces);
        let coarse_vertices: usize = tasks.iter().map(|t| t.num_clusters()).sum();
        assert!(
            coarse_vertices * 4 <= m.num_cells(),
            "coarsening achieved only {}/{} reduction",
            coarse_vertices,
            m.num_cells()
        );
    }

    #[test]
    fn remote_items_preserved_in_coarse_edges() {
        let m = StructuredMesh::unit(4, 2, 2);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let (subs, traces) = trace_sweep(&m, &ps, [1.0, 0.0, 0.0], 100);
        let tasks = build_coarse(&subs, &traces);
        let fine_remote: usize = subs.iter().map(|s| s.rem_dst.len()).sum();
        let coarse_items: usize = tasks
            .iter()
            .flat_map(|t| t.remote.iter())
            .flat_map(|edges| edges.iter())
            .map(|e| e.items.len())
            .sum();
        assert_eq!(fine_remote, coarse_items);
    }

    #[test]
    fn grain_one_coarse_equals_fine() {
        let m = StructuredMesh::unit(3, 3, 1);
        let ps = PatchSet::single(m.num_cells());
        let (subs, traces) = trace_sweep(&m, &ps, [1.0, 1.0, 0.0], 1);
        let tasks = build_coarse(&subs, &traces);
        assert_eq!(tasks[0].num_clusters(), subs[0].num_vertices());
    }
}
