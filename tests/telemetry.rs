//! End-to-end telemetry validation (requires `--features telemetry`).
//!
//! Runs a real 2-rank 8³ solve with recording armed and validates the
//! exported data at every layer:
//!
//! * lanes are well-formed — every span has `t0 <= t1`, completion
//!   order is monotone per lane, and spans on one lane nest properly
//!   (a thread's call stack cannot partially overlap);
//! * exactly one `epoch` span per `run_epoch` per rank, with `fence`
//!   nested inside it and `compute` confined to worker lanes;
//! * the Chrome trace-event JSON is loadable (sorted timestamps,
//!   metadata rows, balanced braces) and renders both rank timelines;
//! * a session ticket's `span_id` locates exactly its epochs in the
//!   exported trace;
//! * recording must never change physics: the armed flux is
//!   bit-identical to a detached run's.
//!
//! With `--features "telemetry fault-inject"` an injected worker panic
//! must additionally surface as a `fault` instant in the trace.

#![cfg(feature = "telemetry")]

use jsweep::core::telemetry::obs::{EventKind, LaneSnapshot, Telemetry, GLOBAL_RANK};
use jsweep::prelude::*;
use std::sync::Arc;

const RANKS: usize = 2;
const WORKERS: usize = 2;
const ITERATIONS: usize = 3;

/// The 2-rank 8³ world: 4³ block patches, S2, one group.
fn build_world() -> (Arc<StructuredMesh>, Arc<SweepProblem>, QuadratureSet) {
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let patches = decompose_structured(&mesh, (4, 4, 4), RANKS);
    let problem = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    (mesh, problem, quad)
}

fn materials() -> Arc<MaterialSet> {
    Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ))
}

fn config(telemetry: TelemetryHandle) -> SnConfig {
    SnConfig {
        grain: 16,
        max_iterations: ITERATIONS,
        tolerance: 1e-14,
        workers_per_rank: WORKERS,
        telemetry,
        ..Default::default()
    }
}

/// Spans on one lane must nest like a call stack: any two either
/// disjoint or one inside the other. Instants are exempt.
fn assert_lane_well_formed(lane: &LaneSnapshot) {
    let spans: Vec<_> = lane
        .events
        .iter()
        .filter(|e| !e.kind.is_instant())
        .collect();
    let mut last_t1 = 0;
    for e in &lane.events {
        assert!(
            e.t0 <= e.t1,
            "rank {} lane {}: span ends before it starts: {e:?}",
            lane.rank,
            lane.lane
        );
        assert!(
            e.t1 >= last_t1,
            "rank {} lane {}: completion order not monotone: {e:?}",
            lane.rank,
            lane.lane
        );
        last_t1 = e.t1;
    }
    for (i, x) in spans.iter().enumerate() {
        for y in spans.iter().skip(i + 1) {
            let disjoint = x.t1 <= y.t0 || y.t1 <= x.t0;
            let x_in_y = y.t0 <= x.t0 && x.t1 <= y.t1;
            let y_in_x = x.t0 <= y.t0 && y.t1 <= x.t1;
            assert!(
                disjoint || x_in_y || y_in_x,
                "rank {} lane {}: partially overlapping spans {x:?} / {y:?}",
                lane.rank,
                lane.lane
            );
        }
    }
}

#[test]
fn armed_two_rank_solve_exports_valid_chrome_trace() {
    let (mesh, problem, quad) = build_world();
    let golden = solve_parallel(
        mesh.clone(),
        problem.clone(),
        &quad,
        materials(),
        &config(TelemetryHandle::default()),
    );

    let t = Arc::new(Telemetry::new());
    t.arm();
    let sol = solve_parallel(
        mesh,
        problem,
        &quad,
        materials(),
        &config(TelemetryHandle::attach(t.clone())),
    );
    assert_eq!(sol.phi, golden.phi, "recording must not change physics");
    assert_eq!(sol.iterations, ITERATIONS);

    let lanes = t.snapshot();
    for lane in &lanes {
        assert_eq!(lane.dropped, 0, "no ring overflow at this scale");
        assert_lane_well_formed(lane);
    }

    // Every rank contributes a master lane and both worker lanes.
    for rank in 0..RANKS as u32 {
        assert!(
            lanes.iter().any(|l| l.rank == rank && l.lane == 0),
            "rank {rank} master lane missing"
        );
        for w in 0..WORKERS as u32 {
            assert!(
                lanes.iter().any(|l| l.rank == rank && l.lane == w + 1),
                "rank {rank} worker {w} lane missing"
            );
        }
    }

    // Exactly one epoch span per run_epoch per rank, in epoch order,
    // with the fence nested inside its epoch.
    for rank in 0..RANKS as u32 {
        let master = lanes
            .iter()
            .find(|l| l.rank == rank && l.lane == 0)
            .expect("master lane exists");
        let epochs: Vec<_> = master
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Epoch)
            .collect();
        assert_eq!(
            epochs.len(),
            ITERATIONS,
            "rank {rank}: one epoch span per run_epoch"
        );
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.a, i as u64, "rank {rank}: epoch index in order");
            assert_eq!(e.b, 0, "no session: epochs carry no request span");
        }
        let fences: Vec<_> = master
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Fence)
            .collect();
        // The first epoch has no predecessor to fence off.
        assert_eq!(fences.len(), ITERATIONS - 1, "one fence per epoch join");
        for f in &fences {
            assert!(
                epochs.iter().any(|e| e.t0 <= f.t0 && f.t1 <= e.t1),
                "rank {rank}: fence outside every epoch span"
            );
        }
    }

    // Compute/claim live on worker lanes only; the work itself adds up.
    let mut compute_events = 0usize;
    for lane in &lanes {
        let computes = lane
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Compute)
            .count();
        if lane.lane == 0 || lane.rank == GLOBAL_RANK {
            assert_eq!(computes, 0, "compute span on a non-worker lane");
        }
        compute_events += computes;
    }
    assert!(compute_events > 0, "no compute spans recorded");

    // The default config coarsens: the driver lane records the plan
    // compilation of iteration 1.
    let global = lanes
        .iter()
        .find(|l| l.rank == GLOBAL_RANK)
        .expect("driver lane present");
    assert!(
        global
            .events
            .iter()
            .any(|e| e.kind == EventKind::PlanCompile),
        "plan compilation span missing from the driver lane"
    );

    // The Chrome export is loadable and renders both rank timelines.
    let events = t.trace_events();
    for w in events.windows(2) {
        if (w[0].pid, w[0].tid) == (w[1].pid, w[1].tid) {
            assert!(w[0].ts_us <= w[1].ts_us, "trace not time-sorted per lane");
        }
    }
    let json = t.chrome_trace();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );
    for label in [
        "\"rank 0\"",
        "\"rank 1\"",
        "\"driver\"",
        "\"master\"",
        "\"worker 0\"",
        "\"worker 1\"",
        "\"name\":\"epoch\"",
        "\"name\":\"compute\"",
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
    ] {
        assert!(json.contains(label), "chrome trace missing {label}");
    }
}

#[test]
fn session_ticket_span_locates_its_epochs() {
    let (mesh, problem, quad) = build_world();
    let t = Arc::new(Telemetry::new());
    t.arm();
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: config(TelemetryHandle::attach(t.clone())),
            ..Default::default()
        },
    );
    let campaign = session.campaign();
    let first = campaign
        .submit(SolveRequest::new(materials()))
        .wait()
        .expect("first solve served");
    let second = campaign
        .submit(SolveRequest::new(materials()))
        .wait()
        .expect("second solve served");
    session.shutdown();
    assert_ne!(first.span_id, 0, "tickets carry a nonzero span id");
    assert_ne!(first.span_id, second.span_id, "span ids are unique");

    // Each ticket's span id finds exactly its epochs, on every rank.
    let lanes = t.snapshot();
    for out in [&first, &second] {
        let tagged = lanes
            .iter()
            .flat_map(|l| l.events.iter())
            .filter(|e| e.kind == EventKind::Epoch && e.b == out.span_id)
            .count();
        assert_eq!(
            tagged,
            out.solution.iterations * RANKS,
            "span {} must tag one epoch span per run_epoch per rank",
            out.span_id
        );
    }

    // And the rendered trace carries the ids as span args.
    let json = t.chrome_trace();
    for out in [&first, &second] {
        assert!(
            json.contains(&format!("\"span\":{}", out.span_id)),
            "span {} missing from the exported trace",
            out.span_id
        );
    }
}

/// An injected worker panic must surface as a `fault` instant on the
/// faulted rank's master lane (and in the rendered trace).
#[cfg(feature = "fault-inject")]
#[test]
fn injected_fault_appears_in_trace() {
    let (mesh, problem, quad) = build_world();
    let t = Arc::new(Telemetry::new());
    t.arm();
    let plan = FaultPlan::builder().panic_on_compute(0, 1).build();
    let mut cfg = config(TelemetryHandle::attach(t.clone()));
    cfg.fault_plan = Some(Arc::new(plan));
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: cfg,
            ..Default::default()
        },
    );
    let campaign = session.campaign();
    let err = campaign
        .submit(SolveRequest::new(materials()))
        .wait()
        .expect_err("injected panic fails the ticket");
    assert!(matches!(err, SessionError::Failed(_)));
    session.shutdown();

    let lanes = t.snapshot();
    let faults = lanes
        .iter()
        .flat_map(|l| l.events.iter())
        .filter(|e| e.kind == EventKind::Fault)
        .count();
    assert!(faults > 0, "injected panic left no fault event");
    assert!(
        t.chrome_trace().contains("\"name\":\"fault\""),
        "fault instant missing from the rendered trace"
    );
}
