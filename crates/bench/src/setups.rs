//! Shared experiment setups: meshes, decompositions, machine models.

use jsweep_des::{MachineModel, ProblemOptions, SweepProblem};
use jsweep_graph::PriorityStrategy;
use jsweep_mesh::{partition, StructuredMesh, TetMesh};
use jsweep_quadrature::QuadratureSet;

/// Tianhe-II-style machine: 1 master + 11 workers per 12-core process.
pub fn tianhe(ranks: usize) -> MachineModel {
    MachineModel::cluster(ranks, 11)
}

/// Simulated cores of a Tianhe-style allocation.
pub fn cores(ranks: usize) -> usize {
    ranks * 12
}

/// Priority pair in the paper's "patch+vertex" notation.
#[derive(Debug, Clone, Copy)]
pub struct Strategies {
    /// Patch-level priority strategy (the first name in "X+Y").
    pub patch: PriorityStrategy,
    /// Vertex-level priority strategy (the second name).
    pub vertex: PriorityStrategy,
}

impl Strategies {
    /// The paper's "patch+vertex" display name, e.g. `SLBD+SLBD`.
    pub fn name(&self) -> String {
        format!("{}+{}", self.patch.name(), self.vertex.name())
    }

    /// The paper's default pair: SLBD at both levels.
    pub const SLBD2: Strategies = Strategies {
        patch: PriorityStrategy::Slbd,
        vertex: PriorityStrategy::Slbd,
    };
}

/// Compile a structured problem: `n³` cells, `patch³` block patches,
/// Hilbert rank distribution.
pub fn structured_problem(
    n: usize,
    patch: usize,
    ranks: usize,
    quad: &QuadratureSet,
    strat: Strategies,
) -> SweepProblem {
    let mesh = StructuredMesh::unit(n, n, n);
    let ps = partition::decompose_structured(&mesh, (patch, patch, patch), ranks);
    SweepProblem::build(
        &mesh,
        ps,
        quad,
        &ProblemOptions {
            vertex_strategy: strat.vertex,
            patch_strategy: strat.patch,
            share_octant_dags: true,
            check_cycles: false,
        },
    )
}

/// Compile an unstructured problem from a tet mesh.
pub fn unstructured_problem(
    mesh: &TetMesh,
    cells_per_patch: usize,
    ranks: usize,
    quad: &QuadratureSet,
    strat: Strategies,
) -> SweepProblem {
    let ps = partition::decompose_unstructured(mesh, cells_per_patch, ranks);
    SweepProblem::build(
        mesh,
        ps,
        quad,
        &ProblemOptions {
            vertex_strategy: strat.vertex,
            patch_strategy: strat.patch,
            share_octant_dags: false,
            check_cycles: false,
        },
    )
}

/// The shared fine-vs-coarse replay scenario (§V-E) used by both the
/// `coarse_replay` bench and the `cg_replay` figures experiment:
/// `n³` cells in `patch³` block patches over `ranks` ranks, S2, one
/// group with scattering, grain fine enough that per-vertex scheduling
/// is a visible share of iteration time. Keeping it in one place keeps
/// the committed bench baseline and the figures table in lockstep.
pub struct ReplayScenario {
    /// The mesh.
    pub mesh: std::sync::Arc<StructuredMesh>,
    /// Compiled problem (octant-shared DAGs).
    pub problem: std::sync::Arc<jsweep_graph::SweepProblem>,
    /// One-group scattering material everywhere.
    pub materials: std::sync::Arc<jsweep_transport::MaterialSet>,
    /// S2 ordinates.
    pub quad: QuadratureSet,
    /// Solver config template (`tolerance` is negative so every
    /// iteration runs in both variants; set `coarsen` per run).
    pub config: jsweep_transport::SnConfig,
}

/// Build the replay scenario. `iterations` is the exact sweep count
/// each variant performs (the first records, the rest replay).
pub fn replay_scenario(
    n: usize,
    patch: usize,
    ranks: usize,
    iterations: usize,
    grain: usize,
) -> ReplayScenario {
    use jsweep_mesh::SweepTopology;
    let mesh = std::sync::Arc::new(StructuredMesh::unit(n, n, n));
    let ps = partition::decompose_structured(&mesh, (patch, patch, patch), ranks);
    let quad = QuadratureSet::sn(2);
    let materials = std::sync::Arc::new(jsweep_transport::MaterialSet::homogeneous(
        mesh.num_cells(),
        jsweep_transport::Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let problem = std::sync::Arc::new(jsweep_graph::SweepProblem::build(
        mesh.as_ref(),
        ps,
        &quad,
        &jsweep_graph::ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    let config = jsweep_transport::SnConfig {
        max_iterations: iterations,
        tolerance: -1.0,
        grain,
        workers_per_rank: 2,
        ..Default::default()
    };
    ReplayScenario {
        mesh,
        problem,
        materials,
        quad,
        config,
    }
}

/// Mean of `f` over the replay-eligible iterations (every iteration
/// after the first) — the single definition of the per-iteration
/// metric the `coarse_replay` bench baseline and the `cg_replay`
/// figures table both report.
pub fn replay_tail_mean(
    stats: &[jsweep_core::RunStats],
    f: impl Fn(&jsweep_core::RunStats) -> f64,
) -> f64 {
    let tail = &stats[1..];
    tail.iter().map(&f).sum::<f64>() / tail.len() as f64
}

impl ReplayScenario {
    /// Solve with the given coarsening mode.
    pub fn solve(&self, coarsen: bool) -> jsweep_transport::SnSolution {
        let mut config = self.config.clone();
        config.coarsen = coarsen;
        jsweep_transport::solve_parallel(
            self.mesh.clone(),
            self.problem.clone(),
            &self.quad,
            self.materials.clone(),
            &config,
        )
    }

    /// Solve with coarsening through a cross-solve [`jsweep_transport::PlanCache`]:
    /// the first call records and compiles, every later call replays
    /// the cached plan from iteration 1. Used by the `plan_cache`
    /// multi-solve bench.
    pub fn solve_cached(
        &self,
        cache: &jsweep_transport::PlanCache,
    ) -> jsweep_transport::SnSolution {
        jsweep_transport::solve_parallel_cached(
            self.mesh.clone(),
            self.problem.clone(),
            &self.quad,
            self.materials.clone(),
            &self.config,
            cache,
        )
    }

    /// The cache key of this scenario's plan (for memory reporting).
    pub fn plan_key(&self) -> jsweep_transport::PlanKey {
        jsweep_transport::plan_key(&self.problem, self.config.grain)
    }
}

/// Machine for a `groups`-group JSNT-U-style run (groups only affect
/// message volume in the simulator).
pub fn machine_with_groups(ranks: usize, groups: usize) -> MachineModel {
    let mut m = tianhe(ranks);
    m.bytes_per_item = 8.0 * groups as f64 + 8.0;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tianhe_core_count() {
        assert_eq!(cores(8), 96);
        assert_eq!(tianhe(8).cores(), 96);
    }

    #[test]
    fn strategies_name() {
        assert_eq!(Strategies::SLBD2.name(), "SLBD+SLBD");
    }

    #[test]
    fn structured_setup_builds() {
        let q = QuadratureSet::sn(2);
        let p = structured_problem(8, 4, 2, &q, Strategies::SLBD2);
        assert_eq!(p.num_patches(), 8);
        assert_eq!(p.patches.num_ranks(), 2);
    }
}
