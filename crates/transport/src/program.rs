//! `SweepPatchProgram` — paper Listing 1, with real physics attached.
//!
//! A program is one `(patch, angle)` sweep task. Its local context is
//! the scheduling state plus the physics state: incoming face-flux
//! storage for every local cell and the per-angle scalar-flux
//! contribution. The scheduling state comes in two flavours, selected
//! per source iteration by [`SweepMode`]:
//!
//! * **Fine** ([`jsweep_graph::SweepState`]: per-vertex counters +
//!   ready priority queue) — the DAG-driven first iteration, which can
//!   record a [`ClusterTrace`] of the clusters its `compute()` calls
//!   form;
//! * **Coarse** ([`jsweep_graph::coarse::CoarseSweepState`] over a
//!   [`ReplayTask`]) — the §V-E replay used from the second iteration
//!   on: `compute()` pops one whole coarse vertex, executes its
//!   recorded vertex list in order, and emits exactly one stream per
//!   outgoing coarse edge, with no per-vertex bookkeeping.
//!
//! Stream payload formats (see `jsweep_comm::pack`): fine streams are
//! `u32 item_count` then per item `u32 dst_cell`, `u32 src_cell`,
//! `groups × f64` face flux values (the receiver resolves the upwind
//! slot through the factory's pre-built `(dst_cell, src_cell) → face`
//! [`IngestTable`] — no per-item face scan). Coarse streams are fully
//! pre-resolved at plan-build time: `u32 dst_cluster`, `u32 item_count`,
//! then `item_count × u32 dst_slot` (`local_cell * max_faces + face` on
//! the receiver — written straight into `face_flux`, no adjacency
//! scan), then `item_count × groups × f64` flux values. The constant
//! prefix (header + slot block) is pre-packed per coarse edge at
//! plan-compile time ([`crate::replay::ReplayEmit::skeleton`]), so
//! replay packing is one memcpy plus the flux writes, and the receiver
//! issues one `receive()` per stream instead of one per item.
//!
//! Under a persistent universe (`jsweep_core::Universe`) the programs
//! stay resident for the whole solve: each source iteration is one
//! epoch, and [`SweepProgram`]'s `reset` re-arms the scheduling state
//! ([`SweepState`]/[`CoarseSweepState`] reset in place), zeroes
//! `face_flux` in place, and swaps in the epoch's emission density and
//! [`SweepMode`] — no per-iteration reallocation of the big buffers.

use crate::kernel::{solve_cell_block_geom, CellGeom, KernelKind, GROUP_BLOCK, KERNEL_MAX_FACES};
use crate::replay::{CoarsePlan, ReplayTask, TraceBins};
use crate::xs::MaterialSet;
use bytes::Bytes;
use jsweep_comm::pack::{Reader, Writer};
use jsweep_core::{
    ComputeCtx, EpochInput, PatchProgram, ProgramFactory, ProgramId, Stream, TaskTag,
};
use jsweep_graph::coarse::{ClusterTrace, CoarseSweepState};
use jsweep_graph::{Subgraph, SweepProblem, SweepState};
use jsweep_mesh::{PatchId, SweepTopology};
use jsweep_quadrature::QuadratureSet;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One patch's bin: the epoch-in-flight deposits plus the free list of
/// recycled accumulator buffers.
#[derive(Default)]
struct PatchBin {
    /// `(angle, w_a · ψ̄ per local cell × group)` contributions of the
    /// epoch in flight.
    deposits: Vec<(u32, Vec<f64>)>,
    /// Recycled buffers awaiting [`FluxBins::acquire`].
    free: Vec<Vec<f64>>,
}

/// Per-patch collection bins for scalar-flux contributions, with a
/// buffer pool that makes resident epochs allocation-free.
///
/// Each `(patch, angle)` program deposits `w_a · ψ̄` for its local
/// cells; the solver folds the bins in angle order after the sweep so
/// the floating-point result is independent of scheduling order.
/// Folding (and scrubbing) *recycles* every deposited buffer into the
/// patch's free list, and programs re-arm their `phi_part` accumulator
/// through [`FluxBins::acquire`] — so from the second epoch of a
/// resident universe on, the flux round-trip allocates nothing.
/// [`FluxBins::fresh_allocations`] counts pool misses, pinned by a
/// regression test so the round-trip cannot silently re-allocate.
pub struct FluxBins {
    bins: Vec<Mutex<PatchBin>>,
    fresh: AtomicU64,
}

impl FluxBins {
    /// Empty bins (and empty pools) for `num_patches` patches.
    pub fn new(num_patches: usize) -> FluxBins {
        FluxBins {
            bins: (0..num_patches)
                .map(|_| Mutex::new(PatchBin::default()))
                .collect(),
            fresh: AtomicU64::new(0),
        }
    }

    /// Number of patches covered.
    pub fn num_patches(&self) -> usize {
        self.bins.len()
    }

    /// Deposit one finished `(patch, angle)` contribution.
    pub fn deposit(&self, patch: usize, angle: u32, part: Vec<f64>) {
        self.bins[patch].lock().deposits.push((angle, part));
    }

    /// Take a zeroed accumulator of `len` for `patch`, reusing a
    /// recycled buffer when one with sufficient capacity is pooled.
    /// Undersized pool entries (the group count changed across a
    /// relaunch) are dropped; a pool miss allocates fresh and bumps
    /// [`FluxBins::fresh_allocations`].
    pub fn acquire(&self, patch: usize, len: usize) -> Vec<f64> {
        let recycled = {
            let mut bin = self.bins[patch].lock();
            loop {
                match bin.free.pop() {
                    Some(b) if b.capacity() >= len => break Some(b),
                    Some(_) => continue,
                    None => break None,
                }
            }
        };
        match recycled {
            Some(mut b) => {
                b.clear();
                b.resize(len, 0.0);
                b
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        }
    }

    /// Fold (and drain) the deposits into `φ_new`, in angle order per
    /// patch so the floating-point result is independent of scheduling
    /// order. Every drained buffer is recycled into its patch's pool,
    /// ready for the next epoch's [`FluxBins::acquire`].
    pub fn fold(&self, problem: &SweepProblem, n: usize, groups: usize) -> Vec<f64> {
        let mut phi_new = vec![0.0; n * groups];
        for p in problem.patches.patches() {
            let mut bin = self.bins[p.index()].lock();
            let bin = &mut *bin;
            bin.deposits.sort_by_key(|(angle, _)| *angle);
            let cells = problem.patches.cells(p);
            for (_, part) in bin.deposits.iter() {
                assert_eq!(part.len(), cells.len() * groups);
                for (li, &cell) in cells.iter().enumerate() {
                    for g in 0..groups {
                        phi_new[cell as usize * groups + g] += part[li * groups + g];
                    }
                }
            }
            bin.free
                .extend(bin.deposits.drain(..).map(|(_, part)| part));
        }
        phi_new
    }

    /// Drop all pending deposits, recycling their buffers. Used to
    /// scrub partial contributions after a faulted epoch — the buffers
    /// themselves stay reusable.
    pub fn clear(&self) {
        for bin in &self.bins {
            let mut bin = bin.lock();
            let bin = &mut *bin;
            bin.free
                .extend(bin.deposits.drain(..).map(|(_, part)| part));
        }
    }

    /// Accumulator buffers allocated fresh (pool misses) since
    /// construction. Steady state for a resident universe is one per
    /// `(patch, angle)` program, all paid on the first epoch.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }
}

/// Which scheduling mode the sweep programs of one iteration run in.
#[derive(Clone)]
pub enum SweepMode {
    /// Per-vertex DAG-driven sweep. With `trace_bins` set, every task
    /// records its [`ClusterTrace`] and deposits it on completion —
    /// the recording pass of §V-E.
    Fine {
        /// Trace sink, indexed by [`SweepProblem::tid`].
        trace_bins: Option<Arc<TraceBins>>,
    },
    /// Coarse-graph replay of a previously compiled [`CoarsePlan`].
    Coarse {
        /// The plan built from the recording iteration's traces.
        plan: Arc<CoarsePlan>,
    },
}

/// Per-epoch input of a resident sweep universe: what changes between
/// source iterations. Handed to `jsweep_core::Universe::run_epoch`;
/// every resident [`SweepProgram`] downcasts it in its
/// [`PatchProgram::reset`].
pub struct SweepEpoch {
    /// This iteration's emission density `(σ_s φ + Q)/4π` per
    /// `cell * groups + g`.
    pub emission: Arc<Vec<f64>>,
    /// This iteration's scheduling mode (fine/record vs replay).
    pub mode: SweepMode,
    /// Material perturbation: `Some` swaps the resident programs'
    /// cross sections for this epoch (same mesh, same group count —
    /// the buffer shapes are fixed at program creation). `None` keeps
    /// the materials the programs already hold. This is what lets one
    /// resident session universe serve solve requests with different
    /// material sets without a relaunch.
    pub materials: Option<Arc<MaterialSet>>,
}

/// Multiply-mix hasher over the packed `(dst_cell, src_cell)` key of
/// the [`IngestTable`] (one `u64` write). SipHash buys nothing for an
/// internal adjacency map and costs real time on the per-item fine
/// ingest path.
#[derive(Default)]
pub struct CellPairHasher {
    state: u64,
}

impl Hasher for CellPairHasher {
    fn finish(&self) -> u64 {
        self.state
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(31) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Pre-resolved fine-path ingest table: packed `(dst_cell, src_cell)`
/// key (`dst << 32 | src`) → the face of `dst_cell` touching
/// `src_cell`, for every cross-patch adjacent cell pair. Built once
/// per problem by [`SweepFactory::new`]; replaces the per-item
/// `face_toward` scan the recording iteration (and the
/// `coarsen = false` path) used to pay per stream item per iteration.
pub type IngestTable = HashMap<u64, u32, BuildHasherDefault<CellPairHasher>>;

/// Pack an ingest-table key.
#[inline]
fn pair_key(dst: u32, src: u32) -> u64 {
    (u64::from(dst) << 32) | u64::from(src)
}

/// Build the [`IngestTable`] of a decomposed mesh: one entry per
/// ordered cross-patch adjacent cell pair (the only pairs that ever
/// appear in fine stream items).
pub fn build_ingest_table<T: SweepTopology + ?Sized>(
    mesh: &T,
    patches: &jsweep_mesh::PatchSet,
) -> IngestTable {
    let mut table = IngestTable::default();
    for c in 0..mesh.num_cells() {
        let pc = patches.patch_of(c);
        for f in 0..mesh.num_faces(c) {
            let Some(nb) = mesh.face(c, f).neighbor.cell() else {
                continue;
            };
            if patches.patch_of(nb) != pc {
                // A stream item (dst = c, src = nb) lands on face f.
                // First face wins, matching `face_toward`'s scan order
                // (relevant only if a pair ever shared two faces).
                table
                    .entry(pair_key(c as u32, nb as u32))
                    .or_insert(f as u32);
            }
        }
    }
    table
}

/// Everything the sweep programs of one source iteration share.
pub struct SweepSetup<T: SweepTopology + Send + Sync + 'static> {
    /// The mesh.
    pub mesh: Arc<T>,
    /// Compiled subgraphs + priorities.
    pub problem: Arc<SweepProblem>,
    /// Quadrature set (directions + weights).
    pub quadrature: QuadratureSet,
    /// Materials.
    pub materials: Arc<MaterialSet>,
    /// Emission density `(σ_s φ + Q)/4π` per `cell * groups + g`.
    pub emission: Arc<Vec<f64>>,
    /// Cell kernel.
    pub kernel: KernelKind,
    /// Vertex clustering grain `N`.
    pub grain: usize,
    /// Scalar-flux bins, indexed by patch.
    pub flux_bins: Arc<FluxBins>,
    /// Scheduling mode of this iteration (fine/record vs replay).
    pub mode: SweepMode,
}

/// The factory handed to the JSweep runtime: one program per
/// `(patch, angle)`.
pub struct SweepFactory<T: SweepTopology + Send + Sync + 'static> {
    setup: SweepSetup<T>,
    /// Pre-resolved `(dst_cell, src_cell) → face` table shared by all
    /// programs (fine-path ingest, see [`build_ingest_table`]).
    ingest: Arc<IngestTable>,
}

impl<T: SweepTopology + Send + Sync + 'static> SweepFactory<T> {
    /// Wrap a setup (pre-resolving the fine-path ingest table).
    pub fn new(setup: SweepSetup<T>) -> SweepFactory<T> {
        assert!(setup.grain > 0);
        assert_eq!(setup.materials.num_cells(), setup.mesh.num_cells());
        let ingest = Arc::new(build_ingest_table(
            setup.mesh.as_ref(),
            &setup.problem.patches,
        ));
        SweepFactory { setup, ingest }
    }

    fn max_faces(&self) -> usize {
        // Homogeneous element types in this reproduction: probe cell 0.
        self.setup.mesh.num_faces(0)
    }
}

/// Per-program scheduling state: the fine/coarse counterpart of the
/// shared [`SweepMode`].
enum Sched {
    /// DAG-driven execution; `trace` is `Some` while recording.
    Fine {
        state: SweepState,
        trace: Option<(ClusterTrace, Arc<TraceBins>)>,
    },
    /// Coarse replay over the compiled task. `vertices_left` tracks the
    /// remaining workload in vertex units (the unit counting
    /// termination accounts in), not clusters.
    Coarse {
        state: CoarseSweepState,
        task: Arc<ReplayTask>,
        vertices_left: u64,
    },
}

/// Pre-resolved destination of one downwind face of a cluster cell,
/// hoisted once per [`SweepProgram::kernel_cluster`] call so the
/// group-block passes route with a copy instead of re-walking mesh
/// adjacency per (face, group block).
#[derive(Clone, Copy)]
enum FaceRoute {
    /// Upwind, flow-0, boundary or cycle-broken face: nothing to write.
    Skip,
    /// Local downwind neighbour: `face_flux` slot
    /// (`neighbour_local * max_faces + neighbour_face`).
    Local(u32),
    /// Remote downwind neighbour: staging index into the subgraph's
    /// remote CSR ([`Subgraph::rem_dst`]). Indices are assigned by a
    /// running per-vertex counter — remote downwind faces are visited
    /// in the same face order the subgraph packed its remote CSR in,
    /// so the k-th remote face of vertex `v` stages at
    /// `rem_off[v] + k` without a position scan.
    Remote(u32),
}

/// The patch-program of one `(patch, angle)` sweep task.
pub struct SweepProgram<T: SweepTopology + Send + Sync + 'static> {
    id: ProgramId,
    setup_mesh: Arc<T>,
    problem: Arc<SweepProblem>,
    materials: Arc<MaterialSet>,
    emission: Arc<Vec<f64>>,
    flux_bins: Arc<FluxBins>,
    kernel: KernelKind,
    grain: usize,
    groups: usize,
    weight: f64,
    dir: [f64; 3],
    max_faces: usize,
    /// Scheduling state (fine counters + ready queue, or coarse replay).
    sched: Sched,
    /// Incoming face flux per `local_cell * max_faces * groups`
    /// (zeroed in place at epoch resets — never reallocated).
    face_flux: Vec<f64>,
    /// Scalar-flux accumulation per `local_cell * groups` (w_a · ψ̄).
    /// Handed to the flux bin on completion (the one buffer that is
    /// given away per epoch by design).
    phi_part: Vec<f64>,
    /// Outgoing remote face-flux staging per
    /// `fine_remote_edge * groups`, addressed by the subgraph's remote
    /// CSR in both scheduling modes: the group-block kernel passes
    /// write block sub-slices here, then fine mode assembles stream
    /// items from it post-hoc and coarse mode's pre-resolved
    /// [`ReplayTask`] emissions read it directly.
    remote_vals: Vec<f64>,
    /// Shared `(dst_cell, src_cell) → face` ingest table (fine path).
    ingest: Arc<IngestTable>,
    /// Fine-path per-destination stream writers, persistent across
    /// compute calls and epochs (entries keep their map slot; buffers
    /// are frozen into payloads per flush).
    stream_writers: HashMap<PatchId, Writer>,
    /// Item counts matching [`SweepProgram::stream_writers`].
    stream_counts: HashMap<PatchId, u32>,
    /// Coarse-path ingest scratch: the slot block of the stream being
    /// consumed (reused across inputs).
    slot_scratch: Vec<u32>,
    /// Per-cluster hoisted cell geometry (phase 0 of
    /// [`SweepProgram::kernel_cluster`]; reused across calls).
    geom_scratch: Vec<CellGeom>,
    /// Per-cluster hoisted face routes, `cluster_len * max_faces`
    /// (reused across calls).
    route_scratch: Vec<FaceRoute>,
}

impl<T: SweepTopology + Send + Sync + 'static> SweepProgram<T> {
    /// Ingest one *fine* stream item (`dst_cell`, `src_cell`, `groups`
    /// flux values): resolve the destination's upwind face through the
    /// pre-built [`IngestTable`] (no face scan) and write the values
    /// into that slot. Returns the destination's local vertex index.
    /// (Coarse streams skip even the table — their items carry the
    /// plan-resolved slot on the wire.)
    fn ingest_item(&mut self, r: &mut Reader) -> u32 {
        let dst_cell = r.get_u32();
        let src_cell = r.get_u32();
        let li = self.problem.patches.local_index(dst_cell as usize);
        let face = *self
            .ingest
            .get(&pair_key(dst_cell, src_cell))
            .expect("stream item with non-adjacent cells") as usize;
        for g in 0..self.groups {
            self.face_flux[(li * self.max_faces + face) * self.groups + g] = r.get_f64();
        }
        li as u32
    }

    /// Run the numerical kernel over `cluster` (in order): solve every
    /// cell, accumulate the angular-weighted scalar flux, write local
    /// downwind face fluxes in place and stage remote ones in
    /// `remote_vals` (CSR-addressed, consumed by the fine stream
    /// assembly or the coarse emissions). Identical physics in both
    /// scheduling modes — which is what makes the coarse replay
    /// bit-identical to the fine path.
    ///
    /// Cache-blocked: phase 0 hoists per-cell geometry ([`CellGeom`])
    /// and face routes once; phase 1 then streams the cell list once
    /// per [`GROUP_BLOCK`]-wide group block, so each pass touches
    /// contiguous block sub-slices of `face_flux` / `phi_part` /
    /// `remote_vals` and the innermost group loops autovectorize (see
    /// [`crate::kernel`]). Every pass walks the cluster in its
    /// (topological) order, which preserves in-cluster upwind/downwind
    /// dependencies per block exactly as the scalar path did per
    /// group.
    fn kernel_cluster(&mut self, sub: &Subgraph, broken: &HashSet<(u32, u32)>, cluster: &[u32]) {
        let mesh = self.setup_mesh.clone();
        let materials = self.materials.clone();
        let emission = self.emission.clone();
        let problem = self.problem.clone();
        let patches = &problem.patches;
        let groups = self.groups;
        let mf = self.max_faces;

        // Phase 0 — hoist geometry and routes, once per cluster
        // instead of once per (cell, group): this is where the
        // structured mesh's per-call FaceInfo arithmetic and the
        // neighbour/patch/broken-edge resolution drop out of the group
        // loop entirely.
        let mut geoms = std::mem::take(&mut self.geom_scratch);
        let mut routes = std::mem::take(&mut self.route_scratch);
        geoms.clear();
        routes.clear();
        routes.resize(cluster.len() * mf, FaceRoute::Skip);
        for (i, &v) in cluster.iter().enumerate() {
            let cell = sub.cells[v as usize] as usize;
            let geom = CellGeom::new(mesh.as_ref(), cell, self.dir);
            let mut rem_seen = 0u32;
            for f in 0..geom.nf {
                if geom.flow[f] <= 0.0 {
                    continue;
                }
                let Some(nb) = mesh.face(cell, f).neighbor.cell() else {
                    continue;
                };
                if !broken.is_empty() && broken.contains(&(cell as u32, nb as u32)) {
                    // Cycle-broken edge: the consumer treats this
                    // face as vacuum; do not write or stream it.
                    continue;
                }
                let nb_patch = patches.patch_of(nb);
                routes[i * mf + f] = if nb_patch == self.id.patch {
                    let nli = patches.local_index(nb);
                    let nface = jsweep_mesh::face_toward(mesh.as_ref(), nb, cell)
                        .expect("downwind neighbour without reciprocal face");
                    FaceRoute::Local((nli * mf + nface) as u32)
                } else {
                    // `Subgraph::build` packs a vertex's remote edges
                    // in this very face order (broken and flow-0
                    // faces skipped on both sides).
                    let k = sub.rem_off[v as usize] + rem_seen;
                    rem_seen += 1;
                    debug_assert_eq!(
                        sub.rem_dst[k as usize].cell, nb as u32,
                        "remote CSR order diverged from face order"
                    );
                    FaceRoute::Remote(k)
                };
            }
            geoms.push(geom);
        }

        // Phase 1 — group-block passes over the cluster's cell list.
        let mut vals = std::mem::take(&mut self.remote_vals);
        let mut g0 = 0;
        while g0 < groups {
            let b = GROUP_BLOCK.min(groups - g0);
            for (i, &v) in cluster.iter().enumerate() {
                let cell = sub.cells[v as usize] as usize;
                let geom = &geoms[i];
                let mat = materials.material(cell);
                // Outgoing block scratch lives on the stack
                // (GROUP_BLOCK-strided even for the tail block); the
                // incoming view reads `face_flux` directly — earlier
                // cells of this pass have already written this cell's
                // upwind slots for the block's groups.
                let mut out = [0.0f64; KERNEL_MAX_FACES * GROUP_BLOCK];
                let mut psi = [0.0f64; GROUP_BLOCK];
                let in_base = (v as usize * mf) * groups + g0;
                let q_base = cell * groups + g0;
                solve_cell_block_geom(
                    geom,
                    self.kernel,
                    &mat.sigma_t[g0..g0 + b],
                    &emission[q_base..q_base + b],
                    &self.face_flux[in_base..],
                    groups,
                    &mut out,
                    GROUP_BLOCK,
                    &mut psi,
                );
                // Accumulate the angular-weighted cell flux.
                let phi_base = v as usize * groups + g0;
                let phi = &mut self.phi_part[phi_base..phi_base + b];
                for (p, &x) in phi.iter_mut().zip(psi.iter()) {
                    *p += self.weight * x;
                }
                // Route the outgoing face-flux blocks.
                for f in 0..geom.nf {
                    let blk = &out[f * GROUP_BLOCK..f * GROUP_BLOCK + b];
                    match routes[i * mf + f] {
                        FaceRoute::Skip => {}
                        FaceRoute::Local(slot) => {
                            let s = slot as usize * groups + g0;
                            self.face_flux[s..s + b].copy_from_slice(blk);
                        }
                        FaceRoute::Remote(k) => {
                            let s = k as usize * groups + g0;
                            vals[s..s + b].copy_from_slice(blk);
                        }
                    }
                }
            }
            g0 += b;
        }
        self.remote_vals = vals;
        self.geom_scratch = geoms;
        self.route_scratch = routes;
    }

    /// Fine-mode `compute()`: pop a cluster of ready vertices
    /// (recording it when tracing), run the kernel, emit one stream per
    /// target patch (clustering aggregates messages, §V-C benefit 2).
    fn compute_fine(&mut self, ctx: &mut ComputeCtx, sub: &Subgraph, broken: &HashSet<(u32, u32)>) {
        let Sched::Fine { state, trace } = &mut self.sched else {
            unreachable!("compute_fine on a coarse program");
        };
        // DAG bookkeeping: pop a cluster of ready vertices.
        let cluster = state.pop_cluster(sub, self.grain, |_, _| {});
        if cluster.is_empty() {
            return;
        }
        if let Some((t, _)) = trace {
            t.record(cluster.clone());
        }
        ctx.work_done = cluster.len() as u64;

        // Numerical kernel + stream assembly (writers/counts are
        // program-resident: map slots persist across compute calls and
        // epochs).
        let mut writers = std::mem::take(&mut self.stream_writers);
        let mut counts = std::mem::take(&mut self.stream_counts);
        let groups = self.groups;
        ctx.kernel(|| {
            self.kernel_cluster(sub, broken, &cluster);
            // Phase 2 — assemble the per-patch stream items from the
            // staged remote values, in (vertex, remote-CSR) order:
            // the CSR is packed in face order, so the items (and
            // therefore the wire bytes) are exactly what per-cell
            // streaming produced. Writers are persistent (reused
            // across compute calls and epochs): an empty one starts a
            // fresh payload with the count placeholder patched at
            // emission.
            for &v in &cluster {
                let src = sub.cells[v as usize];
                for k in sub.rem_range(v) {
                    let dst = sub.rem_dst[k];
                    let w = writers.entry(dst.patch).or_default();
                    if w.is_empty() {
                        w.put_u32(0); // patched below
                    }
                    w.put_u32(dst.cell);
                    w.put_u32(src);
                    for g in 0..groups {
                        w.put_f64(self.remote_vals[k * groups + g]);
                    }
                    *counts.entry(dst.patch).or_default() += 1;
                }
            }
        });

        let mut targets: Vec<PatchId> = counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(p, _)| *p)
            .collect();
        targets.sort_unstable();
        for patch in targets {
            let w = writers.get_mut(&patch).expect("counted patch has a writer");
            let mut bytes = w.take().to_vec();
            bytes[..4].copy_from_slice(&counts[&patch].to_le_bytes());
            counts.insert(patch, 0);
            ctx.send(Stream {
                src: self.id,
                dst: ProgramId::new(patch, self.id.task),
                payload: Bytes::from(bytes),
            });
        }
        self.stream_writers = writers;
        self.stream_counts = counts;

        // On completion, deposit the scalar-flux contribution and, when
        // recording, the cluster trace.
        let Sched::Fine { state, trace } = &mut self.sched else {
            unreachable!();
        };
        if state.is_complete() {
            if let Some((t, bins)) = trace.take() {
                let tid = self
                    .problem
                    .tid(self.id.patch.index(), self.id.task.0 as usize);
                *bins[tid].lock() = Some(t);
            }
            self.deposit_flux();
        }
    }

    /// Coarse-mode `compute()` (§V-E replay): pop one whole coarse
    /// vertex, execute its recorded vertex list in order, and emit
    /// exactly one stream per outgoing coarse edge — no per-vertex
    /// in-degree bookkeeping, no priority recomputation.
    fn compute_coarse(
        &mut self,
        ctx: &mut ComputeCtx,
        sub: &Subgraph,
        broken: &HashSet<(u32, u32)>,
    ) {
        let (task, cv) = {
            let Sched::Coarse {
                state,
                task,
                vertices_left,
            } = &mut self.sched
            else {
                unreachable!("compute_coarse on a fine program");
            };
            let Some(cv) = state.pop(&task.coarse) else {
                return;
            };
            *vertices_left -= task.coarse.clusters[cv as usize].len() as u64;
            (task.clone(), cv)
        };
        let cluster = &task.coarse.clusters[cv as usize];
        // ClusterTrace::record drops empty clusters, so a compiled
        // coarse vertex is never empty; executing one would emit its
        // coarse edges without computing anything.
        assert!(
            !cluster.is_empty(),
            "coarse replay scheduled an empty compute cluster (trace contract violated)"
        );
        ctx.work_done = cluster.len() as u64;

        let groups = self.groups;
        // Serialization happens inside the kernel closure, exactly as
        // the fine path packs its stream items there — keeping the
        // Kernel/GraphOp split comparable between the two modes.
        let streams = ctx.kernel(|| {
            self.kernel_cluster(sub, broken, cluster);
            // One stream per outgoing coarse edge, items pre-resolved
            // against the same remote-CSR staging the kernel wrote.
            task.emits[cv as usize]
                .iter()
                .map(|emit| {
                    // Stream size is exactly known at plan-build time:
                    // the pre-packed skeleton (header + slot block,
                    // one memcpy) followed by the flux block.
                    let mut w =
                        Writer::with_capacity(emit.skeleton.len() + emit.items.len() * 8 * groups);
                    w.put_bytes(&emit.skeleton);
                    for item in &emit.items {
                        let k = item.rem_idx as usize;
                        for g in 0..groups {
                            w.put_f64(self.remote_vals[k * groups + g]);
                        }
                    }
                    Stream {
                        src: self.id,
                        dst: ProgramId::new(emit.patch, self.id.task),
                        payload: w.finish(),
                    }
                })
                .collect::<Vec<_>>()
        });
        for stream in streams {
            ctx.send(stream);
        }

        let Sched::Coarse { state, .. } = &self.sched else {
            unreachable!();
        };
        if state.is_complete() {
            self.deposit_flux();
        }
    }

    /// Deposit the finished scalar-flux contribution into the patch
    /// bin. The buffer comes back through [`FluxBins::acquire`] at the
    /// next epoch's reset — the flux round-trip.
    fn deposit_flux(&mut self) {
        let part = std::mem::take(&mut self.phi_part);
        self.flux_bins
            .deposit(self.id.patch.index(), self.id.task.0, part);
    }
}

impl<T: SweepTopology + Send + Sync + 'static> PatchProgram for SweepProgram<T> {
    fn init(&mut self) {
        // State is built in `create`; nothing further. Boundary faces
        // already hold the vacuum condition (zeros).
    }

    fn input(&mut self, _src: ProgramId, payload: Bytes) {
        let mut r = Reader::new(payload);
        if matches!(self.sched, Sched::Coarse { .. }) {
            // One coarse edge per stream: the pre-packed slot block,
            // the flux block, then a single in-degree decrement on the
            // target coarse vertex. Slots are plan-resolved face-flux
            // indices, so ingestion is a direct write — no adjacency
            // scan.
            let cv = r.get_u32();
            let n = r.get_u32() as usize;
            self.slot_scratch.clear();
            self.slot_scratch.reserve(n);
            for _ in 0..n {
                self.slot_scratch.push(r.get_u32());
            }
            for i in 0..n {
                let slot = self.slot_scratch[i] as usize;
                for g in 0..self.groups {
                    self.face_flux[slot * self.groups + g] = r.get_f64();
                }
            }
            let Sched::Coarse { state, .. } = &mut self.sched else {
                unreachable!();
            };
            state.receive(cv);
        } else {
            let n = r.get_u32();
            for _ in 0..n {
                let li = self.ingest_item(&mut r);
                let Sched::Fine { state, .. } = &mut self.sched else {
                    unreachable!();
                };
                state.receive(li);
            }
        }
    }

    fn compute(&mut self, ctx: &mut ComputeCtx) {
        let (p, a) = (self.id.patch.index(), self.id.task.0 as usize);
        let subs_arc = self.problem.subs[a].clone();
        let sub = &subs_arc[p];
        let broken = self.problem.broken[a].clone();
        if matches!(self.sched, Sched::Coarse { .. }) {
            self.compute_coarse(ctx, sub, &broken);
        } else {
            self.compute_fine(ctx, sub, &broken);
        }
    }

    fn vote_to_halt(&self) -> bool {
        match &self.sched {
            Sched::Fine { state, .. } => !state.has_ready(),
            Sched::Coarse { state, .. } => !state.has_ready(),
        }
    }

    fn remaining_work(&self) -> u64 {
        match &self.sched {
            Sched::Fine { state, .. } => state.remaining(),
            Sched::Coarse { vertices_left, .. } => *vertices_left,
        }
    }

    /// Re-arm this resident program for the next source iteration
    /// (persistent-universe epoch): swap in the epoch's emission
    /// density and scheduling mode, reset the scheduling state in
    /// place (same-mode epochs reuse the existing
    /// [`SweepState`]/[`CoarseSweepState`] allocations; a mode switch
    /// builds the new state once), zero `face_flux` in place and
    /// restore the flux accumulator. The big buffers are never
    /// reallocated across same-mode epochs.
    fn reset(&mut self, epoch: &EpochInput) {
        let e = epoch
            .downcast_ref::<SweepEpoch>()
            .expect("SweepProgram reset with a non-SweepEpoch input");
        assert_eq!(
            e.emission.len(),
            self.setup_mesh.num_cells() * self.groups,
            "epoch emission density has the wrong shape"
        );
        self.emission = e.emission.clone();
        if let Some(m) = &e.materials {
            assert_eq!(
                m.num_cells(),
                self.setup_mesh.num_cells(),
                "epoch materials must cover the resident mesh"
            );
            assert_eq!(
                m.num_groups(),
                self.groups,
                "epoch materials cannot change the group count of a resident program"
            );
            self.materials = m.clone();
        }
        let problem = self.problem.clone();
        let (p, a) = (self.id.patch.index(), self.id.task.0 as usize);
        let sub = &problem.subs[a][p];
        match (&mut self.sched, &e.mode) {
            (Sched::Fine { state, trace }, SweepMode::Fine { trace_bins }) => {
                state.reset(sub);
                *trace = trace_bins
                    .as_ref()
                    .filter(|_| problem.canonical_angle(a) == a)
                    .map(|bins| (ClusterTrace::default(), bins.clone()));
            }
            (
                Sched::Coarse {
                    state,
                    task,
                    vertices_left,
                },
                SweepMode::Coarse { plan },
            ) if Arc::ptr_eq(task, &plan.tasks[a][p]) => {
                // Same compiled task: pure in-place re-arm.
                state.reset(&task.coarse);
                *vertices_left = task.coarse.num_vertices() as u64;
            }
            (sched, SweepMode::Coarse { plan }) => {
                // Fine → coarse transition (or a recompiled plan):
                // adopt the new task; later epochs reset it in place.
                let task = plan.tasks[a][p].clone();
                *sched = Sched::Coarse {
                    state: CoarseSweepState::new(&task.coarse),
                    vertices_left: task.coarse.num_vertices() as u64,
                    task,
                };
            }
            (sched, SweepMode::Fine { trace_bins }) => {
                // Coarse → fine transition (coarsening disabled
                // mid-solve): rebuild the fine state.
                let prio = problem.vprio[a][p].clone();
                *sched = Sched::Fine {
                    state: SweepState::new(sub, prio),
                    trace: trace_bins
                        .as_ref()
                        .filter(|_| problem.canonical_angle(a) == a)
                        .map(|bins| (ClusterTrace::default(), bins.clone())),
                };
            }
        }
        // Buffer hygiene: incoming face flux back to the vacuum
        // boundary condition in place; the flux accumulator (handed to
        // the bin last epoch) re-acquired from the pool — the buffer
        // some program of this patch deposited last epoch, so resident
        // epochs allocate nothing; remote staging sized to the
        // subgraph's remote CSR (values are written before read within
        // each compute, so no zeroing needed beyond sizing).
        self.face_flux.iter_mut().for_each(|x| *x = 0.0);
        let n = sub.num_vertices();
        if self.phi_part.capacity() < n * self.groups {
            // Deposited (or never shaped): round-trip via the pool.
            self.phi_part = self
                .flux_bins
                .acquire(self.id.patch.index(), n * self.groups);
        } else {
            // Never deposited (e.g. the last epoch faulted before this
            // program completed): re-zero in place.
            self.phi_part.clear();
            self.phi_part.resize(n * self.groups, 0.0);
        }
        self.remote_vals
            .resize(sub.rem_dst.len() * self.groups, 0.0);
        debug_assert!(
            self.stream_counts.values().all(|&c| c == 0),
            "unsent stream items at epoch boundary"
        );
    }
}

impl<T: SweepTopology + Send + Sync + 'static> ProgramFactory for SweepFactory<T> {
    type Program = SweepProgram<T>;

    fn create(&self, id: ProgramId) -> SweepProgram<T> {
        let s = &self.setup;
        let (p, a) = (id.patch.index(), id.task.0 as usize);
        let sub = &s.problem.subs[a][p];
        let groups = s.materials.num_groups();
        let mf = self.max_faces();
        let n = sub.num_vertices();
        let sched = match &s.mode {
            SweepMode::Fine { trace_bins } => Sched::Fine {
                state: SweepState::new(sub, s.problem.vprio[a][p].clone()),
                // Only canonical angles record: octant members
                // share the canonical DAG, so one trace per
                // octant serves every member at replay time.
                trace: trace_bins
                    .as_ref()
                    .filter(|_| s.problem.canonical_angle(a) == a)
                    .map(|bins| (ClusterTrace::default(), bins.clone())),
            },
            SweepMode::Coarse { plan } => {
                let task = plan.tasks[a][p].clone();
                Sched::Coarse {
                    state: CoarseSweepState::new(&task.coarse),
                    vertices_left: task.coarse.num_vertices() as u64,
                    task,
                }
            }
        };
        SweepProgram {
            id,
            setup_mesh: s.mesh.clone(),
            problem: s.problem.clone(),
            materials: s.materials.clone(),
            emission: s.emission.clone(),
            flux_bins: s.flux_bins.clone(),
            kernel: s.kernel,
            grain: s.grain,
            groups,
            weight: s
                .quadrature
                .ordinate(jsweep_quadrature::AngleId(id.task.0))
                .weight,
            dir: s
                .quadrature
                .direction(jsweep_quadrature::AngleId(id.task.0)),
            max_faces: mf,
            sched,
            face_flux: vec![0.0; n * mf * groups],
            phi_part: s.flux_bins.acquire(id.patch.index(), n * groups),
            remote_vals: vec![0.0; sub.rem_dst.len() * groups],
            ingest: self.ingest.clone(),
            stream_writers: HashMap::new(),
            stream_counts: HashMap::new(),
            slot_scratch: Vec::new(),
            geom_scratch: Vec::new(),
            route_scratch: Vec::new(),
        }
    }

    fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
        let s = &self.setup;
        let mut ids = Vec::new();
        for p in s.problem.patches.patches_on_rank(rank) {
            for a in 0..s.problem.num_angles {
                ids.push(ProgramId::new(p, TaskTag(a as u32)));
            }
        }
        ids
    }

    fn rank_of(&self, id: ProgramId) -> usize {
        self.setup.problem.patches.rank_of(id.patch)
    }

    fn priority(&self, id: ProgramId) -> i64 {
        self.setup.problem.pprio[id.task.0 as usize][id.patch.index()]
    }

    fn initial_workload(&self, id: ProgramId) -> u64 {
        let (p, a) = (id.patch.index(), id.task.0 as usize);
        self.setup.problem.subs[a][p].num_vertices() as u64
    }
}
