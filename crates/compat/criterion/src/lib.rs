//! Offline, API-compatible stand-in for the subset of the
//! [`criterion`] crate that jsweep's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], [`Bencher::iter`]
//! and [`Bencher::iter_batched`].
//!
//! Measurement is a plain wall-clock harness: after a short warm-up,
//! `sample_size` samples are collected within the configured
//! measurement time and the mean / min / max time per iteration is
//! printed. No statistics engine, plots or baselines — but numbers are
//! honest and the benches compile, run and can be eyeballed. Replace
//! with the real crate (same manifest name) when a registry is
//! reachable.
//!
//! [`criterion`]: https://docs.rs/criterion

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`]; the shim treats
/// them all as per-iteration batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in the real crate.
    SmallInput,
    /// Large inputs: few per batch in the real crate.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier helper mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            // Like the real crate: `cargo bench -- --test` runs every
            // routine once, untimed — a CI smoke mode.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark and print its timing summary (or, in `--test`
    /// mode, execute the routine once and report `ok`).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            samples: self.sample_size,
            per_iter: Vec::new(),
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("Testing {id} ... ok");
        } else {
            b.report(id);
        }
        self
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    per_iter: Vec<f64>,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up + calibration: how many iterations fit in ~1ms?
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            if t0.elapsed() > Duration::from_millis(1) || iters_per_sample > 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.per_iter
                .push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs built by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.per_iter.push(t0.elapsed().as_secs_f64());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.per_iter.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let n = self.per_iter.len() as f64;
        let mean = self.per_iter.iter().sum::<f64>() / n;
        let min = self.per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .per_iter
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Collect benchmark functions into a group runner, mirroring the two
/// forms the real macro accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` running every group (benches use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
    }

    #[test]
    fn iter_collects_samples() {
        quick().bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_times_only_routine() {
        quick().bench_function("batched", |b| {
            b.iter_batched(
                || vec![0u8; 64],
                |v| v.iter().map(|&x| x as u32).sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
    }
}
