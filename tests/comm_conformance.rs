//! Backend-generic conformance suite for the `Comm` endpoint surface.
//!
//! The same battery of behavioural pins runs over every transport
//! backend (thread-channel fabric and UNIX-socket fabric), proving the
//! [`jsweep::comm::CommBackend`] contract is honoured identically:
//! per-pair FIFO delivery, `recv_match` stash ordering, `drain_user`
//! preserving reserved-tag protocol traffic, collectives under
//! concurrent user traffic, self-sends, and both termination
//! detectors. Socket-only behaviours (multi-process rendezvous) get
//! their own tests outside the macro.

use bytes::Bytes;
use jsweep::comm::socket::SocketUniverse;
use jsweep::comm::termination::{Counting, Safra, Verdict};
use jsweep::comm::{Comm, Universe, RESERVED_TAG_BASE};

/// A reserved tag no protocol component uses (collective/token/
/// terminate/done occupy base..base+3), so tests can emit reserved
/// traffic without colliding with real collectives.
const TAG_TEST_RESERVED: u32 = RESERVED_TAG_BASE + 9;

/// Instantiate the conformance battery for one backend. `$world` is a
/// `fn(n, Fn(Comm) -> R) -> Vec<R>` world runner (spawn + join).
macro_rules! conformance_suite {
    ($backend:ident, $world:path) => {
        mod $backend {
            use super::*;

            fn world<R, F>(n: usize, f: F) -> Vec<R>
            where
                R: Send + 'static,
                F: Fn(Comm) -> R + Send + Sync + 'static,
            {
                $world(n, f)
            }

            /// Each rank passes a token around the ring; content and
            /// provenance must survive the trip.
            #[test]
            fn ring_pass() {
                let out = world(4, |mut comm| {
                    let next = (comm.rank() + 1) % comm.size();
                    let prev = (comm.rank() + comm.size() - 1) % comm.size();
                    comm.send(
                        next,
                        7,
                        Bytes::copy_from_slice(&(comm.rank() as u64).to_le_bytes()),
                    )
                    .unwrap();
                    let m = comm.recv().unwrap();
                    assert_eq!(m.src, prev);
                    assert_eq!(m.tag, 7);
                    u64::from_le_bytes(m.payload[..8].try_into().unwrap())
                });
                assert_eq!(out, vec![3, 0, 1, 2]);
            }

            /// 100 messages between every ordered pair of ranks must
            /// arrive in send order (per-pair FIFO), whatever the
            /// interleaving across pairs.
            #[test]
            fn per_pair_fifo_ordering() {
                const MSGS: u64 = 100;
                world(3, |mut comm| {
                    let (rank, size) = (comm.rank(), comm.size());
                    for seq in 0..MSGS {
                        for peer in (0..size).filter(|&p| p != rank) {
                            comm.send(peer, 1, Bytes::copy_from_slice(&seq.to_le_bytes()))
                                .unwrap();
                        }
                    }
                    let mut last = vec![None::<u64>; size];
                    for _ in 0..MSGS * (size as u64 - 1) {
                        let m = comm.recv().unwrap();
                        let seq = u64::from_le_bytes(m.payload[..8].try_into().unwrap());
                        match last[m.src] {
                            None => assert_eq!(seq, 0, "first msg from {} out of order", m.src),
                            Some(prev) => assert_eq!(
                                seq,
                                prev + 1,
                                "pair ({}, {rank}) delivered out of order",
                                m.src
                            ),
                        }
                        last[m.src] = Some(seq);
                    }
                    for (src, l) in last.iter().enumerate() {
                        if src != rank {
                            assert_eq!(*l, Some(MSGS - 1));
                        }
                    }
                });
            }

            /// `recv_match` skips non-matching messages into the stash;
            /// later receives must replay the stash in arrival order.
            #[test]
            fn recv_match_stashes_in_arrival_order() {
                world(2, |mut comm| {
                    if comm.rank() == 0 {
                        for &(tag, val) in &[(1u32, 10u8), (2, 20), (1, 11), (3, 30)] {
                            comm.send(1, tag, Bytes::copy_from_slice(&[val])).unwrap();
                        }
                        // Hold rank 0 alive until rank 1 is done, so a
                        // socket EOF can't race the receives.
                        let _ = comm.recv_match(4).unwrap();
                    } else {
                        let m = comm.recv_match(3).unwrap();
                        assert_eq!((m.tag, m.payload[0]), (3, 30));
                        // The three stashed messages come back in the
                        // order they originally arrived.
                        let order: Vec<(u32, u8)> = (0..3)
                            .map(|_| {
                                let m = comm.recv().unwrap();
                                (m.tag, m.payload[0])
                            })
                            .collect();
                        assert_eq!(order, vec![(1, 10), (2, 20), (1, 11)]);
                        comm.send(0, 4, Bytes::new()).unwrap();
                    }
                });
            }

            /// `drain_user` discards queued user messages but must keep
            /// reserved-tag protocol traffic, in arrival order.
            #[test]
            fn drain_user_preserves_reserved_traffic() {
                world(2, |mut comm| {
                    if comm.rank() == 0 {
                        comm.send(1, 5, Bytes::copy_from_slice(b"stale")).unwrap();
                        comm.send(1, TAG_TEST_RESERVED, Bytes::copy_from_slice(b"keep"))
                            .unwrap();
                        comm.send(1, 6, Bytes::copy_from_slice(b"stale2")).unwrap();
                        comm.barrier().unwrap();
                    } else {
                        // The barrier's recv_match stashes everything
                        // rank 0 sent first (per-pair FIFO guarantees
                        // it all precedes the collective release).
                        comm.barrier().unwrap();
                        let dropped = comm.drain_user().unwrap();
                        assert_eq!(dropped, 2, "both user messages dropped");
                        let m = comm.recv().unwrap();
                        assert_eq!(m.tag, TAG_TEST_RESERVED);
                        assert_eq!(&m.payload[..], b"keep");
                    }
                });
            }

            /// Collectives must work while unrelated user traffic is in
            /// flight, and that traffic must survive them untouched.
            #[test]
            fn collectives_under_user_traffic() {
                world(4, |mut comm| {
                    let (rank, size) = (comm.rank(), comm.size());
                    let next = (rank + 1) % size;
                    comm.send(next, 42, Bytes::copy_from_slice(&[rank as u8]))
                        .unwrap();

                    comm.barrier().unwrap();
                    let sum = comm.allreduce_sum_f64(rank as f64 + 0.5).unwrap();
                    assert_eq!(sum, 0.5 + 1.5 + 2.5 + 3.5);
                    let max = comm.allreduce_max_f64(-(rank as f64)).unwrap();
                    assert_eq!(max, 0.0);
                    let total = comm.allreduce_sum_u64(rank as u64 + 1).unwrap();
                    assert_eq!(total, 10);
                    let mut slice = [rank as f64, 1.0];
                    comm.allreduce_sum_f64_slice(&mut slice).unwrap();
                    assert_eq!(slice, [6.0, 4.0]);
                    let gathered = comm.allgather_u64(rank as u64 * 10).unwrap();
                    assert_eq!(gathered, vec![0, 10, 20, 30]);
                    comm.barrier().unwrap();

                    let m = comm.recv_match(42).unwrap();
                    assert_eq!(m.src, (rank + size - 1) % size);
                    assert_eq!(m.payload[0], m.src as u8);
                });
            }

            /// A rank may send to itself; the message loops back
            /// through the normal receive path.
            #[test]
            fn self_send_loops_back() {
                world(2, |mut comm| {
                    let rank = comm.rank();
                    comm.send(rank, 9, Bytes::copy_from_slice(b"me")).unwrap();
                    let m = comm.recv().unwrap();
                    assert_eq!((m.src, m.tag, &m.payload[..]), (rank, 9, &b"me"[..]));
                    comm.barrier().unwrap();
                });
            }

            /// Safra's ring token must detect quiescence only after a
            /// multi-hop message cascade has fully drained.
            #[test]
            fn safra_terminates_after_cascade() {
                const HOPS: u32 = 5;
                let hops = world(3, |mut comm| {
                    let mut safra = Safra::new(comm.rank(), comm.size());
                    let mut done = 0u64;
                    comm.send(
                        (comm.rank() + 1) % comm.size(),
                        1,
                        Bytes::copy_from_slice(&HOPS.to_le_bytes()),
                    )
                    .unwrap();
                    safra.on_send();
                    loop {
                        while let Some(m) = comm.try_recv().unwrap() {
                            match safra.on_message(&m, &comm).unwrap() {
                                Verdict::NotMine => {
                                    safra.on_receive();
                                    done += 1;
                                    let left =
                                        u32::from_le_bytes(m.payload[..4].try_into().unwrap());
                                    if left > 1 {
                                        comm.send(
                                            (comm.rank() + 2) % comm.size(),
                                            1,
                                            Bytes::copy_from_slice(&(left - 1).to_le_bytes()),
                                        )
                                        .unwrap();
                                        safra.on_send();
                                    }
                                }
                                Verdict::Terminated => return done,
                                Verdict::Continue => {}
                            }
                        }
                        if safra.maybe_advance(true, &comm).unwrap() == Verdict::Terminated {
                            return done;
                        }
                        std::thread::yield_now();
                    }
                });
                assert_eq!(hops.iter().sum::<u64>(), 3 * HOPS as u64);
            }

            /// The counting detector must fire exactly when every rank
            /// has reported a drained workload, never before.
            #[test]
            fn counting_terminates_when_all_report() {
                world(3, |mut comm| {
                    let mut counting = Counting::new(comm.rank(), comm.size());
                    // Ranks drain staggered workloads before reporting.
                    let mut remaining = (comm.rank() as u64) * 3;
                    loop {
                        remaining = remaining.saturating_sub(1);
                        if counting.maybe_report(remaining, &comm).unwrap() == Verdict::Terminated {
                            break;
                        }
                        while let Some(m) = comm.try_recv().unwrap() {
                            if counting.on_message(&m, &comm).unwrap() == Verdict::Terminated {
                                break;
                            }
                        }
                        if counting.is_terminated() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    assert!(counting.is_terminated());
                });
            }
        }
    };
}

conformance_suite!(thread_backend, Universe::run);
conformance_suite!(socket_backend, SocketUniverse::run);

/// Socket-only: the multi-process rendezvous (`connect`) must assemble
/// a working world even when "processes" (threads here; real processes
/// in `tests/spmd.rs`) arrive at different times.
#[test]
fn socket_connect_rendezvous_staggered() {
    use std::time::Duration;
    let dir = std::env::temp_dir().join(format!("jsweep-conf-rdv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut handles = Vec::new();
    for rank in 0..3usize {
        let dir = dir.clone();
        handles.push(std::thread::spawn(move || {
            // Stagger arrivals so late listeners exercise the retry loop.
            std::thread::sleep(Duration::from_millis(rank as u64 * 40));
            let mut comm = SocketUniverse::connect(&dir, rank, 3, Duration::from_secs(10)).unwrap();
            let sum = comm.allreduce_sum_u64(rank as u64 + 1).unwrap();
            comm.close();
            sum
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 6);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Socket-only: byte accounting covers wire framing, so a sent payload
/// accounts for more than its raw length.
#[test]
fn socket_bytes_accounting_includes_framing() {
    let out = SocketUniverse::run(2, |mut comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, Bytes::copy_from_slice(&[0u8; 32])).unwrap();
            comm.barrier().unwrap();
            comm.bytes_sent()
        } else {
            let m = comm.recv_match(3).unwrap();
            assert_eq!(m.payload.len(), 32);
            comm.barrier().unwrap();
            0
        }
    });
    // 32 payload bytes + 8-byte header, plus whatever the barrier cost.
    assert!(out[0] >= 40, "framing bytes unaccounted: {}", out[0]);
}
