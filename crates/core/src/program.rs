//! The patch-program interface (paper §III-A, Fig. 6).

use bytes::Bytes;
use jsweep_mesh::PatchId;

/// Task tag distinguishing multiple tasks on the same patch.
///
/// For Sn sweeps the tag is the sweeping angle id, enabling patch-angle
/// parallelism (§V-B); other data-driven components are free to encode
/// anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskTag(pub u32);

/// Identity of a patch-program: `(patch, task)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId {
    /// Hosting patch.
    pub patch: PatchId,
    /// Task on that patch (for Sn sweeps, the angle id).
    pub task: TaskTag,
}

impl ProgramId {
    /// Convenience constructor.
    pub fn new(patch: PatchId, task: TaskTag) -> ProgramId {
        ProgramId { patch, task }
    }
}

/// A unit of inter-program communication (paper Fig. 6 `Stream`).
#[derive(Debug, Clone)]
pub struct Stream {
    /// Producing program.
    pub src: ProgramId,
    /// Consuming program; a stream *activates* its target.
    pub dst: ProgramId,
    /// User-defined data (see `jsweep_comm::pack` for the codec used by
    /// the sweep component).
    pub payload: Bytes,
}

/// Context handed to [`PatchProgram::compute`]: collects output streams
/// and fine-grained timing.
///
/// The runtime can only distinguish "time inside compute"; the split
/// between numerical kernel time and DAG bookkeeping ("graph-op" in
/// Fig. 16) is known to the program, which reports it through
/// [`ComputeCtx::kernel`].
#[derive(Debug, Default)]
pub struct ComputeCtx {
    /// Output streams produced by this compute call.
    pub out: Vec<Stream>,
    /// Workload units completed by this call (e.g. vertices computed);
    /// drives the counting termination detector and progress tracking.
    pub work_done: u64,
    /// Seconds spent in the numerical kernel (via [`ComputeCtx::kernel`]).
    pub kernel_seconds: f64,
}

impl ComputeCtx {
    /// Run the numerical kernel portion of a compute call, attributing
    /// its wall time to the `kernel` category.
    pub fn kernel<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.kernel_seconds += t0.elapsed().as_secs_f64();
        r
    }

    /// Emit an output stream.
    pub fn send(&mut self, stream: Stream) {
        self.out.push(stream);
    }
}

/// Opaque per-epoch input handed to resident programs by
/// [`crate::Universe::run_epoch`].
///
/// The runtime never interprets it: a program downcasts to the concrete
/// epoch type its factory's universe is driven with (e.g. the sweep
/// solver's per-iteration emission density + scheduling mode). Epochs
/// that carry no input use `Arc::new(())`.
pub type EpochInput = dyn std::any::Any + Send + Sync;

/// A data-driven patch-program (paper Fig. 6).
///
/// Lifecycle (Alg. 1): `init` once before the first compute; then any
/// number of rounds of `input*` → `compute` → (outputs collected from
/// the [`ComputeCtx`]) → `vote_to_halt`. The runtime guarantees
/// `compute` is never invoked concurrently for the same program.
///
/// Under a persistent [`crate::Universe`] the same lifecycle repeats
/// per **epoch**: at each epoch boundary the runtime calls
/// [`PatchProgram::reset`] on every resident program (instead of
/// recreating it), then re-runs the `input*`/`compute` rounds to
/// quiescence.
pub trait PatchProgram: Send {
    /// Initialise local context. Called exactly once, before the first
    /// `input`/`compute`.
    fn init(&mut self);

    /// Receive one stream sent to this program.
    fn input(&mut self, src: ProgramId, payload: Bytes);

    /// Perform (partial) computation; emit streams and account work via
    /// the context.
    fn compute(&mut self, ctx: &mut ComputeCtx);

    /// True when no ready work remains (the program will deactivate
    /// until the next stream arrives).
    fn vote_to_halt(&self) -> bool;

    /// Remaining committed workload (counting termination, §III-B).
    fn remaining_work(&self) -> u64;

    /// Re-arm this resident program for a new epoch of a persistent
    /// [`crate::Universe`], reusing its buffers in place.
    ///
    /// Called at the epoch boundary (while the rank is quiescent, so
    /// never concurrently with `input`/`compute`) with the epoch input
    /// passed to [`crate::Universe::run_epoch`]; also called right
    /// after a lazy `create` when a program first materialises in a
    /// later epoch, so factory-fresh state is specialised the same way
    /// as resident state. The default is a no-op: single-epoch programs
    /// need no reset.
    fn reset(&mut self, epoch: &EpochInput) {
        let _ = epoch;
    }
}

/// Creates patch-programs and describes their placement and priority.
///
/// The factory is shared by every rank thread; it is the runtime's view
/// of the problem setup (decomposition, priorities, per-program
/// workload).
pub trait ProgramFactory: Send + Sync + 'static {
    /// Concrete program type.
    type Program: PatchProgram + 'static;

    /// Instantiate the program for `id` (called lazily, on the rank that
    /// hosts it).
    fn create(&self, id: ProgramId) -> Self::Program;

    /// All program ids hosted by `rank`.
    fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId>;

    /// The rank hosting `id` (the route table).
    fn rank_of(&self, id: ProgramId) -> usize;

    /// Scheduling priority `prior(p, a)`; larger runs earlier.
    fn priority(&self, id: ProgramId) -> i64;

    /// Committed workload of `id` (e.g. number of local vertices), used
    /// by counting termination.
    fn initial_workload(&self, id: ProgramId) -> u64;
}

/// Wire overhead of one stream record inside a frame: 4×u32 ids +
/// u32 payload length. Frames themselves add no further header — a
/// frame is just a concatenation of self-delimiting stream records, so
/// `bytes_sent` accounting is independent of how streams are grouped.
pub const STREAM_WIRE_OVERHEAD: usize = 20;

/// Append one stream record to a frame under construction.
///
/// The caller keeps one long-lived [`Writer`] per destination rank and
/// pushes every stream bound there during a drain round; flushing with
/// [`Writer::take`] yields a multi-stream frame in a single buffer
/// (the paper's §II communication aggregation on the wire).
///
/// [`Writer`]: jsweep_comm::pack::Writer
/// [`Writer::take`]: jsweep_comm::pack::Writer::take
pub fn frame_push(w: &mut jsweep_comm::pack::Writer, stream: &Stream) {
    w.put_u32(stream.src.patch.0);
    w.put_u32(stream.src.task.0);
    w.put_u32(stream.dst.patch.0);
    w.put_u32(stream.dst.task.0);
    w.put_u32(stream.payload.len() as u32);
    w.put_bytes(&stream.payload);
}

/// Pack a batch of streams into one frame (convenience over
/// [`frame_push`] + [`Writer::take`] for tests and benches).
///
/// [`Writer::take`]: jsweep_comm::pack::Writer::take
pub fn pack_frame(streams: &[Stream]) -> Bytes {
    let cap: usize = streams
        .iter()
        .map(|s| STREAM_WIRE_OVERHEAD + s.payload.len())
        .sum();
    let mut w = jsweep_comm::pack::Writer::with_capacity(cap);
    for s in streams {
        frame_push(&mut w, s);
    }
    w.finish()
}

/// Decode a frame back into its streams.
///
/// Payloads are zero-copy windows into the frame's allocation
/// ([`Bytes::slice`]), so unpacking a frame of `k` streams performs no
/// payload copies — only `k` header reads.
pub fn unpack_frame(mut frame: Bytes) -> Vec<Stream> {
    use bytes::Buf;
    let mut out = Vec::new();
    while frame.has_remaining() {
        let src_patch = frame.get_u32_le();
        let src_task = frame.get_u32_le();
        let dst_patch = frame.get_u32_le();
        let dst_task = frame.get_u32_le();
        let len = frame.get_u32_le() as usize;
        let payload = frame.slice(0..len);
        frame.advance(len);
        out.push(Stream {
            src: ProgramId::new(PatchId(src_patch), TaskTag(src_task)),
            dst: ProgramId::new(PatchId(dst_patch), TaskTag(dst_task)),
            payload,
        });
    }
    out
}

/// Wire format of a single stream: a frame of one (kept as the unit
/// the aggregated codec is benchmarked against).
pub fn pack_stream(stream: &Stream) -> Bytes {
    pack_frame(std::slice::from_ref(stream))
}

/// Inverse of [`pack_stream`].
pub fn unpack_stream(payload: Bytes) -> Stream {
    let mut streams = unpack_frame(payload);
    debug_assert_eq!(streams.len(), 1, "unpack_stream fed a multi-stream frame");
    streams.pop().expect("empty stream message")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_pack_roundtrip() {
        let s = Stream {
            src: ProgramId::new(PatchId(3), TaskTag(7)),
            dst: ProgramId::new(PatchId(11), TaskTag(0)),
            payload: Bytes::copy_from_slice(b"hello"),
        };
        let packed = pack_stream(&s);
        let back = unpack_stream(packed);
        assert_eq!(back.src, s.src);
        assert_eq!(back.dst, s.dst);
        assert_eq!(&back.payload[..], b"hello");
    }

    #[test]
    fn frame_roundtrip_many_streams() {
        let streams: Vec<Stream> = (0..9u32)
            .map(|i| Stream {
                src: ProgramId::new(PatchId(i), TaskTag(i % 3)),
                dst: ProgramId::new(PatchId(100 + i), TaskTag(0)),
                payload: Bytes::from(vec![i as u8; i as usize]),
            })
            .collect();
        let frame = pack_frame(&streams);
        assert_eq!(
            frame.len(),
            streams
                .iter()
                .map(|s| STREAM_WIRE_OVERHEAD + s.payload.len())
                .sum::<usize>()
        );
        let back = unpack_frame(frame);
        assert_eq!(back.len(), streams.len());
        for (a, b) in back.iter().zip(&streams) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn frame_push_reuses_one_writer_across_flushes() {
        let mut w = jsweep_comm::pack::Writer::new();
        let s = Stream {
            src: ProgramId::new(PatchId(1), TaskTag(0)),
            dst: ProgramId::new(PatchId(2), TaskTag(0)),
            payload: Bytes::copy_from_slice(b"abc"),
        };
        frame_push(&mut w, &s);
        frame_push(&mut w, &s);
        let first = w.take();
        assert_eq!(unpack_frame(first).len(), 2);
        // Same writer keeps serving the next frame.
        frame_push(&mut w, &s);
        assert_eq!(unpack_frame(w.take()).len(), 1);
        assert!(unpack_frame(w.take()).is_empty());
    }

    #[test]
    fn unpack_frame_payloads_share_frame_allocation() {
        let payload = Bytes::from(vec![7u8; 32]);
        let s = Stream {
            src: ProgramId::new(PatchId(0), TaskTag(0)),
            dst: ProgramId::new(PatchId(1), TaskTag(0)),
            payload,
        };
        let frame = pack_frame(&[s.clone(), s]);
        let whole = frame.clone(); // same allocation, independent cursor
        let back = unpack_frame(frame);
        let base = whole.as_ref().as_ptr() as usize;
        let end = base + whole.len();
        for b in &back {
            assert_eq!(&b.payload[..], &[7u8; 32][..]);
            // Zero-copy: the payload points into the frame allocation.
            let p = b.payload.as_ref().as_ptr() as usize;
            assert!(p >= base && p + b.payload.len() <= end);
        }
    }

    #[test]
    fn compute_ctx_accumulates_kernel_time() {
        let mut ctx = ComputeCtx::default();
        let v = ctx.kernel(|| 41 + 1);
        assert_eq!(v, 42);
        ctx.kernel(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(ctx.kernel_seconds >= 0.002);
    }

    #[test]
    fn program_id_ordering_is_patch_major() {
        let a = ProgramId::new(PatchId(1), TaskTag(9));
        let b = ProgramId::new(PatchId(2), TaskTag(0));
        assert!(a < b);
    }
}
