//! Virtual strong-scaling study with the discrete-event simulator.
//!
//! ```text
//! cargo run --release --example scaling_sim [n] [max_ranks]
//! ```
//!
//! Compiles a structured sweep problem once per rank count and
//! simulates one S4 sweep iteration on a Tianhe-II-class machine model
//! from 1 rank up to `max_ranks`, printing the virtual time, speedup,
//! parallel efficiency and time breakdown — a miniature Fig. 12.

use jsweep::prelude::*;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(32);
    let max_ranks: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(32);

    let mesh = Arc::new(StructuredMesh::unit(n, n, n));
    let quad = QuadratureSet::sn(4);
    println!(
        "{n}³ cells × {} angles = {} sweep vertices per iteration\n",
        quad.len(),
        n * n * n * quad.len()
    );
    println!(
        "{:>6} {:>6} {:>12} {:>9} {:>8}  {:>7} {:>7} {:>7}",
        "ranks", "cores", "virt_time_s", "speedup", "par_eff", "kern%", "ovhd%", "idle%"
    );

    let mut base: Option<f64> = None;
    let mut ranks = 1;
    while ranks <= max_ranks {
        let patches = decompose_structured(&mesh, (8, 8, 8), ranks);
        let problem = SweepProblem::build(
            mesh.as_ref(),
            patches,
            &quad,
            &ProblemOptions {
                share_octant_dags: true,
                ..Default::default()
            },
        );
        let machine = MachineModel::cluster(ranks, 11);
        let result = simulate(
            &problem,
            &machine,
            &SimOptions {
                grain: 256,
                record_traces: false,
            },
        );
        let t0 = *base.get_or_insert(result.time);
        let speedup = t0 / result.time;
        let eff = speedup / ranks as f64;
        let total = result.breakdown.total();
        println!(
            "{:>6} {:>6} {:>12.5} {:>9.2} {:>7.1}%  {:>6.1}% {:>6.1}% {:>6.1}%",
            ranks,
            machine.cores(),
            result.time,
            speedup,
            100.0 * eff,
            100.0 * result.breakdown.kernel / total,
            100.0
                * (result.breakdown.graph_op
                    + result.breakdown.pack_unpack
                    + result.breakdown.comm)
                / total,
            100.0 * result.breakdown.idle / total,
        );
        ranks *= 2;
    }
}
