#![deny(missing_docs)]

//! JSweep core: the patch-centric data-driven abstraction and its
//! runtime system (paper §III–§IV).
//!
//! # The abstraction
//!
//! Data-driven logic on a patch is a **patch-program**, identified by a
//! `(patch, task)` pair ([`ProgramId`]). Users "think like a patch":
//! they implement the five primitives of [`PatchProgram`]
//! (`init` / `input` / `compute` / `output` / `vote_to_halt`; here
//! `compute` collects outputs directly) and never see how programs are
//! placed or scheduled. Programs are **fully reentrant** — `compute`
//! may be called any number of times with partial progress — which is
//! what makes interleaved inter-patch dependencies (the zig-zag of
//! Fig. 4) deadlock-free. All communication is a [`Stream`] between two
//! program ids.
//!
//! A program is *active* or *inactive* (Fig. 7): it deactivates when
//! `vote_to_halt` returns true and reactivates when a stream arrives.
//! The computation terminates when every program is inactive and no
//! stream is in flight; §IV-C's two detectors live in `jsweep_comm`.
//!
//! # The runtime
//!
//! One [`jsweep_comm::Comm`] rank hosts a **master** (stream router, progress
//! tracker, termination) and `W` **workers** (patch-program executors),
//! matching Fig. 8. The master owns the route table; workers share a
//! priority-ordered active-program pool — the limiting ideal of the
//! paper's "assign to the lightest worker" policy (every idle worker
//! immediately takes the globally highest-priority active program).
//! Every thread keeps a time [`stats::Breakdown`] so runs can be
//! profiled into the kernel / graph-op / pack-unpack / comm / idle
//! categories of Fig. 16.

//! # The persistent universe
//!
//! Iterative workloads (source iterations, time steps, eigenvalue
//! loops) run the same program topology many times over. The
//! [`Universe`] handle keeps the whole world — rank threads, workers,
//! pools, routing state and every patch-program — resident across
//! **epochs**: [`Universe::launch`] once, [`Universe::run_epoch`] per
//! iteration (programs are re-armed in place via
//! [`PatchProgram::reset`] with an opaque [`EpochInput`]), then
//! [`Universe::shutdown`]. [`run_universe`] remains as the one-epoch
//! convenience wrapper.

pub mod engine;
pub mod fault;
pub mod pool;
pub mod program;
pub mod stats;
pub mod telemetry;
pub mod universe;

pub use engine::{run_rank, run_universe, RuntimeConfig, SpmdRank, TerminationKind};
pub use fault::{panic_message, EpochFault, FaultKind, FaultPlan, FaultPlanBuilder};
pub use jsweep_comm::TransportKind;
pub use program::{
    pack_frame, unpack_frame, ComputeCtx, EpochInput, PatchProgram, ProgramFactory, ProgramId,
    Stream, TaskTag,
};
pub use stats::{Breakdown, RunStats};
pub use telemetry::TelemetryHandle;
pub use universe::{fabric_for, CommFabric, EpochTuning, Universe};
