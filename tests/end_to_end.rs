//! Cross-crate integration tests: the full JSweep stack (mesh →
//! decomposition → DAG → runtime → physics) against the serial golden
//! solver, across mesh families, kernels, decompositions and
//! termination detectors.

use jsweep::prelude::*;
use jsweep::transport::kobayashi;
use std::sync::Arc;

fn assert_flux_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * y.abs().max(1e-30),
            "flux mismatch at {i}: {x} vs {y}"
        );
    }
}

fn config() -> SnConfig {
    SnConfig {
        max_iterations: 6,
        tolerance: 1e-10,
        grain: 32,
        workers_per_rank: 2,
        ..Default::default()
    }
}

#[test]
fn structured_three_ranks_matches_serial() {
    let mesh = Arc::new(StructuredMesh::unit(9, 9, 9));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        729,
        Material::uniform(1, 1.2, 0.6, 1.0),
    ));
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &config());
    let patches = decompose_structured(&mesh, (3, 3, 3), 3);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &config());
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
}

#[test]
fn kobayashi_parallel_matches_serial_dd() {
    let k = kobayashi::kobayashi(12, 0.5);
    let mesh = Arc::new(k.mesh);
    let mats = Arc::new(k.materials);
    let quad = QuadratureSet::sn(2);
    let mut cfg = config();
    cfg.kernel = KernelKind::DiamondDifference;
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &cfg);
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg);
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
}

#[test]
fn tet_ball_multigroup_matches_serial() {
    let mesh = Arc::new(jsweep::mesh::tetgen::ball(3, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material {
            sigma_t: vec![1.0, 2.0],
            sigma_s: vec![0.5, 0.8],
            source: vec![1.0, 0.5],
        },
    ));
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &config());
    let patches = decompose_unstructured(mesh.as_ref(), 64, 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &config());
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
}

#[test]
fn safra_and_counting_terminations_agree() {
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let patches = decompose_structured(&mesh, (3, 3, 3), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let mut cfg_counting = config();
    cfg_counting.termination = TerminationKind::Counting;
    let mut cfg_safra = config();
    cfg_safra.termination = TerminationKind::Safra;
    let a = solve_parallel(
        mesh.clone(),
        prob.clone(),
        &quad,
        mats.clone(),
        &cfg_counting,
    );
    let b = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg_safra);
    assert_eq!(a.phi, b.phi, "termination protocol must not change physics");
}

#[test]
fn every_priority_strategy_gives_identical_flux() {
    // Scheduling order must never change the converged physics.
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.5, 2.0),
    ));
    let mut reference: Option<Vec<f64>> = None;
    for strat in [
        PriorityStrategy::Bfs,
        PriorityStrategy::Ldcp,
        PriorityStrategy::Slbd,
    ] {
        let patches = decompose_structured(&mesh, (3, 3, 3), 2);
        let prob = Arc::new(SweepProblem::build(
            mesh.as_ref(),
            patches,
            &quad,
            &ProblemOptions {
                vertex_strategy: strat,
                patch_strategy: strat,
                ..Default::default()
            },
        ));
        let sol = solve_parallel(mesh.clone(), prob, &quad, mats.clone(), &config());
        match &reference {
            None => reference = Some(sol.phi),
            Some(r) => assert_flux_close(&sol.phi, r, 1e-12),
        }
    }
}

#[test]
fn grain_does_not_change_physics() {
    let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.3, 1.0),
    ));
    let patches = decompose_structured(&mesh, (2, 2, 2), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let mut reference: Option<Vec<f64>> = None;
    for grain in [1, 7, 64, 100_000] {
        let mut cfg = config();
        cfg.grain = grain;
        let sol = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &cfg);
        match &reference {
            None => reference = Some(sol.phi),
            Some(r) => assert_flux_close(&sol.phi, r, 1e-12),
        }
    }
}

#[test]
fn worker_count_does_not_change_physics() {
    let mesh = Arc::new(jsweep::mesh::tetgen::cube(2, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let patches = decompose_unstructured(mesh.as_ref(), 12, 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    let mut reference: Option<Vec<f64>> = None;
    for workers in [1, 2, 4] {
        let mut cfg = config();
        cfg.workers_per_rank = workers;
        let sol = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &cfg);
        match &reference {
            None => reference = Some(sol.phi),
            Some(r) => assert_eq!(&sol.phi, r, "workers={workers}"),
        }
    }
}

#[test]
fn coarse_replay_bit_identical_structured_both_terminations() {
    // §V-E golden: with coarsen on, iterations ≥ 2 run on the
    // coarsened graph, yet the flux must equal the fine path *bit for
    // bit* — the replay executes the same cells with the same inputs.
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ));
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    for termination in [TerminationKind::Counting, TerminationKind::Safra] {
        let mut fine_cfg = config();
        fine_cfg.termination = termination;
        fine_cfg.coarsen = false;
        let mut coarse_cfg = fine_cfg.clone();
        coarse_cfg.coarsen = true;
        let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
        let coarse = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &coarse_cfg);
        assert_eq!(
            fine.phi, coarse.phi,
            "replay flux must be bit-identical ({termination:?})"
        );
        assert_eq!(fine.iterations, coarse.iterations);
        assert!(coarse.iterations >= 2, "need replay iterations to compare");
        assert!(coarse.coarse_build_seconds > 0.0, "plan was never built");
        assert_eq!(fine.coarse_build_seconds, 0.0);
        // Both paths complete the same committed workload per
        // iteration. (Compute-*call* counts are scheduling noise —
        // spurious activations — and are compared in the bench, not
        // asserted here.)
        for (f, c) in fine.stats.iter().zip(&coarse.stats) {
            assert_eq!(f.work_done, c.work_done);
        }
    }
}

#[test]
fn coarse_replay_bit_identical_unstructured_both_terminations() {
    let mesh = Arc::new(jsweep::mesh::tetgen::ball(3, 1.0));
    let n = mesh.num_cells();
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        n,
        Material {
            sigma_t: vec![1.0, 2.0],
            sigma_s: vec![0.5, 0.8],
            source: vec![1.0, 0.5],
        },
    ));
    let patches = decompose_unstructured(mesh.as_ref(), 64, 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    for termination in [TerminationKind::Counting, TerminationKind::Safra] {
        let mut fine_cfg = config();
        fine_cfg.termination = termination;
        fine_cfg.coarsen = false;
        let mut coarse_cfg = fine_cfg.clone();
        coarse_cfg.coarsen = true;
        let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
        let coarse = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &coarse_cfg);
        assert_eq!(
            fine.phi, coarse.phi,
            "replay flux must be bit-identical on tets ({termination:?})"
        );
        assert!(coarse.iterations >= 2);
    }
}

#[test]
fn coarse_replay_bit_identical_deformed_with_cycle_breaking() {
    // Broken upwind edges must be excluded identically from the fine
    // DAG and the replayed coarse graph.
    use jsweep::mesh::deformed::DeformedMesh;
    let mesh = Arc::new(DeformedMesh::jittered(5, 5, 5, 0.3, 23));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        125,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let mut patches = jsweep::mesh::partition::rcb(mesh.as_ref(), 4);
    patches.distribute((0..4).map(|p| (p % 2) as u32).collect(), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            check_cycles: true,
            ..Default::default()
        },
    ));
    let mut fine_cfg = config();
    fine_cfg.break_cycles = true;
    fine_cfg.coarsen = false;
    let mut coarse_cfg = fine_cfg.clone();
    coarse_cfg.coarsen = true;
    let fine = solve_parallel(mesh.clone(), prob.clone(), &quad, mats.clone(), &fine_cfg);
    let coarse = solve_parallel(mesh.clone(), prob, &quad, mats, &coarse_cfg);
    assert_eq!(fine.phi, coarse.phi);
}

#[test]
fn deformed_mesh_sweeps_complete_with_cycle_breaking() {
    use jsweep::graph::{cycles, Subgraph, SweepState};

    let mesh = jsweep::mesh::deformed::DeformedMesh::jittered(6, 6, 6, 0.35, 11);
    let quad = QuadratureSet::sn(2);
    let patches = PatchSet::single(mesh.num_cells());
    for (a, o) in quad.iter() {
        let broken = cycles::broken_edges_for_direction(&mesh, o.dir);
        let sub = Subgraph::build(&mesh, &patches, PatchId(0), a, o.dir, &broken);
        let mut st = SweepState::with_priorities(&sub, &vec![0; sub.num_vertices()]);
        while !st.is_complete() {
            let cluster = st.pop_cluster(&sub, 64, |_, _| {});
            assert!(
                !cluster.is_empty(),
                "deadlock on deformed mesh, direction {:?} ({} broken edges)",
                o.dir,
                broken.len()
            );
        }
    }
}

#[test]
fn des_and_threaded_runtime_compute_the_same_vertex_count() {
    let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
    let quad = QuadratureSet::sn(2);
    let patches = decompose_structured(&mesh, (4, 4, 4), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    // DES vertex count.
    let machine = MachineModel::cluster(2, 2);
    let des = simulate(&prob, &machine, &SimOptions::default());
    // Threaded-runtime vertex count: one sweep = one source iteration
    // with zero scattering.
    let mats = Arc::new(MaterialSet::homogeneous(
        512,
        Material::uniform(1, 1.0, 0.0, 1.0),
    ));
    let mut cfg = config();
    cfg.max_iterations = 1;
    let sol = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg);
    let threaded_vertices: u64 = sol.stats.iter().map(|s| s.work_done).sum();
    assert_eq!(des.vertices, threaded_vertices);
}

#[test]
fn deformed_mesh_parallel_matches_serial_with_cycle_breaking() {
    use jsweep::mesh::deformed::DeformedMesh;
    let mesh = Arc::new(DeformedMesh::jittered(6, 6, 6, 0.3, 17));
    let quad = QuadratureSet::sn(2);
    let mats = Arc::new(MaterialSet::homogeneous(
        216,
        Material::uniform(1, 1.0, 0.4, 1.0),
    ));
    let mut cfg = config();
    cfg.break_cycles = true;
    let serial = solve_serial(mesh.as_ref(), &quad, &mats, &cfg);
    let patches = jsweep::mesh::partition::rcb(mesh.as_ref(), 8);
    let mut patches = patches;
    patches.distribute((0..8).map(|p| (p % 2) as u32).collect(), 2);
    let prob = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            check_cycles: true,
            ..Default::default()
        },
    ));
    let par = solve_parallel(mesh.clone(), prob, &quad, mats, &cfg);
    assert_flux_close(&par.phi, &serial.phi, 1e-11);
    assert!(par.phi.iter().all(|&x| x > 0.0));
}
