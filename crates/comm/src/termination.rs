//! Distributed termination detection (paper §IV-C).
//!
//! The runtime supports two detectors, matching the paper:
//!
//! * [`Safra`] — the general token-based consensus protocol
//!   (Dijkstra–Feijen–van Gasteren / Safra style, the reference 14 the
//!   paper cites): a coloured token circulates a ring carrying a message-count
//!   balance; rank 0 announces termination when a white token returns
//!   with balance zero. Works for *any* data-driven computation.
//! * [`Counting`] — the workload-counting shortcut for algorithms whose
//!   total work is known in advance (sweeps: every `(cell, angle)` is
//!   computed exactly once). Each rank reports "locally done" once its
//!   committed workload is exhausted; rank 0 announces termination when
//!   all ranks have reported. No negotiation rounds are needed.
//!
//! Both emit/consume messages through a [`Comm`] using the reserved
//! tags; the runtime master polls `on_message` for anything it does not
//! recognise and calls `maybe_advance` when its rank is idle. Every
//! call that may touch the fabric returns `Result<Verdict, CommError>`
//! so a dead peer surfaces to the caller instead of unwinding.

use crate::{Comm, CommError, Message, TAG_LOCAL_DONE, TAG_TERMINATE, TAG_TOKEN};
use bytes::Bytes;

/// Outcome of feeding a substrate message to a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Not a termination-protocol message; the caller should handle it.
    NotMine,
    /// Consumed by the protocol; keep running.
    Continue,
    /// Global termination has been established.
    Terminated,
}

/// Dijkstra–Safra token-ring termination detector.
#[derive(Debug)]
pub struct Safra {
    rank: usize,
    size: usize,
    /// Messages sent minus messages received (user traffic only).
    counter: i64,
    /// Black = this rank received a message since last passing the token.
    black: bool,
    /// Token held by this rank: `(accumulated count, token is black)`.
    token: Option<(i64, bool)>,
    terminated: bool,
}

impl Safra {
    /// Fresh detector; rank 0 will initiate the first token when idle.
    pub fn new(rank: usize, size: usize) -> Safra {
        Safra {
            rank,
            size,
            counter: 0,
            black: false,
            // Rank 0 starts as if it must create the first token.
            token: None,
            terminated: false,
        }
    }

    /// Record a user message sent.
    pub fn on_send(&mut self) {
        self.counter += 1;
    }

    /// Record a user message received.
    pub fn on_receive(&mut self) {
        self.counter -= 1;
        self.black = true;
    }

    /// True once global termination has been announced.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Feed a substrate message; returns the verdict.
    pub fn on_message(&mut self, m: &Message, comm: &Comm) -> Result<Verdict, CommError> {
        match m.tag {
            TAG_TOKEN => {
                let count = i64::from_le_bytes(m.payload[..8].try_into().unwrap());
                let black = m.payload[8] != 0;
                self.token = Some((count, black));
                let _ = comm;
                Ok(Verdict::Continue)
            }
            TAG_TERMINATE => {
                self.terminated = true;
                Ok(Verdict::Terminated)
            }
            _ => Ok(Verdict::NotMine),
        }
    }

    /// Call when this rank is idle (no local work, no unprocessed input).
    /// Forwards or initiates the token; rank 0 decides termination and
    /// broadcasts `TAG_TERMINATE` (returned verdict is `Terminated` for
    /// rank 0 in that instant; other ranks learn via the broadcast).
    pub fn maybe_advance(&mut self, idle: bool, comm: &Comm) -> Result<Verdict, CommError> {
        if self.terminated {
            return Ok(Verdict::Terminated);
        }
        if !idle {
            return Ok(Verdict::Continue);
        }
        if self.rank == 0 {
            match self.token.take() {
                None => {
                    // Initiate a fresh white probe.
                    self.send_token(comm, 0, false)?;
                    self.black = false;
                    Ok(Verdict::Continue)
                }
                Some((count, black)) => {
                    if !black && !self.black && count + self.counter == 0 {
                        // White token, zero balance: quiescence.
                        for r in 0..self.size {
                            if r != 0 {
                                comm.send(r, TAG_TERMINATE, Bytes::new())?;
                            }
                        }
                        self.terminated = true;
                        Ok(Verdict::Terminated)
                    } else {
                        // Failed probe: start another round.
                        self.send_token(comm, 0, false)?;
                        self.black = false;
                        Ok(Verdict::Continue)
                    }
                }
            }
        } else if let Some((count, black)) = self.token.take() {
            let out_black = black || self.black;
            self.send_token(comm, count + self.counter, out_black)?;
            self.black = false;
            Ok(Verdict::Continue)
        } else {
            Ok(Verdict::Continue)
        }
    }

    fn send_token(&self, comm: &Comm, count: i64, black: bool) -> Result<(), CommError> {
        let next = (self.rank + 1) % self.size;
        let mut payload = Vec::with_capacity(9);
        payload.extend_from_slice(&count.to_le_bytes());
        payload.push(black as u8);
        comm.send(next, TAG_TOKEN, Bytes::from(payload))
    }
}

/// Workload-counting termination for known-total computations.
#[derive(Debug)]
pub struct Counting {
    rank: usize,
    size: usize,
    reported: bool,
    done_ranks: usize,
    terminated: bool,
}

impl Counting {
    /// Fresh detector.
    pub fn new(rank: usize, size: usize) -> Counting {
        Counting {
            rank,
            size,
            reported: false,
            done_ranks: 0,
            terminated: false,
        }
    }

    /// True once global termination has been announced.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Call whenever local remaining workload may have reached zero.
    /// Reports to rank 0 exactly once; rank 0 broadcasts termination
    /// when every rank (including itself) has reported.
    pub fn maybe_report(
        &mut self,
        remaining_workload: u64,
        comm: &Comm,
    ) -> Result<Verdict, CommError> {
        if self.terminated {
            return Ok(Verdict::Terminated);
        }
        if remaining_workload == 0 && !self.reported {
            self.reported = true;
            if self.rank == 0 {
                self.done_ranks += 1;
                return self.check_all_done(comm);
            } else {
                comm.send(0, TAG_LOCAL_DONE, Bytes::new())?;
            }
        }
        Ok(Verdict::Continue)
    }

    /// Feed a substrate message.
    pub fn on_message(&mut self, m: &Message, comm: &Comm) -> Result<Verdict, CommError> {
        match m.tag {
            TAG_LOCAL_DONE => {
                debug_assert_eq!(self.rank, 0, "only rank 0 collects done reports");
                self.done_ranks += 1;
                self.check_all_done(comm)
            }
            TAG_TERMINATE => {
                self.terminated = true;
                Ok(Verdict::Terminated)
            }
            _ => Ok(Verdict::NotMine),
        }
    }

    fn check_all_done(&mut self, comm: &Comm) -> Result<Verdict, CommError> {
        if self.done_ranks == self.size {
            for r in 1..self.size {
                comm.send(r, TAG_TERMINATE, Bytes::new())?;
            }
            self.terminated = true;
            Ok(Verdict::Terminated)
        } else {
            Ok(Verdict::Continue)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    /// Drive Safra on a workload where each rank sends `n` messages to
    /// the next rank and consumes `n` from the previous, then idles.
    #[test]
    fn safra_detects_quiescence_after_traffic() {
        let results = Universe::run(3, |mut comm| {
            let mut safra = Safra::new(comm.rank(), comm.size());
            let next = (comm.rank() + 1) % comm.size();
            let mut to_send = 5u32;
            let mut received = 0u32;
            let mut spins = 0u64;
            loop {
                if to_send > 0 {
                    comm.send(next, 1, Bytes::new()).unwrap();
                    safra.on_send();
                    to_send -= 1;
                }
                while let Some(m) = comm.try_recv().unwrap() {
                    match safra.on_message(&m, &comm).unwrap() {
                        Verdict::NotMine => {
                            received += 1;
                            safra.on_receive();
                        }
                        Verdict::Terminated => return (received, spins),
                        Verdict::Continue => {}
                    }
                }
                let idle = to_send == 0 && received == 5;
                if safra.maybe_advance(idle, &comm).unwrap() == Verdict::Terminated {
                    return (received, spins);
                }
                spins += 1;
                std::thread::yield_now();
                assert!(spins < 20_000_000, "termination never detected");
            }
        });
        for (received, _) in results {
            assert_eq!(received, 5);
        }
    }

    #[test]
    fn safra_single_rank_terminates_immediately() {
        let r = Universe::run(1, |mut comm| {
            let mut safra = Safra::new(0, 1);
            let mut spins = 0;
            loop {
                while let Some(m) = comm.try_recv().unwrap() {
                    if safra.on_message(&m, &comm).unwrap() == Verdict::Terminated {
                        return spins;
                    }
                }
                if safra.maybe_advance(true, &comm).unwrap() == Verdict::Terminated {
                    return spins;
                }
                spins += 1;
                assert!(spins < 1000);
            }
        });
        assert!(r[0] < 1000);
    }

    #[test]
    fn safra_does_not_fire_while_messages_outstanding() {
        // Rank 0 idles immediately but rank 1 still owes it a message;
        // termination must wait for that message.
        let results = Universe::run(2, |mut comm| {
            let mut safra = Safra::new(comm.rank(), comm.size());
            let mut got_message = comm.rank() == 1; // rank 1 expects none
            if comm.rank() == 1 {
                // Delay, then send one message to rank 0.
                std::thread::sleep(std::time::Duration::from_millis(20));
                comm.send(0, 1, Bytes::new()).unwrap();
                safra.on_send();
            }
            loop {
                while let Some(m) = comm.try_recv().unwrap() {
                    match safra.on_message(&m, &comm).unwrap() {
                        Verdict::NotMine => {
                            got_message = true;
                            safra.on_receive();
                        }
                        Verdict::Terminated => return got_message,
                        Verdict::Continue => {}
                    }
                }
                let idle = comm.rank() == 1 || got_message || comm.rank() == 0;
                if safra.maybe_advance(idle, &comm).unwrap() == Verdict::Terminated {
                    return got_message;
                }
                std::thread::yield_now();
            }
        });
        // Rank 0 must have received the late message before terminating.
        assert!(results[0], "terminated before delivering in-flight message");
    }

    #[test]
    fn counting_terminates_when_all_report() {
        let results = Universe::run(4, |mut comm| {
            let mut det = Counting::new(comm.rank(), comm.size());
            // Pretend each rank finishes after rank*1ms.
            std::thread::sleep(std::time::Duration::from_millis(comm.rank() as u64));
            let mut spins = 0u64;
            loop {
                if det.maybe_report(0, &comm).unwrap() == Verdict::Terminated {
                    return true;
                }
                while let Some(m) = comm.try_recv().unwrap() {
                    if det.on_message(&m, &comm).unwrap() == Verdict::Terminated {
                        return true;
                    }
                }
                spins += 1;
                std::thread::yield_now();
                if spins > 50_000_000 {
                    return false;
                }
            }
        });
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn counting_waits_for_nonzero_workload() {
        let r = Universe::run(1, |comm| {
            let mut det = Counting::new(0, 1);
            assert_eq!(det.maybe_report(3, &comm).unwrap(), Verdict::Continue);
            assert!(!det.is_terminated());
            assert_eq!(det.maybe_report(0, &comm).unwrap(), Verdict::Terminated);
            det.is_terminated()
        });
        assert!(r[0]);
    }
}
