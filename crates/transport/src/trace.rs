//! Particle tracing: the second data-driven component (paper §VIII).
//!
//! The conclusions note that besides Sn sweeps, "particle trace … we
//! have implemented as another component in JAxMIN" on the same
//! patch-centric abstraction. This module reproduces it: straight-line
//! particles carry a path-length budget through a structured mesh,
//! depositing track length in every cell they cross (the classic
//! track-length flux estimator). A particle that crosses into another
//! patch becomes a stream; a patch-program is active while it holds
//! particles.
//!
//! Unlike sweeps, the per-rank workload is *not* known in advance (a
//! rank cannot predict how many particles will wander into it), so
//! this component requires the general Dijkstra–Safra termination
//! protocol — exercising the §IV-C path that sweeps bypass.

use bytes::Bytes;
use jsweep_comm::pack::{Reader, Writer};
use jsweep_core::{
    run_universe, ComputeCtx, PatchProgram, ProgramFactory, ProgramId, RunStats, RuntimeConfig,
    Stream, TaskTag, TerminationKind,
};
use jsweep_mesh::{Neighbor, PatchSet, StructuredMesh, SweepTopology};
use parking_lot::Mutex;
use std::sync::Arc;

/// A particle: position, unit direction, remaining path budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Current position.
    pub pos: [f64; 3],
    /// Unit flight direction.
    pub dir: [f64; 3],
    /// Path length left before the particle is absorbed.
    pub remaining: f64,
}

impl Particle {
    fn pack(&self, w: &mut Writer) {
        for v in self.pos.iter().chain(&self.dir) {
            w.put_f64(*v);
        }
        w.put_f64(self.remaining);
    }

    fn unpack(r: &mut Reader) -> Particle {
        let mut vals = [0.0; 7];
        for v in vals.iter_mut() {
            *v = r.get_f64();
        }
        Particle {
            pos: [vals[0], vals[1], vals[2]],
            dir: [vals[3], vals[4], vals[5]],
            remaining: vals[6],
        }
    }
}

/// Advance a particle inside cell `c` to the cell's boundary (or to
/// exhaustion). Returns `(track_length, next)` where `next` is the
/// neighbouring cell if the particle survives and stays in the domain.
fn advance(mesh: &StructuredMesh, c: usize, p: &mut Particle) -> (f64, Option<usize>) {
    let [dx, dy, dz] = mesh.spacing();
    let h = [dx, dy, dz];
    let origin = mesh.origin();
    let (i, j, k) = mesh.cell_ijk(c);
    let lo = [i, j, k];
    // Distance to the first face crossing.
    let mut t_exit = f64::INFINITY;
    let mut exit_face = usize::MAX;
    for ax in 0..3 {
        let v = p.dir[ax];
        if v.abs() < 1e-300 {
            continue;
        }
        let cell_lo = origin[ax] + lo[ax] as f64 * h[ax];
        let target = if v > 0.0 { cell_lo + h[ax] } else { cell_lo };
        let t = (target - p.pos[ax]) / v;
        if t < t_exit {
            t_exit = t;
            exit_face = 2 * ax + usize::from(v > 0.0);
        }
    }
    let t_exit = t_exit.max(0.0);
    if p.remaining <= t_exit {
        // Dies inside this cell.
        let track = p.remaining;
        p.remaining = 0.0;
        (track, None)
    } else {
        p.remaining -= t_exit;
        for ax in 0..3 {
            p.pos[ax] += t_exit * p.dir[ax];
        }
        match mesh.neighbor_of(c, exit_face) {
            Neighbor::Interior(nb) => (t_exit, Some(nb)),
            Neighbor::Boundary(_) => {
                // Leaks out of the domain.
                p.remaining = 0.0;
                (t_exit, None)
            }
        }
    }
}

/// Find the cell containing a point (structured lookup).
pub fn locate(mesh: &StructuredMesh, pos: [f64; 3]) -> Option<usize> {
    let (nx, ny, nz) = mesh.dims();
    let origin = mesh.origin();
    let h = mesh.spacing();
    let mut idx = [0usize; 3];
    for ax in 0..3 {
        let x = (pos[ax] - origin[ax]) / h[ax];
        if x < 0.0 {
            return None;
        }
        idx[ax] = x as usize;
    }
    if idx[0] >= nx || idx[1] >= ny || idx[2] >= nz {
        return None;
    }
    Some(mesh.cell_id(idx[0], idx[1], idx[2]))
}

/// Serial golden tracer: per-cell track length deposited by all
/// particles.
pub fn trace_serial(mesh: &StructuredMesh, particles: &[Particle]) -> Vec<f64> {
    let mut tally = vec![0.0; mesh.num_cells()];
    for p0 in particles {
        let mut p = *p0;
        let Some(mut cell) = locate(mesh, p.pos) else {
            continue;
        };
        while p.remaining > 0.0 {
            let (track, next) = advance(mesh, cell, &mut p);
            tally[cell] += track;
            match next {
                Some(nb) => cell = nb,
                None => break,
            }
        }
    }
    tally
}

/// Shared tally bins, one per patch (same pattern as the sweep's flux
/// bins).
type TallyBins = Vec<Mutex<Vec<f64>>>;

/// Initial particles per patch, consumed once at program init.
type SeedBins = Vec<Mutex<Vec<(usize, Particle)>>>;

struct TraceProgram {
    id: ProgramId,
    mesh: Arc<StructuredMesh>,
    patches: Arc<PatchSet>,
    bins: Arc<TallyBins>,
    /// Particles waiting in this patch, paired with their current cell.
    held: Vec<(usize, Particle)>,
    /// Initial particles for this patch (taken once at init).
    seed: Arc<SeedBins>,
}

impl PatchProgram for TraceProgram {
    fn init(&mut self) {
        let mut seed = self.seed[self.id.patch.index()].lock();
        self.held.append(&mut seed);
    }

    fn input(&mut self, _src: ProgramId, payload: Bytes) {
        let mut r = Reader::new(payload);
        let n = r.get_u32();
        for _ in 0..n {
            let cell = r.get_u32() as usize;
            let p = Particle::unpack(&mut r);
            self.held.push((cell, p));
        }
    }

    fn compute(&mut self, ctx: &mut ComputeCtx) {
        if self.held.is_empty() {
            return;
        }
        let mesh = self.mesh.clone();
        let patches = self.patches.clone();
        let mut outgoing: std::collections::HashMap<u32, Vec<(usize, Particle)>> =
            Default::default();
        let mut local_tally: Vec<(usize, f64)> = Vec::new();
        let held = std::mem::take(&mut self.held);
        ctx.work_done = held.len() as u64;
        ctx.kernel(|| {
            for (mut cell, mut p) in held {
                // Advance until the particle dies or leaves the patch.
                loop {
                    let (track, next) = advance(&mesh, cell, &mut p);
                    local_tally.push((cell, track));
                    match next {
                        None => break,
                        Some(nb) => {
                            let nb_patch = patches.patch_of(nb);
                            if nb_patch == self.id.patch {
                                cell = nb;
                            } else {
                                outgoing.entry(nb_patch.0).or_default().push((nb, p));
                                break;
                            }
                        }
                    }
                }
            }
        });
        // Deposit tallies.
        {
            let mut bin = self.bins[self.id.patch.index()].lock();
            for (cell, track) in local_tally {
                bin[self.patches.local_index(cell)] += track;
            }
        }
        // Emit migrating particles, one stream per target patch.
        let mut targets: Vec<(u32, Vec<(usize, Particle)>)> = outgoing.into_iter().collect();
        targets.sort_by_key(|&(q, _)| q);
        for (q, list) in targets {
            let mut w = Writer::with_capacity(4 + list.len() * 60);
            w.put_u32(list.len() as u32);
            for (cell, p) in &list {
                w.put_u32(*cell as u32);
                p.pack(&mut w);
            }
            ctx.send(Stream {
                src: self.id,
                dst: ProgramId::new(jsweep_mesh::PatchId(q), TaskTag(0)),
                payload: w.finish(),
            });
        }
    }

    fn vote_to_halt(&self) -> bool {
        self.held.is_empty()
    }

    fn remaining_work(&self) -> u64 {
        self.held.len() as u64
    }
}

struct TraceFactory {
    mesh: Arc<StructuredMesh>,
    patches: Arc<PatchSet>,
    bins: Arc<TallyBins>,
    seed: Arc<SeedBins>,
}

impl ProgramFactory for TraceFactory {
    type Program = TraceProgram;

    fn create(&self, id: ProgramId) -> TraceProgram {
        TraceProgram {
            id,
            mesh: self.mesh.clone(),
            patches: self.patches.clone(),
            bins: self.bins.clone(),
            held: Vec::new(),
            seed: self.seed.clone(),
        }
    }

    fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
        self.patches
            .patches_on_rank(rank)
            .into_iter()
            .map(|p| ProgramId::new(p, TaskTag(0)))
            .collect()
    }

    fn rank_of(&self, id: ProgramId) -> usize {
        self.patches.rank_of(id.patch)
    }

    fn priority(&self, _id: ProgramId) -> i64 {
        0
    }

    fn initial_workload(&self, id: ProgramId) -> u64 {
        // Unknown in general; report only the seeded particles. This is
        // why tracing runs under Safra termination, not counting.
        self.seed[id.patch.index()].lock().len() as u64
    }
}

/// Parallel tracer on the JSweep runtime. Returns the per-cell track
/// lengths plus the per-rank runtime statistics.
pub fn trace_parallel(
    mesh: Arc<StructuredMesh>,
    patches: Arc<PatchSet>,
    particles: &[Particle],
    workers_per_rank: usize,
) -> (Vec<f64>, Vec<RunStats>) {
    let num_ranks = patches.num_ranks();
    let bins: Arc<TallyBins> = Arc::new(
        patches
            .patches()
            .map(|p| Mutex::new(vec![0.0; patches.cells(p).len()]))
            .collect(),
    );
    let seed: Arc<SeedBins> = Arc::new(patches.patches().map(|_| Mutex::new(Vec::new())).collect());
    for p in particles {
        if let Some(cell) = locate(&mesh, p.pos) {
            let patch = patches.patch_of(cell);
            seed[patch.index()].lock().push((cell, *p));
        }
    }
    let factory = Arc::new(TraceFactory {
        mesh: mesh.clone(),
        patches: patches.clone(),
        bins: bins.clone(),
        seed,
    });
    let stats = run_universe(
        num_ranks,
        factory,
        RuntimeConfig {
            num_workers: workers_per_rank,
            termination: TerminationKind::Safra,
            ..Default::default()
        },
    );
    let mut tally = vec![0.0; mesh.num_cells()];
    for p in patches.patches() {
        let bin = bins[p.index()].lock();
        for (li, &cell) in patches.cells(p).iter().enumerate() {
            tally[cell as usize] = bin[li];
        }
    }
    (tally, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::partition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_particles(n: usize, extent: f64, seed: u64) -> Vec<Particle> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let dir = loop {
                    let d = [
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0f64),
                    ];
                    let n2: f64 = d.iter().map(|x| x * x).sum();
                    if n2 > 1e-3 && n2 < 1.0 {
                        let n = n2.sqrt();
                        break [d[0] / n, d[1] / n, d[2] / n];
                    }
                };
                Particle {
                    pos: [
                        rng.gen_range(0.01..extent - 0.01),
                        rng.gen_range(0.01..extent - 0.01),
                        rng.gen_range(0.01..extent - 0.01),
                    ],
                    dir,
                    remaining: rng.gen_range(0.5..3.0 * extent),
                }
            })
            .collect()
    }

    #[test]
    fn single_particle_straight_line() {
        let mesh = StructuredMesh::unit(4, 1, 1);
        let p = Particle {
            pos: [0.5, 0.5, 0.5],
            dir: [1.0, 0.0, 0.0],
            remaining: 10.0,
        };
        let tally = trace_serial(&mesh, &[p]);
        // Crosses 0.5 in cell 0, then 1.0 in cells 1..3, exits.
        assert!((tally[0] - 0.5).abs() < 1e-12);
        for (c, t) in tally.iter().enumerate().take(4).skip(1) {
            assert!((t - 1.0).abs() < 1e-12, "cell {c}: {t}");
        }
    }

    #[test]
    fn budget_exhaustion_deposits_partial_track() {
        let mesh = StructuredMesh::unit(4, 1, 1);
        let p = Particle {
            pos: [0.0, 0.5, 0.5],
            dir: [1.0, 0.0, 0.0],
            remaining: 1.7,
        };
        let tally = trace_serial(&mesh, &[p]);
        assert!((tally[0] - 1.0).abs() < 1e-12);
        assert!((tally[1] - 0.7).abs() < 1e-12);
        assert_eq!(tally[2], 0.0);
    }

    #[test]
    fn total_track_conserved() {
        // Total deposited track == sum over particles of what the
        // serial tracer says (internal consistency), and never exceeds
        // the budget sum.
        let mesh = StructuredMesh::unit(6, 6, 6);
        let particles = random_particles(200, 6.0, 42);
        let tally = trace_serial(&mesh, &particles);
        let total: f64 = tally.iter().sum();
        let budget: f64 = particles.iter().map(|p| p.remaining).sum();
        assert!(total <= budget + 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
        let patches = Arc::new(partition::decompose_structured(&mesh, (4, 4, 4), 2));
        let particles = random_particles(300, 8.0, 7);
        let serial = trace_serial(&mesh, &particles);
        let (parallel, stats) = trace_parallel(mesh.clone(), patches, &particles, 2);
        for (c, (a, b)) in parallel.iter().zip(&serial).enumerate() {
            assert!(
                (a - b).abs() <= 1e-10 * b.abs().max(1e-12),
                "cell {c}: {a} vs {b}"
            );
        }
        let migrations: u64 = stats.iter().map(|s| s.streams_sent + s.streams_local).sum();
        assert!(migrations > 0, "no particle crossed a patch boundary");
    }

    #[test]
    fn parallel_three_ranks() {
        let mesh = Arc::new(StructuredMesh::unit(6, 6, 6));
        let patches = Arc::new(partition::decompose_structured(&mesh, (2, 2, 2), 3));
        let particles = random_particles(100, 6.0, 3);
        let serial = trace_serial(&mesh, &particles);
        let (parallel, _) = trace_parallel(mesh.clone(), patches, &particles, 1);
        let total_s: f64 = serial.iter().sum();
        let total_p: f64 = parallel.iter().sum();
        assert!((total_s - total_p).abs() < 1e-9 * total_s);
    }

    #[test]
    fn locate_maps_points_to_cells() {
        let mesh = StructuredMesh::new(4, 4, 4, [1.0, 1.0, 1.0], [0.5; 3]);
        assert_eq!(locate(&mesh, [1.1, 1.1, 1.1]), Some(0));
        assert_eq!(locate(&mesh, [2.9, 2.9, 2.9]), Some(63));
        assert_eq!(locate(&mesh, [0.5, 1.5, 1.5]), None);
        assert_eq!(locate(&mesh, [3.5, 1.5, 1.5]), None);
    }
}
