//! `cargo bench` entry point that regenerates every paper table and
//! figure at smoke scale (fast) — the per-figure full-scale harness is
//! the `figures` binary (`cargo run -p jsweep-bench --release --bin
//! figures`).

use jsweep_bench::{figs, Scale};

fn main() {
    // `cargo bench` passes flags like --bench; ignore them.
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Smoke
    };
    let t0 = std::time::Instant::now();
    for table in figs::run_all(scale) {
        table.print();
        table
            .write_tsv(std::path::Path::new("bench_results"))
            .expect("write TSV");
    }
    eprintln!(
        "all figures regenerated in {:.1}s (host time, {:?} scale)",
        t0.elapsed().as_secs_f64(),
        scale
    );
}
