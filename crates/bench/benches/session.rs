//! Session throughput benchmark: queued solves through one resident
//! [`SolverSession`] vs the same solves through per-solve universes.
//!
//! Both variants share a warmed [`PlanCache`] (every measured solve
//! replays from iteration 1), so the comparison isolates exactly what
//! the session amortizes: per-solve `Universe::launch` (rank + worker
//! thread spawn/teardown) and sweep-program re-creation — the
//! resident session re-arms live programs through epoch resets
//! instead. Queued solves are single-iteration (the short-request
//! regime a sweep service exists for: many small solves where runtime
//! spin-up, not sweep compute, dominates the per-request bill). Two
//! scales: quickstart 8³ cells and 16³, both on a 4³ patch grid with
//! 4 ranks × 2 workers, S2, grain 16.
//!
//! The flux of every queued solve must be bit-identical to the solo
//! baseline — asserted per solve. A machine-readable baseline is
//! written to `BENCH_session.json` at the workspace root (the CI
//! session job checks presence after the `--test` smoke pass).

use jsweep_bench::setups::replay_scenario;
use jsweep_transport::{PlanCache, SessionOptions, SolveRequest, SolverSession};
use std::time::Instant;

struct Numbers {
    cells: usize,
    solves: usize,
    baseline_s: f64,
    session_s: f64,
}

impl Numbers {
    fn baseline_sps(&self) -> f64 {
        self.solves as f64 / self.baseline_s
    }
    fn session_sps(&self) -> f64 {
        self.solves as f64 / self.session_s
    }
    fn speedup(&self) -> f64 {
        self.baseline_s / self.session_s
    }
}

/// Best-of-`runs` for both variants at `n`³ cells.
fn measure(n: usize, solves: usize, runs: usize) -> Numbers {
    let sc = replay_scenario(n, 4, 4, 1, 16);
    let golden = sc.solve_cached(&PlanCache::new());
    let mut baseline_s = f64::INFINITY;
    let mut session_s = f64::INFINITY;
    for _ in 0..runs {
        // Per-solve universes: every solve launches and tears down its
        // own resident runtime. Warm the cache first so all measured
        // solves replay.
        let cache = PlanCache::new();
        let warm = sc.solve_cached(&cache);
        assert_eq!(warm.phi, golden.phi, "warm-up flux mismatch");
        let t = Instant::now();
        for _ in 0..solves {
            let sol = sc.solve_cached(&cache);
            assert!(sol.plan_from_cache, "measured solves must replay");
            assert_eq!(sol.phi, golden.phi, "baseline flux mismatch");
        }
        baseline_s = baseline_s.min(t.elapsed().as_secs_f64());

        // One resident session serving the same queued solves.
        let mut session = SolverSession::launch(
            sc.mesh.clone(),
            sc.problem.clone(),
            sc.quad.clone(),
            SessionOptions {
                solver: sc.config.clone(),
                ..Default::default()
            },
        );
        let campaign = session.campaign();
        let request = || SolveRequest {
            materials: sc.materials.clone(),
            max_iterations: None,
            tolerance: None,
            retry: None,
        };
        let warm = campaign.submit(request()).wait().expect("warm-up served");
        assert_eq!(warm.solution.phi, golden.phi, "session warm-up mismatch");
        let t = Instant::now();
        let tickets: Vec<_> = (0..solves).map(|_| campaign.submit(request())).collect();
        for ticket in tickets {
            let out = ticket.wait().expect("queued solve served");
            assert_eq!(out.solution.phi, golden.phi, "session flux mismatch");
        }
        session_s = session_s.min(t.elapsed().as_secs_f64());
        session.shutdown();
        let stats = session.stats();
        assert_eq!(stats.universes_launched, 1, "one resident universe");
        assert_eq!(stats.universes_retired, 1, "no universe leak");
        assert!(
            stats.campaigns[&campaign.id()].plan_cache_hits > 0,
            "queued solves must share the compiled plan"
        );
    }
    Numbers {
        cells: n * n * n,
        solves,
        baseline_s,
        session_s,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (quickstart, large) = if test_mode {
        (measure(8, 4, 1), None)
    } else {
        (measure(8, 24, 3), Some(measure(16, 12, 3)))
    };

    let report = |label: &str, n: &Numbers| {
        println!(
            "session {label} ({} cells, {} queued solves): per-solve universes {:>8.3} ms ({:.1}/s) | one session {:>8.3} ms ({:.1}/s) | {:.2}x",
            n.cells,
            n.solves,
            n.baseline_s * 1e3,
            n.baseline_sps(),
            n.session_s * 1e3,
            n.session_sps(),
            n.speedup(),
        );
    };
    report("quickstart", &quickstart);
    if let Some(l) = &large {
        report("16^3      ", l);
    }

    // The acceptance bar: the resident session must beat per-solve
    // universes by >= 1.2x at quickstart scale. Only enforced in full
    // mode (best-of-3); a single smoke sample on a loaded CI core
    // would flake.
    if !test_mode {
        assert!(
            quickstart.speedup() >= 1.2,
            "session speedup {:.2}x below the 1.2x bar",
            quickstart.speedup()
        );
    }

    let scale_json = |n: &Numbers| {
        format!(
            concat!(
                "{{\n",
                "    \"cells\": {cells},\n",
                "    \"queued_solves\": {solves},\n",
                "    \"per_solve_universe_seconds\": {bs:.6},\n",
                "    \"session_seconds\": {ss:.6},\n",
                "    \"per_solve_universe_solves_per_second\": {bsps:.3},\n",
                "    \"session_solves_per_second\": {ssps:.3},\n",
                "    \"session_speedup\": {sp:.3}\n",
                "  }}"
            ),
            cells = n.cells,
            solves = n.solves,
            bs = n.baseline_s,
            ss = n.session_s,
            bsps = n.baseline_sps(),
            ssps = n.session_sps(),
            sp = n.speedup(),
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"session\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"config\": {{\n",
            "    \"ranks\": 4,\n",
            "    \"workers_per_rank\": 2,\n",
            "    \"angles\": 8,\n",
            "    \"grain\": 16,\n",
            "    \"iterations_per_solve\": 1,\n",
            "    \"admission\": \"fifo\"\n",
            "  }},\n",
            "  \"quickstart\": {qs},\n",
            "  \"large\": {lg},\n",
            "  \"phi_bit_identical\": true\n",
            "}}\n"
        ),
        mode = if test_mode { "test" } else { "full" },
        qs = scale_json(&quickstart),
        lg = large
            .as_ref()
            .map(&scale_json)
            .unwrap_or_else(|| "null".into()),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_session.json");
    if test_mode && out.exists() {
        // Smoke numbers are not a baseline: keep the committed full-
        // mode file, only prove the bench still runs end to end.
        println!("test mode: committed baseline left in place");
    } else {
        std::fs::write(&out, json).expect("write BENCH_session.json");
        println!("baseline written to {}", out.display());
    }
}
