//! Sn (discrete ordinates) transport on top of JSweep.
//!
//! This crate is the analogue of the paper's JSNT-S / JSNT-U packages:
//! the actual numerical payload whose sweeps JSweep parallelises.
//!
//! * [`xs`] — multigroup cross sections and material maps;
//! * [`kernel`] — the per-(cell, angle) update: step (upwind) kernel
//!   for arbitrary polyhedra and diamond-difference for structured
//!   hexahedra;
//! * [`program`] — `SweepPatchProgram` (paper Listing 1): the
//!   patch-program gluing [`jsweep_graph::SweepState`] to the kernels
//!   and stream codec, plus its [`jsweep_core::ProgramFactory`];
//! * [`replay`] — the compiled coarse-graph replay plan and its
//!   lifecycle (§V-E): cluster traces recorded in iteration 1 become
//!   the coarsened task graph iterations ≥ 2 execute, cached across
//!   solves by a [`PlanCache`] and invalidated by the mesh generation
//!   stamp (see `docs/replay.md`);
//! * [`solver`] — source iteration drivers: the JSweep-parallel solver
//!   on the threaded runtime and a serial reference solver used as the
//!   golden result in tests;
//! * [`session`] — sweep as a service: a resident [`SolverSession`]
//!   (one universe, one shared plan cache, one driver thread) serving
//!   queued solves from concurrent campaigns under a pluggable
//!   admission policy (see `docs/session.md`);
//! * [`kobayashi`] — the Kobayashi benchmark problem generator used by
//!   the JSNT-S experiments (Figs. 12, 16, 17a).

#![deny(missing_docs)]

pub mod kernel;
pub mod kobayashi;
pub mod program;
pub mod replay;
pub mod session;
pub mod solver;
pub mod trace;
pub mod xs;

pub use jsweep_core::TransportKind;
pub use kernel::KernelKind;
pub use program::{SweepEpoch, SweepMode};
pub use replay::{plan_key, CoarsePlan, EvictionPolicy, PlanCache, PlanKey};
pub use session::{
    AdmissionPolicy, CampaignHandle, CampaignStats, EpochCandidate, EpochRecord, FaultReport, Fifo,
    RetryPolicy, RoundRobin, SessionError, SessionOptions, SessionStats, SolveOutcome,
    SolveRequest, SolveTicket, SolverSession,
};
pub use solver::{
    record_cluster_traces, solve_parallel, solve_parallel_cached, solve_parallel_spmd,
    solve_serial, SnConfig, SnSolution,
};
pub use xs::{Material, MaterialSet};
