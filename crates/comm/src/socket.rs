//! Process-grade transport: ranks connected over UNIX-domain sockets.
//!
//! This is the backend that takes the runtime out of one address
//! space: each ordered rank pair gets its own unidirectional stream
//! connection (blocking on the write side so `send(&self)` needs no
//! reactor, non-blocking on the read side so the master drain loop can
//! poll), and ranks may be threads, or — the point — separate OS
//! processes rendezvousing on a filesystem directory.
//!
//! ## Wire format
//!
//! Every message is one self-delimiting frame:
//!
//! ```text
//! [tag: u32 LE] [len: u32 LE] [payload: len bytes]
//! ```
//!
//! The sending rank is implied by the connection (established by the
//! handshake), so frames carry no source field. A frame with tag
//! [`WIRE_CLOSE_TAG`] and length 0 is the **graceful-close marker**:
//! "the silence after this is intentional". An EOF *without* a close
//! marker is a peer death and surfaces as
//! [`CommError::PeerClosed`] — after every complete frame that made it
//! into the buffer has been delivered.
//!
//! ## Connection lifecycle
//!
//! 1. every rank binds a listener at `dir/rank-<r>.sock`;
//! 2. every rank connects to every peer's listener and writes a
//!    16-byte handshake (`magic, version, sender rank, world size`);
//! 3. every rank accepts `n - 1` connections, reads the handshakes to
//!    learn who is on each, and switches the read sides non-blocking.
//!
//! Connect happens through the listener backlog, so the three phases
//! need no cross-rank interleaving — a single thread can build a whole
//! in-process world ([`SocketUniverse::endpoints`]), and separate
//! processes rendezvous by retrying connect until the peer's listener
//! appears ([`SocketUniverse::connect`]).

use crate::backend::{CommBackend, CommError};
use crate::{Comm, Message};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Handshake magic: `b"JSWP"` as a little-endian u32.
pub const WIRE_MAGIC: u32 = 0x5057_534A;
/// Wire protocol version carried in the handshake.
pub const WIRE_VERSION: u32 = 1;
/// Reserved wire-level tag of the graceful-close marker frame. Lives
/// above every protocol tag (`RESERVED_TAG_BASE + 16 < u32::MAX`), so
/// it can never collide with user or substrate traffic.
pub const WIRE_CLOSE_TAG: u32 = u32::MAX;
/// Bytes of framing prepended to every payload on the wire.
pub const WIRE_HEADER_BYTES: usize = 8;

/// Encode one wire frame (header + payload) into a fresh buffer.
pub fn encode_frame(tag: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WIRE_HEADER_BYTES + payload.len());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Incremental decoder for the socket wire format.
///
/// Feed it arbitrarily fragmented byte chunks with [`push`]; pull
/// complete `(tag, payload)` frames with [`next_frame`]. Reassembly is
/// byte-exact no matter where the fragment boundaries fall — pinned by
/// the adversarial-fragmentation proptest in `tests/properties.rs`.
///
/// [`push`]: WireDecoder::push
/// [`next_frame`]: WireDecoder::next_frame
#[derive(Debug, Default)]
pub struct WireDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
    bytes_consumed: u64,
    closed: bool,
}

impl WireDecoder {
    /// Fresh decoder.
    pub fn new() -> WireDecoder {
        WireDecoder::default()
    }

    /// Append raw bytes read off the wire.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Next complete frame, if one is fully buffered. Returns `None`
    /// once the graceful-close marker has been seen.
    pub fn next_frame(&mut self) -> Option<(u32, Bytes)> {
        if self.closed {
            return None;
        }
        let avail = self.buf.len() - self.start;
        if avail < WIRE_HEADER_BYTES {
            return None;
        }
        let at = self.start;
        let tag = u32::from_le_bytes(self.buf[at..at + 4].try_into().unwrap());
        let len = u32::from_le_bytes(self.buf[at + 4..at + 8].try_into().unwrap()) as usize;
        if tag == WIRE_CLOSE_TAG {
            self.closed = true;
            self.start += WIRE_HEADER_BYTES;
            self.bytes_consumed += WIRE_HEADER_BYTES as u64;
            return None;
        }
        if avail < WIRE_HEADER_BYTES + len {
            return None;
        }
        let payload = Bytes::copy_from_slice(&self.buf[at + 8..at + 8 + len]);
        self.start += WIRE_HEADER_BYTES + len;
        self.bytes_consumed += (WIRE_HEADER_BYTES + len) as u64;
        Some((tag, payload))
    }

    /// True once the graceful-close marker has been decoded.
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// Total bytes consumed as complete frames (headers included).
    pub fn bytes_consumed(&self) -> u64 {
        self.bytes_consumed
    }

    /// Bytes buffered but not yet part of a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Read side of one peer connection.
struct RecvPeer {
    stream: UnixStream,
    decoder: WireDecoder,
    /// Read side hit EOF or a hard error.
    eof: bool,
}

/// One rank's socket endpoint.
///
/// See the [module docs](self) for the wire format and lifecycle.
pub struct SocketBackend {
    rank: usize,
    size: usize,
    /// Blocking write halves, indexed by destination rank (`None` at
    /// `rank` and for peers that are gone).
    writers: Vec<Option<Mutex<UnixStream>>>,
    /// Non-blocking read halves, indexed by source rank.
    readers: Vec<Option<RecvPeer>>,
    /// Self-sends loop through here, never touching the wire.
    loopback: Mutex<VecDeque<Message>>,
    /// Decoded frames awaiting delivery.
    ready: VecDeque<Message>,
    /// Round-robin poll cursor for fairness across peers.
    next_poll: usize,
    bytes_sent: AtomicU64,
    frames_sent: AtomicU64,
    bytes_received: u64,
    frames_received: u64,
    closed: bool,
}

impl SocketBackend {
    /// Wire + framing bytes received and decoded so far. Counters are
    /// wire-level on this backend: loopback self-sends never touch the
    /// wire and are not counted, on either side.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Pull everything currently readable from `p` into its decoder.
    /// Returns decoded messages' byte total; flags EOF/hard errors.
    fn fill(peer: &mut RecvPeer) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match peer.stream.read(&mut chunk) {
                Ok(0) => {
                    peer.eof = true;
                    return;
                }
                Ok(n) => peer.decoder.push(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // ECONNRESET and friends: the peer is gone.
                Err(_) => {
                    peer.eof = true;
                    return;
                }
            }
        }
    }
}

impl CommBackend for SocketBackend {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<(), CommError> {
        if to == self.rank {
            self.loopback.lock().unwrap().push_back(Message {
                src: self.rank,
                tag,
                payload,
            });
            return Ok(());
        }
        let frame = encode_frame(tag, &payload);
        let writer = self.writers[to]
            .as_ref()
            .ok_or(CommError::PeerClosed { peer: to })?;
        let mut stream = writer.lock().unwrap();
        // A blocking write_all: frames are small relative to the socket
        // buffer, and the receive side drains continuously (see
        // docs/transport.md on head-of-line limits).
        stream
            .write_all(&frame)
            .map_err(|_| CommError::PeerClosed { peer: to })?;
        self.bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, CommError> {
        if let Some(m) = self.ready.pop_front() {
            return Ok(Some(m));
        }
        if let Some(m) = self.loopback.lock().unwrap().pop_front() {
            return Ok(Some(m));
        }
        // Poll every peer once, round-robin start for fairness; decode
        // everything available so buffered traffic from a dying peer is
        // delivered before its EOF is diagnosed.
        let mut dead: Option<usize> = None;
        for k in 0..self.size {
            let p = (self.next_poll + k) % self.size;
            let Some(peer) = self.readers[p].as_mut() else {
                continue;
            };
            if !peer.eof {
                SocketBackend::fill(peer);
            }
            let before = peer.decoder.bytes_consumed();
            while let Some((tag, payload)) = peer.decoder.next_frame() {
                self.frames_received += 1;
                self.ready.push_back(Message {
                    src: p,
                    tag,
                    payload,
                });
            }
            self.bytes_received += peer.decoder.bytes_consumed() - before;
            if peer.eof && !peer.decoder.closed() && dead.is_none() {
                // Raw EOF (or truncated frame): death, not a close.
                dead = Some(p);
            }
        }
        self.next_poll = (self.next_poll + 1) % self.size;
        if let Some(m) = self.ready.pop_front() {
            return Ok(Some(m));
        }
        if let Some(peer) = dead {
            return Err(CommError::PeerClosed { peer });
        }
        Ok(None)
    }

    fn recv(&mut self) -> Result<Message, CommError> {
        let mut spins = 0u32;
        loop {
            if let Some(m) = self.try_recv()? {
                return Ok(m);
            }
            // Brief spin for latency, then back off to a short sleep so
            // a blocked collective does not burn a core.
            spins = spins.saturating_add(1);
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let marker = encode_frame(WIRE_CLOSE_TAG, &[]);
        for writer in self.writers.iter().flatten() {
            let mut stream = writer.lock().unwrap();
            let _ = stream.write_all(&marker);
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    fn frames_received(&self) -> u64 {
        self.frames_received
    }
}

impl Drop for SocketBackend {
    /// A *clean* drop closes gracefully, so ranks that simply finish
    /// at different times never read as deaths to their peers. A drop
    /// during panic unwind deliberately sends no marker: the raw EOF
    /// is exactly how peers detect that this rank died.
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.close();
        }
    }
}

fn listener_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank-{rank}.sock"))
}

fn write_handshake(stream: &mut UnixStream, rank: usize, size: usize) -> std::io::Result<()> {
    let mut hs = [0u8; 16];
    hs[0..4].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
    hs[4..8].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    hs[8..12].copy_from_slice(&(rank as u32).to_le_bytes());
    hs[12..16].copy_from_slice(&(size as u32).to_le_bytes());
    stream.write_all(&hs)
}

fn read_handshake(stream: &mut UnixStream, expect_size: usize) -> std::io::Result<usize> {
    let mut hs = [0u8; 16];
    stream.read_exact(&mut hs)?;
    let magic = u32::from_le_bytes(hs[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(hs[4..8].try_into().unwrap());
    let rank = u32::from_le_bytes(hs[8..12].try_into().unwrap()) as usize;
    let size = u32::from_le_bytes(hs[12..16].try_into().unwrap()) as usize;
    let bad = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
    if magic != WIRE_MAGIC {
        return Err(bad(format!("bad handshake magic {magic:#x}")));
    }
    if version != WIRE_VERSION {
        return Err(bad(format!(
            "wire version {version}, expected {WIRE_VERSION}"
        )));
    }
    if size != expect_size || rank >= size {
        return Err(bad(format!(
            "handshake claims rank {rank} of {size}, expected world of {expect_size}"
        )));
    }
    Ok(rank)
}

fn assemble(
    rank: usize,
    size: usize,
    writers: Vec<Option<Mutex<UnixStream>>>,
    readers: Vec<Option<RecvPeer>>,
) -> SocketBackend {
    SocketBackend {
        rank,
        size,
        writers,
        readers,
        loopback: Mutex::new(VecDeque::new()),
        ready: VecDeque::new(),
        next_poll: (rank + 1) % size,
        bytes_sent: AtomicU64::new(0),
        frames_sent: AtomicU64::new(0),
        bytes_received: 0,
        frames_received: 0,
        closed: false,
    }
}

/// World builder for the socket fabric — the [`crate::Universe`]
/// counterpart for process-grade transport.
pub struct SocketUniverse;

impl SocketUniverse {
    /// Build all `n` endpoints of a socket world rendezvousing in
    /// `dir` (created if absent), in rank order, from a single thread.
    /// Socket files are unlinked before returning — once connections
    /// exist the filesystem names are no longer needed.
    pub fn endpoints_in(dir: &Path, n: usize) -> std::io::Result<Vec<Comm>> {
        assert!(n > 0, "need at least one rank");
        std::fs::create_dir_all(dir)?;
        // Phase 1: every rank listens.
        let mut listeners = Vec::with_capacity(n);
        for r in 0..n {
            let path = listener_path(dir, r);
            let _ = std::fs::remove_file(&path);
            listeners.push(UnixListener::bind(&path)?);
        }
        // Phase 2: every rank connects to every peer. Connect completes
        // through the listener backlog, no accept needed yet, and the
        // 16-byte handshake fits any socket buffer without blocking.
        let mut writers: Vec<Vec<Option<Mutex<UnixStream>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (r, row) in writers.iter_mut().enumerate() {
            for (p, slot) in row.iter_mut().enumerate() {
                if p == r {
                    continue;
                }
                let mut stream = UnixStream::connect(listener_path(dir, p))?;
                write_handshake(&mut stream, r, n)?;
                *slot = Some(Mutex::new(stream));
            }
        }
        // Phase 3: every rank accepts n-1 connections and learns who is
        // on each from the handshake.
        let mut readers: Vec<Vec<Option<RecvPeer>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (r, listener) in listeners.iter().enumerate() {
            for _ in 0..n - 1 {
                let (mut stream, _) = listener.accept()?;
                let src = read_handshake(&mut stream, n)?;
                stream.set_nonblocking(true)?;
                readers[r][src] = Some(RecvPeer {
                    stream,
                    decoder: WireDecoder::new(),
                    eof: false,
                });
            }
        }
        for r in 0..n {
            let _ = std::fs::remove_file(listener_path(dir, r));
        }
        Ok(writers
            .into_iter()
            .zip(readers)
            .enumerate()
            .map(|(r, (w, rd))| Comm::from_backend(Box::new(assemble(r, n, w, rd))))
            .collect())
    }

    /// Build all `n` endpoints in a fresh private directory under the
    /// system temp dir (removed before returning). Panics on I/O
    /// failure — failing to stand up local IPC is a fatal environment
    /// error, like failing to spawn a thread.
    pub fn endpoints(n: usize) -> Vec<Comm> {
        static WORLD_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = WORLD_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jsweep-sock-{}-{}", std::process::id(), seq));
        let comms = SocketUniverse::endpoints_in(&dir, n)
            .unwrap_or_else(|e| panic!("socket world rendezvous in {} failed: {e}", dir.display()));
        let _ = std::fs::remove_dir_all(&dir);
        comms
    }

    /// Join a multi-process world as rank `rank` of `n`, rendezvousing
    /// in `dir` (each process calls this once; any process may create
    /// the directory). Retries connecting until every peer's listener
    /// appears or `timeout` elapses.
    pub fn connect(dir: &Path, rank: usize, n: usize, timeout: Duration) -> std::io::Result<Comm> {
        assert!(n > 0 && rank < n, "rank {rank} out of world of {n}");
        std::fs::create_dir_all(dir)?;
        let own = listener_path(dir, rank);
        let _ = std::fs::remove_file(&own);
        let listener = UnixListener::bind(&own)?;
        let deadline = Instant::now() + timeout;
        let mut writers: Vec<Option<Mutex<UnixStream>>> = (0..n).map(|_| None).collect();
        for (p, slot) in writers.iter_mut().enumerate() {
            if p == rank {
                continue;
            }
            let path = listener_path(dir, p);
            let mut stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                format!(
                                    "rank {rank}: peer {p} never listened at {}: {e}",
                                    path.display()
                                ),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            };
            write_handshake(&mut stream, rank, n)?;
            *slot = Some(Mutex::new(stream));
        }
        let mut readers: Vec<Option<RecvPeer>> = (0..n).map(|_| None).collect();
        for _ in 0..n - 1 {
            let (mut stream, _) = listener.accept()?;
            let src = read_handshake(&mut stream, n)?;
            stream.set_nonblocking(true)?;
            readers[src] = Some(RecvPeer {
                stream,
                decoder: WireDecoder::new(),
                eof: false,
            });
        }
        // Every peer has connected to us; the filesystem name is done.
        let _ = std::fs::remove_file(&own);
        Ok(Comm::from_backend(Box::new(assemble(
            rank, n, writers, readers,
        ))))
    }

    /// Run `f` on `n` rank threads over the socket fabric; returns each
    /// rank's result in rank order. Panics in any rank propagate. The
    /// socket twin of [`crate::Universe::run`].
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(Comm) -> R + Send + Sync + 'static,
    {
        let f = std::sync::Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for comm in SocketUniverse::endpoints(n) {
            let rank = comm.rank();
            let f = f.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sock-rank-{rank}"))
                    .spawn(move || f(comm))
                    .expect("spawn rank thread"),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_handles_split_header_and_payload() {
        let mut frame = encode_frame(7, b"hello");
        frame.extend_from_slice(&encode_frame(9, b""));
        let mut dec = WireDecoder::new();
        for b in &frame {
            dec.push(std::slice::from_ref(b));
        }
        let (tag, payload) = dec.next_frame().unwrap();
        assert_eq!((tag, &payload[..]), (7, &b"hello"[..]));
        let (tag, payload) = dec.next_frame().unwrap();
        assert_eq!((tag, payload.len()), (9, 0));
        assert!(dec.next_frame().is_none());
        assert_eq!(dec.bytes_consumed(), frame.len() as u64);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn decoder_close_marker_ends_the_stream() {
        let mut bytes = encode_frame(3, b"last");
        bytes.extend_from_slice(&encode_frame(WIRE_CLOSE_TAG, &[]));
        bytes.extend_from_slice(&encode_frame(4, b"never seen"));
        let mut dec = WireDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap().0, 3);
        assert!(dec.next_frame().is_none());
        assert!(dec.closed());
    }

    #[test]
    fn socket_world_ring_pass() {
        let results = SocketUniverse::run(4, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            comm.send(next, 7, Bytes::copy_from_slice(&[comm.rank() as u8]))
                .unwrap();
            let m = comm.recv_match(7).unwrap();
            (m.src, m.payload[0])
        });
        for (rank, (src, byte)) in results.into_iter().enumerate() {
            assert_eq!(src, (rank + 3) % 4);
            assert_eq!(byte as usize, src);
        }
    }

    #[test]
    fn peer_death_surfaces_after_buffered_delivery() {
        let mut world = SocketUniverse::endpoints(2);
        let c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        // Rank 1 dies mid-panic: its endpoint unwinds without sending a
        // close marker, leaving a raw EOF on the wire.
        let h = std::thread::spawn(move || {
            c1.send(0, 5, Bytes::copy_from_slice(b"before dying"))
                .unwrap();
            panic!("simulated rank death");
        });
        assert!(h.join().is_err());
        // Rank 0: the buffered message arrives first, then the EOF is
        // diagnosed as a death.
        let m = c0.recv_match(5).unwrap();
        assert_eq!(&m.payload[..], b"before dying");
        let err = loop {
            match c0.try_recv() {
                Ok(Some(_)) => panic!("no further message expected"),
                Ok(None) => std::thread::yield_now(),
                Err(e) => break e,
            }
        };
        assert_eq!(err, CommError::PeerClosed { peer: 1 });
    }

    #[test]
    fn graceful_close_is_silent() {
        let results = SocketUniverse::run(2, |mut comm| {
            if comm.rank() == 1 {
                comm.send(0, 5, Bytes::copy_from_slice(b"bye")).unwrap();
                comm.close();
                return true;
            }
            let m = comm.recv_match(5).unwrap();
            assert_eq!(&m.payload[..], b"bye");
            // The peer closed gracefully: silence, not an error.
            let deadline = Instant::now() + Duration::from_millis(100);
            while Instant::now() < deadline {
                assert!(comm.try_recv().unwrap().is_none());
            }
            true
        });
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn multi_process_connect_rendezvous_on_threads() {
        // Exercise the process-entry path (bind first, retry connect,
        // accept by handshake) even though these "processes" share one
        // address space.
        let dir = std::env::temp_dir().join(format!("jsweep-mp-rendezvous-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut handles = Vec::new();
        for rank in 0..3 {
            let dir = dir.clone();
            handles.push(std::thread::spawn(move || {
                let mut comm =
                    SocketUniverse::connect(&dir, rank, 3, Duration::from_secs(10)).unwrap();
                let total = comm.allreduce_sum_u64(rank as u64 + 1).unwrap();
                comm.close();
                total
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 6);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn socket_bytes_accounting_matches_wire() {
        let results = SocketUniverse::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Bytes::copy_from_slice(&[0u8; 100]))
                    .unwrap();
                comm.send(1, 2, Bytes::new()).unwrap();
                comm.barrier().unwrap();
                comm.bytes_sent()
            } else {
                let a = comm.recv_match(1).unwrap();
                assert_eq!(a.payload.len(), 100);
                let b = comm.recv_match(2).unwrap();
                assert_eq!(b.payload.len(), 0);
                comm.barrier().unwrap();
                0
            }
        });
        // 2 user frames (8+100, 8+0) + 1 collective frame (8+0) from
        // rank 0's barrier release.
        assert_eq!(results[0], 108 + 8 + 8);
    }
}
