//! Multigroup cross sections and material assignment.
//!
//! The solver treats scattering as isotropic and within-group (the
//! coupling between groups happens across source iterations through the
//! fission/downscatter-free fixed-source form used by the Kobayashi
//! benchmark; JSNT-U's 4-group runs are modelled as four independent
//! within-group problems swept together in one pass, which is exactly
//! how they load the sweep scheduler).

/// One material's multigroup data.
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    /// Total macroscopic cross section per group (1/cm).
    pub sigma_t: Vec<f64>,
    /// Within-group isotropic scattering cross section per group (1/cm).
    pub sigma_s: Vec<f64>,
    /// External volumetric source per group (n/cm³/s).
    pub source: Vec<f64>,
}

impl Material {
    /// A material with identical data in every group.
    pub fn uniform(groups: usize, sigma_t: f64, sigma_s: f64, source: f64) -> Material {
        assert!(groups > 0);
        assert!(sigma_t >= 0.0 && sigma_s >= 0.0 && source >= 0.0);
        assert!(
            sigma_s <= sigma_t || sigma_t == 0.0,
            "scattering ratio above one is non-physical (σs {sigma_s} > σt {sigma_t})"
        );
        Material {
            sigma_t: vec![sigma_t; groups],
            sigma_s: vec![sigma_s; groups],
            source: vec![source; groups],
        }
    }

    /// Number of energy groups.
    pub fn num_groups(&self) -> usize {
        self.sigma_t.len()
    }
}

/// A set of materials plus the per-cell material map.
#[derive(Debug, Clone)]
pub struct MaterialSet {
    materials: Vec<Material>,
    cell_material: Vec<u16>,
    num_groups: usize,
}

impl MaterialSet {
    /// Build from materials and a per-cell assignment.
    ///
    /// # Panics
    /// Panics when group counts disagree or an assignment is out of
    /// range.
    pub fn new(materials: Vec<Material>, cell_material: Vec<u16>) -> MaterialSet {
        assert!(!materials.is_empty(), "no materials");
        let num_groups = materials[0].num_groups();
        for (i, m) in materials.iter().enumerate() {
            assert_eq!(
                m.num_groups(),
                num_groups,
                "material {i} has inconsistent group count"
            );
        }
        for (c, &m) in cell_material.iter().enumerate() {
            assert!(
                (m as usize) < materials.len(),
                "cell {c}: material {m} out of range"
            );
        }
        MaterialSet {
            materials,
            cell_material,
            num_groups,
        }
    }

    /// One uniform material everywhere.
    pub fn homogeneous(num_cells: usize, material: Material) -> MaterialSet {
        MaterialSet::new(vec![material], vec![0; num_cells])
    }

    /// Number of energy groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Number of cells covered.
    pub fn num_cells(&self) -> usize {
        self.cell_material.len()
    }

    /// Material of a cell.
    #[inline]
    pub fn material(&self, cell: usize) -> &Material {
        &self.materials[self.cell_material[cell] as usize]
    }

    /// Material index of a cell.
    #[inline]
    pub fn material_index(&self, cell: usize) -> u16 {
        self.cell_material[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_material() {
        let m = Material::uniform(3, 1.0, 0.5, 2.0);
        assert_eq!(m.num_groups(), 3);
        assert_eq!(m.sigma_t, vec![1.0; 3]);
    }

    #[test]
    fn homogeneous_set() {
        let set = MaterialSet::homogeneous(10, Material::uniform(2, 1.0, 0.3, 0.0));
        assert_eq!(set.num_cells(), 10);
        assert_eq!(set.num_groups(), 2);
        assert_eq!(set.material(7).sigma_s, vec![0.3, 0.3]);
    }

    #[test]
    fn per_cell_assignment() {
        let a = Material::uniform(1, 1.0, 0.0, 1.0);
        let b = Material::uniform(1, 2.0, 0.0, 0.0);
        let set = MaterialSet::new(vec![a, b], vec![0, 1, 1]);
        assert_eq!(set.material(0).sigma_t[0], 1.0);
        assert_eq!(set.material(2).sigma_t[0], 2.0);
        assert_eq!(set.material_index(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_rejected() {
        MaterialSet::new(vec![Material::uniform(1, 1.0, 0.0, 0.0)], vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "non-physical")]
    fn super_unity_scattering_rejected() {
        Material::uniform(1, 1.0, 1.5, 0.0);
    }
}
