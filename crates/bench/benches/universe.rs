//! Persistent-universe benchmark: one resident runtime for the whole
//! solve vs one spawned/torn-down universe per iteration.
//!
//! Two measurements:
//!
//! * **Solver** — the shared replay scenario solved twice for the same
//!   forced iteration count: `SnConfig::resident = true` (one
//!   `jsweep_core::Universe` launch, every source iteration an epoch
//!   against the same live programs) vs `resident = false` (the
//!   pre-persistent behaviour: one `run_universe` — rank threads,
//!   workers, pool, every `SweepProgram` — per iteration). The delta
//!   divided by the iteration count is the per-iteration setup
//!   overhead the resident runtime eliminates. Flux must be
//!   bit-identical; the bench asserts it.
//! * **Micro** — a no-op program fleet run for E epochs resident
//!   (launch + E × `run_epoch` + shutdown) vs E × one-shot
//!   `run_universe`: the pure spawn/teardown cost per epoch, with no
//!   physics attached.
//!
//! A machine-readable baseline is written to `BENCH_universe.json` at
//! the workspace root (CI checks presence after the
//! `cargo bench -- --test` smoke pass).

use jsweep_bench::setups::replay_scenario;
use jsweep_core::{
    run_universe, ComputeCtx, EpochInput, PatchProgram, ProgramFactory, ProgramId, RuntimeConfig,
    TaskTag, Universe,
};
use jsweep_mesh::PatchId;
use std::sync::Arc;
use std::time::Instant;

struct SolverNumbers {
    iterations: usize,
    resident_solve_s: f64,
    respawned_solve_s: f64,
}

/// Solve the replay scenario both ways (host-timed around the whole
/// solve; best-of-`runs` per variant), asserting bit-identical flux.
fn measure_solver(n: usize, patch: usize, iterations: usize, runs: usize) -> SolverNumbers {
    let sc = replay_scenario(n, patch, 2, iterations, 16);
    let mut nums = SolverNumbers {
        iterations,
        resident_solve_s: f64::INFINITY,
        respawned_solve_s: f64::INFINITY,
    };
    let mut reference: Option<Vec<f64>> = None;
    for _ in 0..runs {
        for resident in [true, false] {
            let mut config = sc.config.clone();
            config.resident = resident;
            let t0 = Instant::now();
            let sol = jsweep_transport::solve_parallel(
                sc.mesh.clone(),
                sc.problem.clone(),
                &sc.quad,
                sc.materials.clone(),
                &config,
            );
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(sol.stats.len(), iterations);
            match &reference {
                Some(phi) => assert_eq!(
                    phi, &sol.phi,
                    "resident and respawned flux must be bit-identical"
                ),
                None => reference = Some(sol.phi),
            }
            if resident {
                nums.resident_solve_s = nums.resident_solve_s.min(dt);
            } else {
                nums.respawned_solve_s = nums.respawned_solve_s.min(dt);
            }
        }
    }
    nums
}

/// A program that does nothing but complete its unit workload — the
/// cheapest possible epoch, isolating runtime setup cost.
struct Nop {
    fired: bool,
}

impl PatchProgram for Nop {
    fn init(&mut self) {}
    fn input(&mut self, _src: ProgramId, _payload: bytes::Bytes) {}
    fn compute(&mut self, ctx: &mut ComputeCtx) {
        if !self.fired {
            self.fired = true;
            ctx.work_done = 1;
        }
    }
    fn vote_to_halt(&self) -> bool {
        true
    }
    fn remaining_work(&self) -> u64 {
        u64::from(!self.fired)
    }
    fn reset(&mut self, _epoch: &EpochInput) {
        self.fired = false;
    }
}

struct NopFactory {
    programs_per_rank: u32,
}

impl ProgramFactory for NopFactory {
    type Program = Nop;
    fn create(&self, _id: ProgramId) -> Nop {
        Nop { fired: false }
    }
    fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
        (0..self.programs_per_rank)
            .map(|k| {
                ProgramId::new(
                    PatchId(rank as u32 * self.programs_per_rank + k),
                    TaskTag(0),
                )
            })
            .collect()
    }
    fn rank_of(&self, id: ProgramId) -> usize {
        (id.patch.0 / self.programs_per_rank) as usize
    }
    fn priority(&self, _id: ProgramId) -> i64 {
        0
    }
    fn initial_workload(&self, _id: ProgramId) -> u64 {
        1
    }
}

struct MicroNumbers {
    epochs: usize,
    resident_total_s: f64,
    respawned_total_s: f64,
}

/// E no-op epochs, resident vs respawned (best-of-`runs`).
fn measure_micro(ranks: usize, programs_per_rank: u32, epochs: usize, runs: usize) -> MicroNumbers {
    let config = RuntimeConfig {
        num_workers: 2,
        ..Default::default()
    };
    let mut nums = MicroNumbers {
        epochs,
        resident_total_s: f64::INFINITY,
        respawned_total_s: f64::INFINITY,
    };
    for _ in 0..runs {
        let factory = Arc::new(NopFactory { programs_per_rank });
        let t0 = Instant::now();
        let mut u = Universe::launch(ranks, factory.clone(), config.clone());
        for _ in 0..epochs {
            let stats = u.run_epoch(Arc::new(())).expect("bench epoch");
            let work: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(work, ranks as u64 * u64::from(programs_per_rank));
        }
        u.shutdown();
        nums.resident_total_s = nums.resident_total_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for _ in 0..epochs {
            let stats = run_universe(ranks, factory.clone(), config.clone());
            let work: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(work, ranks as u64 * u64::from(programs_per_rank));
        }
        nums.respawned_total_s = nums.respawned_total_s.min(t0.elapsed().as_secs_f64());
    }
    nums
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // Full mode: the asserted comparison runs the 8³ replay scenario
    // (4³-cell patches, 2 ranks × 2 workers, S2, grain 16) for 10
    // forced iterations — small enough that the per-iteration runtime
    // setup is a visible share of iteration time; a 16³ at-scale
    // measurement is reported alongside (ordering not asserted: there
    // the ~0.4 ms spawn saving sits inside 12 ms iterations, below
    // single-core CI noise); micro at 2 ranks × 32 no-op programs ×
    // 20 epochs.
    let (solver, at_scale, micro) = if test_mode {
        (measure_solver(8, 4, 3, 1), None, measure_micro(2, 8, 3, 1))
    } else {
        (
            measure_solver(8, 4, 10, 5),
            Some(measure_solver(16, 4, 6, 3)),
            measure_micro(2, 32, 20, 3),
        )
    };

    let resident_iter = solver.resident_solve_s / solver.iterations as f64;
    let respawned_iter = solver.respawned_solve_s / solver.iterations as f64;
    let setup_overhead_per_iter = (respawned_iter - resident_iter).max(0.0);
    let solve_speedup = solver.respawned_solve_s / solver.resident_solve_s;
    let micro_resident_epoch = micro.resident_total_s / micro.epochs as f64;
    let micro_respawned_epoch = micro.respawned_total_s / micro.epochs as f64;
    let micro_speedup = micro_respawned_epoch / micro_resident_epoch;

    println!(
        "universe solver resident  : {:>9.3} ms total, {:>7.3} ms/iteration",
        solver.resident_solve_s * 1e3,
        resident_iter * 1e3
    );
    println!(
        "universe solver respawned : {:>9.3} ms total, {:>7.3} ms/iteration ({:.2}x resident)",
        solver.respawned_solve_s * 1e3,
        respawned_iter * 1e3,
        solve_speedup
    );
    println!(
        "universe per-iteration setup overhead eliminated: {:>7.3} ms",
        setup_overhead_per_iter * 1e3
    );
    if let Some(s) = &at_scale {
        println!(
            "universe at-scale (16^3)  : resident {:>7.3} ms/iter vs respawned {:>7.3} ms/iter",
            s.resident_solve_s / s.iterations as f64 * 1e3,
            s.respawned_solve_s / s.iterations as f64 * 1e3
        );
    }
    println!(
        "universe no-op epoch      : resident {:>7.3} ms vs respawned {:>7.3} ms ({:.1}x)",
        micro_resident_epoch * 1e3,
        micro_respawned_epoch * 1e3,
        micro_speedup
    );

    // The structural facts (bit-identical phi, exact per-epoch work)
    // are asserted in the measure functions in both modes. The
    // wall-clock ordering is only asserted in full mode (best-of-3):
    // a single millisecond-scale test-mode sample on an oversubscribed
    // CI core would make it flake.
    if !test_mode {
        assert!(
            solver.resident_solve_s < solver.respawned_solve_s,
            "resident universe should beat per-iteration respawn"
        );
        assert!(
            micro_resident_epoch < micro_respawned_epoch,
            "a resident no-op epoch should beat a full spawn/teardown"
        );
    }

    let at_scale_json = at_scale
        .as_ref()
        .map(|s| {
            format!(
                concat!(
                    "  \"at_scale\": {{\n",
                    "    \"cells\": 4096,\n",
                    "    \"iterations\": {iters},\n",
                    "    \"resident_iter_wall_seconds\": {ri:.6},\n",
                    "    \"respawned_iter_wall_seconds\": {pi:.6}\n",
                    "  }},\n"
                ),
                iters = s.iterations,
                ri = s.resident_solve_s / s.iterations as f64,
                pi = s.respawned_solve_s / s.iterations as f64,
            )
        })
        .unwrap_or_default();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"universe\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"problem\": {{\n",
            "    \"cells\": 512,\n",
            "    \"patch_cells\": 64,\n",
            "    \"ranks\": 2,\n",
            "    \"angles\": 8,\n",
            "    \"grain\": 16,\n",
            "    \"iterations\": {iters}\n",
            "  }},\n",
            "  \"resident_solve_wall_seconds\": {rs:.6},\n",
            "  \"respawned_solve_wall_seconds\": {ps:.6},\n",
            "  \"resident_iter_wall_seconds\": {ri:.6},\n",
            "  \"respawned_iter_wall_seconds\": {pi:.6},\n",
            "  \"setup_overhead_per_iter_seconds\": {ov:.6},\n",
            "  \"resident_solve_speedup\": {sp:.3},\n",
            "{at_scale}",
            "  \"noop_epochs\": {ne},\n",
            "  \"noop_resident_epoch_seconds\": {nr:.6},\n",
            "  \"noop_respawned_epoch_seconds\": {np:.6},\n",
            "  \"noop_epoch_speedup\": {ns:.3},\n",
            "  \"phi_bit_identical\": true\n",
            "}}\n"
        ),
        mode = if test_mode { "test" } else { "full" },
        iters = solver.iterations,
        rs = solver.resident_solve_s,
        ps = solver.respawned_solve_s,
        ri = resident_iter,
        pi = respawned_iter,
        ov = setup_overhead_per_iter,
        sp = solve_speedup,
        at_scale = at_scale_json,
        ne = micro.epochs,
        nr = micro_resident_epoch,
        np = micro_respawned_epoch,
        ns = micro_speedup,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_universe.json");
    if test_mode && out.exists() {
        // Smoke numbers are not a baseline: keep the committed full-
        // mode file, only prove the bench still runs end to end.
        println!("test mode: committed baseline left in place");
    } else {
        std::fs::write(&out, json).expect("write BENCH_universe.json");
        println!("baseline written to {}", out.display());
    }
}
