//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! One timeline (`pid`, `tid`) per recorded lane: `pid` is the rank,
//! `tid` the lane within it (0 = master, `w + 1` = worker `w`).
//! Durational events render as complete (`"ph":"X"`) events with
//! microsecond `ts`/`dur`; instant kinds as thread-scoped instants
//! (`"ph":"i"`); and metadata (`"ph":"M"`) rows name each process and
//! thread so the viewer shows `rank 0 / worker 1` instead of raw ids.

use crate::event::Event;
use crate::LaneSnapshot;

/// One exported trace event, pre-JSON. Kept structured so tests can
/// validate a trace (nesting, monotonicity, span counts) without a
/// JSON parser.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the [`crate::EventKind`] name).
    pub name: &'static str,
    /// Trace-event phase: `X` (complete), `i` (instant).
    pub phase: char,
    /// Process id lane: the rank.
    pub pid: u32,
    /// Thread id lane: 0 = master, `w + 1` = worker `w`.
    pub tid: u32,
    /// Start timestamp, microseconds on the shared telemetry clock.
    pub ts_us: f64,
    /// Duration, microseconds (0 for instants).
    pub dur_us: f64,
    /// Kind-specific arguments, rendered into the `args` object.
    pub args: Vec<(&'static str, u64)>,
}

/// Argument names per event kind, applied to the `a`/`b` payload
/// words (a `None` slot suppresses the word).
fn arg_names(e: &Event) -> [Option<&'static str>; 2] {
    use crate::EventKind::*;
    match e.kind {
        Epoch => [Some("epoch"), Some("span")],
        Fence => [None, None],
        Claim => [Some("claimed"), None],
        Compute => [Some("patch"), Some("task")],
        Pack => [Some("dst"), Some("bytes")],
        Route => [Some("streams"), None],
        PlanCompile => [Some("generation"), None],
        Send => [Some("dst"), Some("bytes")],
        Recv => [Some("src"), Some("bytes")],
        Fault => [Some("detail"), None],
        CacheHit | CacheMiss => [Some("generation"), None],
    }
}

/// Convert drained lane snapshots into trace events, sorted by
/// `(pid, tid, ts)`. Metadata rows are added by [`to_json`].
pub fn trace_events(lanes: &[LaneSnapshot]) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for lane in lanes {
        for e in &lane.events {
            let [an, bn] = arg_names(e);
            let mut args = Vec::new();
            if let Some(n) = an {
                args.push((n, e.a));
            }
            if let Some(n) = bn {
                args.push((n, e.b));
            }
            out.push(TraceEvent {
                name: e.kind.name(),
                phase: if e.kind.is_instant() { 'i' } else { 'X' },
                pid: lane.rank,
                tid: lane.lane,
                ts_us: e.t0 as f64 / 1000.0,
                dur_us: e.t1.saturating_sub(e.t0) as f64 / 1000.0,
                args,
            });
        }
    }
    out.sort_by(|x, y| {
        (x.pid, x.tid)
            .cmp(&(y.pid, y.tid))
            .then(x.ts_us.total_cmp(&y.ts_us))
    });
    out
}

/// Human name of a `(rank, lane)` pair's thread.
pub fn lane_name(lane: u32) -> String {
    if lane == 0 {
        "master".to_string()
    } else {
        format!("worker {}", lane - 1)
    }
}

/// Human name of a rank's process row. [`crate::GLOBAL_RANK`] is the
/// process-wide driver lane.
pub fn rank_name(rank: u32) -> String {
    if rank == crate::GLOBAL_RANK {
        "driver".to_string()
    } else {
        format!("rank {rank}")
    }
}

fn push_json_event(out: &mut String, e: &TraceEvent) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{:.3}",
        e.name, e.phase, e.pid, e.tid, e.ts_us
    ));
    if e.phase == 'X' {
        out.push_str(&format!(",\"dur\":{:.3}", e.dur_us));
    }
    if e.phase == 'i' {
        // Thread-scoped instant.
        out.push_str(",\"s\":\"t\"");
    }
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push('}');
    }
    out.push('}');
}

/// Render trace events (plus process/thread metadata rows for every
/// `(pid, tid)` present) as a Chrome trace-event JSON document.
pub fn to_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    // Metadata: name each process once and each thread once.
    let mut seen_pid: Vec<u32> = Vec::new();
    let mut seen_tid: Vec<(u32, u32)> = Vec::new();
    for e in events {
        if !seen_pid.contains(&e.pid) {
            seen_pid.push(e.pid);
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                e.pid,
                rank_name(e.pid)
            ));
        }
        if !seen_tid.contains(&(e.pid, e.tid)) {
            seen_tid.push((e.pid, e.tid));
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                e.pid,
                e.tid,
                lane_name(e.tid)
            ));
        }
    }
    for e in events {
        sep(&mut out);
        push_json_event(&mut out, e);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn lane(rank: u32, lane_id: u32, events: Vec<Event>) -> LaneSnapshot {
        LaneSnapshot {
            rank,
            lane: lane_id,
            dropped: 0,
            events,
        }
    }

    #[test]
    fn events_sort_by_lane_then_time_and_carry_args() {
        let lanes = vec![
            lane(
                1,
                0,
                vec![Event {
                    kind: EventKind::Send,
                    t0: 5000,
                    t1: 5000,
                    a: 3,
                    b: 128,
                }],
            ),
            lane(
                0,
                1,
                vec![
                    Event {
                        kind: EventKind::Compute,
                        t0: 2000,
                        t1: 9000,
                        a: 7,
                        b: 1,
                    },
                    Event {
                        kind: EventKind::Claim,
                        t0: 1000,
                        t1: 1500,
                        a: 4,
                        b: 0,
                    },
                ],
            ),
        ];
        let evs = trace_events(&lanes);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].name, "claim");
        assert_eq!(evs[1].name, "compute");
        assert_eq!(evs[1].args, vec![("patch", 7), ("task", 1)]);
        assert_eq!(evs[2].name, "send");
        assert_eq!(evs[2].phase, 'i');
        assert_eq!((evs[2].pid, evs[2].tid), (1, 0));
        assert_eq!(evs[0].ts_us, 1.0);
        assert_eq!(evs[1].dur_us, 7.0);
    }

    #[test]
    fn json_has_metadata_and_balanced_structure() {
        let lanes = vec![lane(
            0,
            2,
            vec![Event {
                kind: EventKind::Epoch,
                t0: 0,
                t1: 1_000_000,
                a: 3,
                b: 17,
            }],
        )];
        let json = to_json(&trace_events(&lanes));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"rank 0\""));
        assert!(json.contains("\"worker 1\""));
        assert!(json.contains("\"name\":\"epoch\""));
        assert!(json.contains("\"args\":{\"epoch\":3,\"span\":17}"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces: {json}"
        );
    }
}
