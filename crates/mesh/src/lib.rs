//! Mesh substrate for JSweep: patch-based structured and unstructured
//! meshes, in the spirit of the JAxMIN infrastructure the paper builds on.
//!
//! The computational domain is discretised into **cells**; contiguous
//! groups of cells form **patches** ([`patch::PatchSet`]); patches are
//! distributed over ranks by the decomposers in [`partition`]. Sweep
//! scheduling consumes meshes only through the [`SweepTopology`] trait,
//! which exposes per-cell face geometry (outward normals, areas,
//! neighbours) — the single piece of information a sweep direction needs
//! to orient its dependency DAG.
//!
//! Three mesh families are provided:
//!
//! * [`structured::StructuredMesh`] — regular axis-aligned hexahedral
//!   grids (JSNT-S / Kobayashi territory), with implicit geometry;
//! * [`deformed::DeformedMesh`] — structured connectivity with jittered
//!   vertex positions, producing the irregular dependencies the paper
//!   cites as motivation ("deforming structured meshes");
//! * [`tet::TetMesh`] — unstructured tetrahedral meshes (JSNT-U
//!   territory) with generators in [`tetgen`] for the ball and reactor
//!   shapes of Fig. 11 and uniform red refinement in [`refine`] for the
//!   weak-scaling study of Fig. 15.

#![deny(missing_docs)]

pub mod deformed;
pub mod partition;
pub mod patch;
pub mod refine;
pub mod sfc;
pub mod stats;
pub mod structured;
pub mod tet;
pub mod tetgen;

pub use patch::{PatchId, PatchSet};
pub use structured::StructuredMesh;
pub use tet::TetMesh;

/// Process-wide monotonic source of mesh generation stamps.
///
/// Starts at 1 so a stamp of 0 can never name a live mesh (useful as a
/// "no mesh" sentinel in caches).
static MESH_GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Draw a fresh, process-unique generation stamp.
///
/// Every topology-constructing operation — `StructuredMesh::new`,
/// `TetMesh::new`, `DeformedMesh::jittered`, and therefore every
/// [`refine`] call — draws one, so two meshes share a stamp only when
/// one is a `clone()` of the other (identical topology by
/// construction). Downstream caches (the coarse-replay
/// `PlanCache` of `jsweep-transport`) key compiled scheduling state on
/// the stamp: any refinement or rebuild yields a stamp never seen
/// before, so stale plans can never be replayed.
pub fn next_generation() -> u64 {
    MESH_GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Identifier a boundary face carries instead of a neighbouring cell.
///
/// Transport solvers map boundary ids to boundary conditions (vacuum,
/// reflective, prescribed incoming flux).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundaryId(pub u16);

/// What lies on the far side of a cell face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighbor {
    /// Another cell of the same mesh.
    Interior(usize),
    /// The domain boundary, tagged for boundary-condition lookup.
    Boundary(BoundaryId),
}

impl Neighbor {
    /// The interior neighbour, if any.
    #[inline]
    pub fn cell(self) -> Option<usize> {
        match self {
            Neighbor::Interior(c) => Some(c),
            Neighbor::Boundary(_) => None,
        }
    }

    /// True when the face lies on the domain boundary.
    #[inline]
    pub fn is_boundary(self) -> bool {
        matches!(self, Neighbor::Boundary(_))
    }
}

/// Geometry and connectivity of one face of a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceInfo {
    /// What lies across the face.
    pub neighbor: Neighbor,
    /// Outward unit normal.
    pub normal: [f64; 3],
    /// Face area.
    pub area: f64,
}

impl FaceInfo {
    /// Signed flow rate `Ω·n A` of a sweep direction through this face;
    /// positive means outflow (the face is *downwind*), negative inflow
    /// (the face is *upwind*).
    #[inline]
    pub fn flow(&self, dir: [f64; 3]) -> f64 {
        (dir[0] * self.normal[0] + dir[1] * self.normal[1] + dir[2] * self.normal[2]) * self.area
    }
}

/// The face-level view of a mesh consumed by sweep-DAG construction and
/// transport kernels.
///
/// Implementations must present a *consistent* topology: if face `f` of
/// cell `a` reports `Neighbor::Interior(b)`, then exactly one face of `b`
/// reports `Neighbor::Interior(a)`, with an opposite normal and equal
/// area (up to floating-point tolerance).
pub trait SweepTopology: Sync {
    /// Total number of cells.
    fn num_cells(&self) -> usize;

    /// The mesh's topology generation stamp (see [`next_generation`]).
    ///
    /// Contract: two meshes with the same stamp have identical
    /// topology; any operation that produces a different topology
    /// (refinement, rebuild from scratch) produces a mesh with a fresh,
    /// strictly larger stamp. `clone()` keeps the stamp — the clone
    /// *is* the same topology. Sweep-plan caches use the stamp to
    /// invalidate compiled scheduling state.
    fn generation(&self) -> u64;

    /// Number of faces of cell `c` (6 for hexahedra, 4 for tetrahedra).
    fn num_faces(&self, c: usize) -> usize;

    /// Geometry/connectivity of face `f` of cell `c`.
    fn face(&self, c: usize, f: usize) -> FaceInfo;

    /// Cell volume.
    fn cell_volume(&self, c: usize) -> f64;

    /// Cell centroid.
    fn cell_centroid(&self, c: usize) -> [f64; 3];

    /// Interior neighbours of a cell, in face order.
    fn neighbors(&self, c: usize) -> Vec<usize> {
        (0..self.num_faces(c))
            .filter_map(|f| self.face(c, f).neighbor.cell())
            .collect()
    }

    /// Upwind interior neighbours of `c` for sweep direction `dir`
    /// (cells whose data `c` consumes).
    fn upwind_neighbors(&self, c: usize, dir: [f64; 3]) -> Vec<usize> {
        (0..self.num_faces(c))
            .filter_map(|f| {
                let face = self.face(c, f);
                if face.flow(dir) < 0.0 {
                    face.neighbor.cell()
                } else {
                    None
                }
            })
            .collect()
    }

    /// Downwind interior neighbours of `c` for sweep direction `dir`
    /// (cells that consume `c`'s data).
    fn downwind_neighbors(&self, c: usize, dir: [f64; 3]) -> Vec<usize> {
        (0..self.num_faces(c))
            .filter_map(|f| {
                let face = self.face(c, f);
                if face.flow(dir) > 0.0 {
                    face.neighbor.cell()
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Index of the face of `cell` that touches interior neighbour
/// `neighbor`, or `None` when the two cells are not adjacent.
///
/// The single definition of face-toward-neighbour lookup shared by the
/// transport stack (fine stream ingest, the kernel's local downwind
/// write, and the replay plan compiler): their face-slot arithmetic
/// must agree exactly, because the replay wire format ships
/// sender-resolved slots the receiver indexes with.
pub fn face_toward<T: SweepTopology + ?Sized>(
    mesh: &T,
    cell: usize,
    neighbor: usize,
) -> Option<usize> {
    (0..mesh.num_faces(cell)).find(|&f| mesh.face(cell, f).neighbor == Neighbor::Interior(neighbor))
}

/// Check the symmetry contract of [`SweepTopology`] on a whole mesh;
/// used by tests and available to downstream validation.
///
/// Returns a human-readable description of the first violation found.
pub fn validate_topology<T: SweepTopology + ?Sized>(mesh: &T) -> Result<(), String> {
    for c in 0..mesh.num_cells() {
        let vol = mesh.cell_volume(c);
        if !(vol.is_finite() && vol > 0.0) {
            return Err(format!("cell {c} has non-positive volume {vol}"));
        }
        for f in 0..mesh.num_faces(c) {
            let face = mesh.face(c, f);
            let n2: f64 = face.normal.iter().map(|x| x * x).sum();
            if (n2 - 1.0).abs() > 1e-9 {
                return Err(format!("cell {c} face {f}: normal not unit ({n2})"));
            }
            if !(face.area.is_finite() && face.area > 0.0) {
                return Err(format!("cell {c} face {f}: bad area {}", face.area));
            }
            if let Neighbor::Interior(nb) = face.neighbor {
                if nb >= mesh.num_cells() {
                    return Err(format!("cell {c} face {f}: neighbor {nb} out of range"));
                }
                if nb == c {
                    return Err(format!("cell {c} face {f}: self-neighbor"));
                }
                // Find the reciprocal face.
                let mut found = false;
                for g in 0..mesh.num_faces(nb) {
                    let back = mesh.face(nb, g);
                    if back.neighbor == Neighbor::Interior(c) {
                        let dot: f64 = (0..3).map(|i| back.normal[i] * face.normal[i]).sum();
                        if dot > -1.0 + 1e-6 {
                            return Err(format!(
                                "cells {c}/{nb}: reciprocal normals not opposite (dot {dot})"
                            ));
                        }
                        if (back.area - face.area).abs() > 1e-9 * face.area.max(1.0) {
                            return Err(format!(
                                "cells {c}/{nb}: reciprocal areas differ ({} vs {})",
                                face.area, back.area
                            ));
                        }
                        found = true;
                        break;
                    }
                }
                if !found {
                    return Err(format!("cell {c} face {f}: neighbor {nb} lacks back-face"));
                }
            }
        }
    }
    Ok(())
}

/// Divergence-theorem check: for every closed cell, `∑ n·A` over the
/// faces must vanish. Returns the worst residual norm over the mesh.
pub fn max_face_closure_residual<T: SweepTopology + ?Sized>(mesh: &T) -> f64 {
    let mut worst = 0f64;
    for c in 0..mesh.num_cells() {
        let mut acc = [0f64; 3];
        for f in 0..mesh.num_faces(c) {
            let face = mesh.face(c, f);
            for (a, n) in acc.iter_mut().zip(&face.normal) {
                *a += n * face.area;
            }
        }
        let norm = (acc[0] * acc[0] + acc[1] * acc[1] + acc[2] * acc[2]).sqrt();
        worst = worst.max(norm);
    }
    worst
}
