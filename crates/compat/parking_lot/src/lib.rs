//! Offline, API-compatible stand-in for the subset of the
//! [`parking_lot`] crate that jsweep uses: [`Mutex`] (infallible
//! `lock()`), [`RwLock`] and [`Condvar`] (waits on `&mut MutexGuard`).
//!
//! Built on `std::sync` primitives with poisoning ignored — a panic
//! while holding a lock aborts the run through the rank-thread join in
//! `jsweep_comm::Universe`, so poison recovery adds nothing here.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive whose `lock()` returns the guard
/// directly (no poison `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so that `Condvar::wait` can temporarily take the std
    // guard by value and put the re-acquired one back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable that waits on a `&mut MutexGuard`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Like [`Condvar::wait`] with an upper bound on the wait time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with infallible `read()` / `write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
