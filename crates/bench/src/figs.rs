//! The experiments: one function per table/figure of the paper.
//!
//! Every function documents (a) the paper's setup, (b) the scaled
//! setup simulated here, and (c) the axis mapping. EXPERIMENTS.md
//! records paper-vs-measured values produced by these functions.

use crate::setups::{
    cores, machine_with_groups, structured_problem, tianhe, unstructured_problem, Strategies,
};
use crate::table::{pct, secs, Table};
use crate::Scale;
use jsweep_baselines::{bsp, kba, psd};
use jsweep_des::{simulate, simulate_coarse, SimOptions};
use jsweep_graph::{coarse, PriorityStrategy};
use jsweep_mesh::tetgen;
use jsweep_quadrature::QuadratureSet;

fn sim_default(
    problem: &jsweep_des::SweepProblem,
    machine: &jsweep_des::MachineModel,
    grain: usize,
) -> jsweep_des::DesResult {
    simulate(
        problem,
        machine,
        &SimOptions {
            grain,
            record_traces: false,
        },
    )
}

/// Fig. 9a — runtime vs vertex clustering grain (structured).
///
/// Paper: SnSweep-S, 160×160×180 cells, patch 20³, S2, 96 cores; the
/// curve falls steeply, bottoms out around grain ~1000, then rises for
/// excessive grains. Here: 48³ cells, patch 16³, S2, 96 simulated
/// cores (8 ranks × 12).
pub fn fig09a(scale: Scale) -> Table {
    let (n, patch, ranks, grains): (usize, usize, usize, Vec<usize>) = match scale {
        Scale::Smoke => (16, 8, 2, vec![1, 64, 1024]),
        Scale::Full => (48, 16, 8, vec![1, 8, 64, 256, 1024, 2048, 4096]),
    };
    let quad = QuadratureSet::sn(2);
    let prob = structured_problem(n, patch, ranks, &quad, Strategies::SLBD2);
    let machine = tianhe(ranks);
    let mut t = Table::new(
        "fig09a",
        "S2 sweep time vs vertex clustering grain (structured)",
        &["grain", "time_s", "compute_calls", "messages"],
    );
    for g in grains {
        let r = sim_default(&prob, &machine, g);
        t.push(vec![
            g.to_string(),
            secs(r.time),
            r.compute_calls.to_string(),
            r.messages.to_string(),
        ]);
    }
    t
}

/// Fig. 9b — priority strategies vs cores (structured).
///
/// Paper: LDCP+LDCP, SLBD+SLBD, LDCP+SLBD over 96–768 cores; SLBD+SLBD
/// wins consistently. Axis identical here (ranks 8–64 × 12 cores).
pub fn fig09b(scale: Scale) -> Table {
    let (n, patch, rank_list): (usize, usize, Vec<usize>) = match scale {
        Scale::Smoke => (16, 8, vec![2, 4]),
        Scale::Full => (48, 8, vec![8, 16, 32, 64]),
    };
    let quad = QuadratureSet::sn(2);
    let strategies = [
        Strategies {
            patch: PriorityStrategy::Ldcp,
            vertex: PriorityStrategy::Ldcp,
        },
        Strategies::SLBD2,
        Strategies {
            patch: PriorityStrategy::Ldcp,
            vertex: PriorityStrategy::Slbd,
        },
    ];
    let mut t = Table::new(
        "fig09b",
        "S2 sweep time vs cores for priority strategies (structured)",
        &["cores", "LDCP+LDCP", "SLBD+SLBD", "LDCP+SLBD"],
    );
    for &ranks in &rank_list {
        let mut row = vec![cores(ranks).to_string()];
        for s in strategies {
            let prob = structured_problem(n, patch, ranks, &quad, s);
            let r = sim_default(&prob, &tianhe(ranks), 64);
            row.push(secs(r.time));
        }
        t.push(row);
    }
    t
}

/// Figs. 12a/12b — JSNT-S strong scaling on the Kobayashi benchmark.
///
/// Paper: Kobayashi-400 (400³ cells, 320 angles) on 768–24 576 cores;
/// Kobayashi-800 on 4 800–76 800 cores. Here: 64³/80³ cells, S4,
/// paper cores = 16 × simulated cores. The sweep DAG is the Kobayashi
/// cube's (material layout does not affect scheduling).
pub fn fig12(scale: Scale, large: bool) -> Table {
    let quad = QuadratureSet::sn(4);
    let (n, patch, rank_list, id, title): (usize, usize, Vec<usize>, &str, &str) = if large {
        match scale {
            Scale::Smoke => (
                24,
                8,
                vec![2, 4],
                "fig12b",
                "JSNT-S strong scaling, Kobayashi-800 (scaled)",
            ),
            Scale::Full => (
                80,
                6,
                vec![25, 50, 100, 200, 400],
                "fig12b",
                "JSNT-S strong scaling, Kobayashi-800 (scaled)",
            ),
        }
    } else {
        match scale {
            Scale::Smoke => (
                16,
                8,
                vec![2, 4],
                "fig12a",
                "JSNT-S strong scaling, Kobayashi-400 (scaled)",
            ),
            Scale::Full => (
                64,
                6,
                vec![4, 8, 16, 32, 64, 128],
                "fig12a",
                "JSNT-S strong scaling, Kobayashi-400 (scaled)",
            ),
        }
    };
    let mut t = Table::new(
        id,
        title,
        &["paper_cores", "sim_cores", "time_s", "speedup", "par_eff"],
    );
    let mut base: Option<(f64, usize)> = None;
    for &ranks in &rank_list {
        let prob = structured_problem(n, patch, ranks, &quad, Strategies::SLBD2);
        let r = sim_default(&prob, &tianhe(ranks), 1000);
        let c = cores(ranks);
        let (t0, c0) = *base.get_or_insert((r.time, c));
        let speedup = t0 / r.time;
        let eff = speedup * c0 as f64 / c as f64;
        t.push(vec![
            (c * 16).to_string(),
            c.to_string(),
            secs(r.time),
            format!("{speedup:.2}"),
            pct(eff),
        ]);
    }
    t
}

/// The reactor mesh of the JSNT-U experiments (Fig. 11b stand-in).
fn reactor_mesh(scale: Scale) -> jsweep_mesh::TetMesh {
    match scale {
        Scale::Smoke => tetgen::reactor(10, 1.0, 1.0, 4),
        Scale::Full => tetgen::reactor(28, 1.0, 1.0, 4),
    }
}

/// Fig. 13a — JSNT-U runtime vs patch size and vs cluster grain
/// (reactor mesh, S4, 4 groups).
///
/// Paper: time falls quickly with patch size, then creeps up past
/// ~1000–1500 cells; time falls with grain and flattens (parallelism
/// limits the effective grain on unstructured meshes).
pub fn fig13a(scale: Scale) -> Vec<Table> {
    let mesh = reactor_mesh(scale);
    let quad = QuadratureSet::sn(4);
    let ranks = match scale {
        Scale::Smoke => 2,
        Scale::Full => 8,
    };
    let machine = machine_with_groups(ranks, 4);

    let patch_sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![100, 500],
        Scale::Full => vec![50, 100, 250, 500, 1000, 2000, 2500],
    };
    let mut t1 = Table::new(
        "fig13a_patch",
        "JSNT-U time vs patch size (reactor, S4, 4 groups)",
        &["patch_cells", "time_s", "messages"],
    );
    for &psize in &patch_sizes {
        let prob = unstructured_problem(&mesh, psize, ranks, &quad, Strategies::SLBD2);
        let r = sim_default(&prob, &machine, 64);
        t1.push(vec![
            psize.to_string(),
            secs(r.time),
            r.messages.to_string(),
        ]);
    }

    let grains: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 16, 64],
        Scale::Full => vec![1, 2, 4, 8, 16, 32, 64],
    };
    let mut t2 = Table::new(
        "fig13a_grain",
        "JSNT-U time vs cluster grain (reactor, S4, 4 groups, patch 500)",
        &["grain", "time_s", "compute_calls"],
    );
    let prob = unstructured_problem(&mesh, 500, ranks, &quad, Strategies::SLBD2);
    for &g in &grains {
        let r = sim_default(&prob, &machine, g);
        t2.push(vec![
            g.to_string(),
            secs(r.time),
            r.compute_calls.to_string(),
        ]);
    }
    vec![t1, t2]
}

/// Fig. 13b — JSNT-U priority strategies vs cores (reactor).
///
/// Paper: BFS / BFS+SLBD / SLBD / SLBD+BFS between 384 and 6144 cores;
/// differences are small on unstructured meshes. Paper cores = 16 ×
/// simulated.
pub fn fig13b(scale: Scale) -> Table {
    let mesh = reactor_mesh(scale);
    let quad = QuadratureSet::sn(4);
    let rank_list: Vec<usize> = match scale {
        Scale::Smoke => vec![2, 4],
        Scale::Full => vec![2, 4, 8, 16, 32],
    };
    let strategies = [
        (
            "BFS",
            Strategies {
                patch: PriorityStrategy::Bfs,
                vertex: PriorityStrategy::Bfs,
            },
        ),
        (
            "BFS+SLBD",
            Strategies {
                patch: PriorityStrategy::Bfs,
                vertex: PriorityStrategy::Slbd,
            },
        ),
        ("SLBD", Strategies::SLBD2),
        (
            "SLBD+BFS",
            Strategies {
                patch: PriorityStrategy::Slbd,
                vertex: PriorityStrategy::Bfs,
            },
        ),
    ];
    let mut t = Table::new(
        "fig13b",
        "JSNT-U time vs cores for priority strategies (reactor)",
        &["paper_cores", "BFS", "BFS+SLBD", "SLBD", "SLBD+BFS"],
    );
    for &ranks in &rank_list {
        let machine = machine_with_groups(ranks, 4);
        let mut row = vec![(cores(ranks) * 16).to_string()];
        for (_, s) in strategies {
            let prob = unstructured_problem(&mesh, 500, ranks, &quad, s);
            let r = sim_default(&prob, &machine, 64);
            row.push(secs(r.time));
        }
        t.push(row);
    }
    t
}

/// Figs. 14a/14b — JSNT-U strong scaling on ball meshes.
///
/// Paper: 482 248-cell ball on 24–6 144 cores (14a) and a 173M-cell
/// ball on 3 072–49 152 cores (14b). Here: Kuhn-tet balls of ~43k and
/// ~200k cells; paper cores = 8× (14a) / 16× (14b) simulated cores.
pub fn fig14(scale: Scale, large: bool) -> Table {
    let quad = QuadratureSet::sn(4);
    let (mesh, rank_list, factor, id, title): (
        jsweep_mesh::TetMesh,
        Vec<usize>,
        usize,
        &str,
        &str,
    ) = if large {
        match scale {
            Scale::Smoke => (
                tetgen::ball(6, 1.0),
                vec![2, 4],
                16,
                "fig14b",
                "JSNT-U strong scaling, large ball (scaled)",
            ),
            Scale::Full => (
                tetgen::ball(20, 1.0),
                vec![16, 32, 64, 128, 256],
                16,
                "fig14b",
                "JSNT-U strong scaling, large ball (scaled)",
            ),
        }
    } else {
        match scale {
            Scale::Smoke => (
                tetgen::ball(5, 1.0),
                vec![1, 2],
                8,
                "fig14a",
                "JSNT-U strong scaling, small ball (scaled)",
            ),
            Scale::Full => (
                tetgen::ball(12, 1.0),
                vec![2, 4, 8, 16, 32, 64],
                8,
                "fig14a",
                "JSNT-U strong scaling, small ball (scaled)",
            ),
        }
    };
    let mut t = Table::new(
        id,
        title,
        &["paper_cores", "sim_cores", "time_s", "speedup", "par_eff"],
    );
    let mut base: Option<(f64, usize)> = None;
    for &ranks in &rank_list {
        let prob = unstructured_problem(&mesh, 100, ranks, &quad, Strategies::SLBD2);
        let machine = machine_with_groups(ranks, 4);
        let r = sim_default(&prob, &machine, 64);
        let c = cores(ranks);
        let (t0, c0) = *base.get_or_insert((r.time, c));
        let speedup = t0 / r.time;
        let eff = speedup * c0 as f64 / c as f64;
        t.push(vec![
            (c * factor).to_string(),
            c.to_string(),
            secs(r.time),
            format!("{speedup:.2}"),
            pct(eff),
        ]);
    }
    t
}

/// Fig. 15 — JSNT-U weak scaling (reactor and ball).
///
/// Paper: cores 24 → 12 288 with the mesh refined in proportion;
/// efficiency drops to ~40% (reactor) / <20% (ball) at 12 288 cores
/// because per-rank refinement thickens subdomains and lengthens the
/// critical path. Here: three ×8 steps (ranks 2 → 16 → 128).
pub fn fig15(scale: Scale) -> Table {
    let quad = QuadratureSet::sn(4);
    let steps: Vec<(usize, usize)> = match scale {
        // (ranks, resolution multiplier as 2^k per axis)
        Scale::Smoke => vec![(2, 0), (16, 1)],
        Scale::Full => vec![(2, 0), (16, 1), (128, 2)],
    };
    let mut t = Table::new(
        "fig15",
        "JSNT-U weak scaling efficiency (reactor & ball)",
        &["paper_cores", "sim_cores", "reactor_eff", "ball_eff"],
    );
    let mut base: Option<(f64, f64)> = None;
    for &(ranks, level) in &steps {
        let reactor = tetgen::reactor(10 << level, 1.0, 1.0, 4);
        let ball = tetgen::ball(6 << level, 1.0);
        let machine = machine_with_groups(ranks, 4);
        let pr = unstructured_problem(&reactor, 100, ranks, &quad, Strategies::SLBD2);
        let pb = unstructured_problem(&ball, 100, ranks, &quad, Strategies::SLBD2);
        let rr = sim_default(&pr, &machine, 64);
        let rb = sim_default(&pb, &machine, 64);
        let (tr0, tb0) = *base.get_or_insert((rr.time, rb.time));
        t.push(vec![
            (cores(ranks) * 12 / 12).to_string(),
            cores(ranks).to_string(),
            pct(tr0 / rr.time),
            pct(tb0 / rb.time),
        ]);
    }
    t
}

/// Fig. 16 — runtime breakdown of JSNT-S (coarsened-graph iteration).
///
/// Paper: 200³ Kobayashi on 192–3 072 cores; JSweep overhead
/// (graph-op + pack/unpack) ≈ 23%, idle grows from 22% to 46%, comm
/// 13–19%. Here: 48³, S4, paper cores = 4 × simulated.
pub fn fig16(scale: Scale) -> Table {
    let quad = QuadratureSet::sn(4);
    let (n, rank_list): (usize, Vec<usize>) = match scale {
        Scale::Smoke => (16, vec![2, 4]),
        Scale::Full => (48, vec![4, 8, 16, 32, 64]),
    };
    let mut t = Table::new(
        "fig16",
        "JSNT-S per-core time breakdown (seconds, coarsened-graph sweep)",
        &[
            "paper_cores",
            "kernel",
            "graph_op",
            "pack_unpack",
            "comm",
            "idle",
            "total",
        ],
    );
    for &ranks in &rank_list {
        let prob = structured_problem(n, 8, ranks, &quad, Strategies::SLBD2);
        let machine = tianhe(ranks);
        let fine = simulate(
            &prob,
            &machine,
            &SimOptions {
                grain: 1000,
                record_traces: true,
            },
        );
        let tasks: Vec<Vec<coarse::CoarsenedTask>> = (0..prob.num_angles)
            .map(|a| coarse::build_coarse(&prob.subs[a], &fine.traces[a]))
            .collect();
        let r = simulate_coarse(&prob, &tasks, &machine, 1000);
        let c = machine.cores() as f64;
        let b = &r.breakdown;
        t.push(vec![
            (cores(ranks) * 4).to_string(),
            secs(b.kernel / c),
            secs(b.graph_op / c),
            secs(b.pack_unpack / c),
            secs(b.comm / c),
            secs(b.idle / c),
            secs(b.total() / c),
        ]);
    }
    t
}

/// Figs. 17a/17b — JSweep vs the BSP baseline (JASMIN / JAUMIN).
///
/// Paper: JSweep beats hand-optimised JASMIN SnSweep on Kobayashi-400
/// (17a) and JAUMIN JSNT-U on the ball (17b), with the gap widening at
/// scale. Paper cores = 4× (17a) / 16× (17b) simulated.
pub fn fig17(scale: Scale, unstructured: bool) -> Table {
    let quad = QuadratureSet::sn(4);
    if unstructured {
        let mesh = match scale {
            Scale::Smoke => tetgen::ball(5, 1.0),
            Scale::Full => tetgen::ball(12, 1.0),
        };
        let rank_list: Vec<usize> = match scale {
            Scale::Smoke => vec![2],
            Scale::Full => vec![2, 4, 8, 16, 32],
        };
        let mut t = Table::new(
            "fig17b",
            "JSweep vs JAUMIN-BSP on the ball mesh",
            &["paper_cores", "JAUMIN_bsp_s", "JSweep_s"],
        );
        for &ranks in &rank_list {
            let prob = unstructured_problem(&mesh, 500, ranks, &quad, Strategies::SLBD2);
            let machine = machine_with_groups(ranks, 4);
            let b = bsp::simulate_bsp(&prob, &machine);
            let j = sim_default(&prob, &machine, 64);
            t.push(vec![
                (cores(ranks) * 16).to_string(),
                secs(b.time),
                secs(j.time),
            ]);
        }
        t
    } else {
        let (n, rank_list): (usize, Vec<usize>) = match scale {
            Scale::Smoke => (24, vec![6]),
            Scale::Full => (64, vec![6, 12, 24, 48, 96]),
        };
        let mut t = Table::new(
            "fig17a",
            "JSweep vs JASMIN-BSP on Kobayashi-400 (scaled)",
            &["paper_cores", "JASMIN_bsp_s", "JSweep_s"],
        );
        for &ranks in &rank_list {
            let prob = structured_problem(n, 8, ranks, &quad, Strategies::SLBD2);
            let machine = tianhe(ranks);
            let b = bsp::simulate_bsp(&prob, &machine);
            let j = sim_default(&prob, &machine, 1000);
            t.push(vec![
                (cores(ranks) * 4).to_string(),
                secs(b.time),
                secs(j.time),
            ]);
        }
        t
    }
}

/// Table I — parallel-efficiency comparison with Denovo (KBA) and
/// PSD-b.
///
/// Paper: Kobayashi-400 — Denovo 77.8% (3600 vs 144 cores), JSweep
/// 89.6% (6144 vs 384); sphere S4 — PSD-b 88% (1024 vs 128), JSweep
/// 66% (1536 vs 192). Core ratios are preserved (25× / 16× / 8×).
pub fn table1(scale: Scale) -> Table {
    let mut t = Table::new(
        "table1",
        "Parallel efficiency comparison (self-relative, paper core ratios)",
        &["system", "problem", "cores_ratio", "par_eff", "paper_eff"],
    );
    // Structured entries use S6 (48 angles): the paper's Kobayashi runs
    // pipeline 320 directions, and angle-major slack is what carries
    // JSweep's efficiency; S6 is the largest set that stays cheap here.
    let quad = match scale {
        Scale::Smoke => QuadratureSet::sn(2),
        Scale::Full => QuadratureSet::sn(6),
    };
    let quad_u = QuadratureSet::sn(4);

    // Denovo / KBA on the Kobayashi cube: 144 -> 3600 cores (25x).
    let (kba_n, kba_base, kba_big) = match scale {
        Scale::Smoke => (12, (1usize, 1usize), (2usize, 2usize)),
        Scale::Full => (60, (2, 2), (10, 10)),
    };
    let kmesh = jsweep_mesh::StructuredMesh::unit(kba_n, kba_n, kba_n);
    let kb = kba::simulate_kba(
        &kmesh,
        &quad,
        &kba::KbaLayout {
            px: kba_base.0,
            py: kba_base.1,
            chunk_z: 6.min(kba_n),
        },
        &jsweep_des::MachineModel::cluster(kba_base.0 * kba_base.1, 1),
    );
    let kl = kba::simulate_kba(
        &kmesh,
        &quad,
        &kba::KbaLayout {
            px: kba_big.0,
            py: kba_big.1,
            chunk_z: 6.min(kba_n),
        },
        &jsweep_des::MachineModel::cluster(kba_big.0 * kba_big.1, 1),
    );
    let kba_ratio = (kba_big.0 * kba_big.1) as f64 / (kba_base.0 * kba_base.1) as f64;
    let kba_eff = (kb.time / kl.time) / kba_ratio;
    t.push(vec![
        "KBA (Denovo-like)".into(),
        "Kobayashi cube".into(),
        format!("{kba_ratio:.0}x"),
        pct(kba_eff),
        "77.8%".into(),
    ]);

    // JSweep on the Kobayashi cube: 384 -> 6144 (16x).
    let (jn, jbase, jbig) = match scale {
        Scale::Smoke => (16, 1, 4),
        Scale::Full => (64, 2, 32),
    };
    let pb = structured_problem(jn, 8, jbase, &quad, Strategies::SLBD2);
    let pl = structured_problem(jn, 8, jbig, &quad, Strategies::SLBD2);
    let rb = sim_default(&pb, &tianhe(jbase), 1000);
    let rl = sim_default(&pl, &tianhe(jbig), 1000);
    let ratio = jbig as f64 / jbase as f64;
    t.push(vec![
        "JSweep".into(),
        "Kobayashi cube".into(),
        format!("{ratio:.0}x"),
        pct((rb.time / rl.time) / ratio),
        "89.6%".into(),
    ]);

    // PSD-b on the sphere: 128 -> 1024 (8x).
    let ball = match scale {
        Scale::Smoke => tetgen::ball(5, 1.0),
        Scale::Full => tetgen::ball(12, 1.0),
    };
    let (psd_base, psd_big) = match scale {
        Scale::Smoke => (2, 4),
        Scale::Full => (8, 64),
    };
    let template = jsweep_des::MachineModel::cluster(1, 1);
    let (pb_r, _) = psd::simulate_psd(&ball, &quad_u, psd_base, &template, 64);
    let (pl_r, _) = psd::simulate_psd(&ball, &quad_u, psd_big, &template, 64);
    let ratio = psd_big as f64 / psd_base as f64;
    t.push(vec![
        "PSD-b (dedicated)".into(),
        "sphere S4".into(),
        format!("{ratio:.0}x"),
        pct((pb_r.time / pl_r.time) / ratio),
        "88%".into(),
    ]);

    // JSweep on the sphere: 192 -> 1536 (8x).
    let (jsb, jsl) = match scale {
        Scale::Smoke => (1, 2),
        Scale::Full => (2, 16),
    };
    let pbs = unstructured_problem(&ball, 100, jsb, &quad_u, Strategies::SLBD2);
    let pls = unstructured_problem(&ball, 100, jsl, &quad_u, Strategies::SLBD2);
    let rbs = sim_default(&pbs, &machine_with_groups(jsb, 4), 64);
    let rls = sim_default(&pls, &machine_with_groups(jsl, 4), 64);
    let ratio = jsl as f64 / jsb as f64;
    t.push(vec![
        "JSweep".into(),
        "sphere S4".into(),
        format!("{ratio:.0}x"),
        pct((rbs.time / rls.time) / ratio),
        "66%".into(),
    ]);
    t
}

/// §V-E — coarsened-graph ablation: DAG sweep vs CG replay.
///
/// Paper: CG speedup of 7–10× over per-vertex DAG sweeps, with build
/// cost below one DAG iteration. Here the speedup shows up in the
/// scheduling-overhead (graph-op) component and the compute-call count.
pub fn cg_ablation(scale: Scale) -> Table {
    let quad = QuadratureSet::sn(4);
    let (n, ranks, grain) = match scale {
        Scale::Smoke => (16, 2, 16),
        Scale::Full => (48, 16, 64),
    };
    let prob = structured_problem(n, 8, ranks, &quad, Strategies::SLBD2);
    let machine = tianhe(ranks);
    let fine = simulate(
        &prob,
        &machine,
        &SimOptions {
            grain,
            record_traces: true,
        },
    );
    let build_start = std::time::Instant::now();
    let tasks: Vec<Vec<coarse::CoarsenedTask>> = (0..prob.num_angles)
        .map(|a| coarse::build_coarse(&prob.subs[a], &fine.traces[a]))
        .collect();
    let build_host_seconds = build_start.elapsed().as_secs_f64();
    let cg = simulate_coarse(&prob, &tasks, &machine, grain);

    let mut t = Table::new(
        "cg_ablation",
        "Coarsened graph vs per-vertex DAG (one sweep iteration)",
        &[
            "variant",
            "time_s",
            "compute_calls",
            "graph_op_core_s",
            "messages",
        ],
    );
    t.push(vec![
        "DAG (fine)".into(),
        secs(fine.time),
        fine.compute_calls.to_string(),
        secs(fine.breakdown.graph_op),
        fine.messages.to_string(),
    ]);
    t.push(vec![
        "Coarsened graph".into(),
        secs(cg.time),
        cg.compute_calls.to_string(),
        secs(cg.breakdown.graph_op),
        cg.messages.to_string(),
    ]);
    t.push(vec![
        "CG build (host s)".into(),
        secs(build_host_seconds),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // Overhead-dominated regime: when DAG bookkeeping dwarfs the
    // kernel (fine-grained kernels / slow schedulers), the paper's
    // 7-10x CG speedup appears. Emulate by charging 20x the default
    // per-vertex graph cost and a tenth of the kernel cost.
    let mut heavy = machine.clone();
    heavy.t_graph = machine.t_graph * 20.0;
    heavy.t_vertex = machine.t_vertex / 10.0;
    let fine_h = simulate(
        &prob,
        &heavy,
        &SimOptions {
            grain,
            record_traces: false,
        },
    );
    let cg_h = simulate_coarse(&prob, &tasks, &heavy, grain);
    t.push(vec![
        "DAG (overhead-heavy)".into(),
        secs(fine_h.time),
        fine_h.compute_calls.to_string(),
        secs(fine_h.breakdown.graph_op),
        fine_h.messages.to_string(),
    ]);
    t.push(vec![
        "CG (overhead-heavy)".into(),
        secs(cg_h.time),
        cg_h.compute_calls.to_string(),
        secs(cg_h.breakdown.graph_op),
        cg_h.messages.to_string(),
    ]);
    t
}

/// §V-E on the threaded runtime — fine DAG iterations vs coarse-graph
/// replay inside `solve_parallel` (the wired counterpart of
/// [`cg_ablation`], which models the same effect in the DES).
///
/// Paper: replaying the coarsened graph cuts scheduling overhead
/// 7–10× once kernels are cheap relative to bookkeeping; in Fig. 16
/// this is why the graph-op share stays small. Here both variants
/// solve the quickstart-scale problem; rows report the mean *replay*
/// iteration (iterations ≥ 2) wall and graph-op seconds, and the
/// one-off plan build cost. The flux is asserted bit-identical.
pub fn cg_replay(scale: Scale) -> Table {
    use crate::setups::{replay_scenario, replay_tail_mean};
    use jsweep_core::stats::Category;

    let sc = match scale {
        Scale::Smoke => replay_scenario(8, 4, 2, 3, 16),
        Scale::Full => replay_scenario(16, 4, 2, 9, 16),
    };
    let fine = sc.solve(false);
    let coarse = sc.solve(true);
    assert_eq!(fine.phi, coarse.phi, "replay changed the physics");

    let mut t = Table::new(
        "cg_replay",
        "Fine DAG vs coarse-graph replay in solve_parallel (per replay iteration)",
        &["variant", "iter_wall_s", "iter_graph_op_s", "build_s"],
    );
    t.push(vec![
        "DAG (fine)".into(),
        secs(replay_tail_mean(&fine.stats, |s| s.wall_seconds)),
        secs(replay_tail_mean(&fine.stats, |s| {
            s.category_seconds(Category::GraphOp)
        })),
        "-".into(),
    ]);
    t.push(vec![
        "Coarse replay".into(),
        secs(replay_tail_mean(&coarse.stats, |s| s.wall_seconds)),
        secs(replay_tail_mean(&coarse.stats, |s| {
            s.category_seconds(Category::GraphOp)
        })),
        secs(coarse.coarse_build_seconds),
    ]);
    t
}

/// Run every experiment at the given scale.
pub fn run_all(scale: Scale) -> Vec<Table> {
    let mut out = vec![fig09a(scale)];
    out.push(fig09b(scale));
    out.push(fig12(scale, false));
    out.push(fig12(scale, true));
    out.extend(fig13a(scale));
    out.push(fig13b(scale));
    out.push(fig14(scale, false));
    out.push(fig14(scale, true));
    out.push(fig15(scale));
    out.push(fig16(scale));
    out.push(fig17(scale, false));
    out.push(fig17(scale, true));
    out.push(table1(scale));
    out.push(cg_ablation(scale));
    out.push(cg_replay(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig09a_runs() {
        let t = fig09a(Scale::Smoke);
        assert_eq!(t.rows.len(), 3);
        // Larger grain must reduce compute calls.
        let calls: Vec<u64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(calls[2] < calls[0]);
    }

    #[test]
    fn smoke_table1_runs() {
        let t = table1(Scale::Smoke);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn smoke_cg_replay_runs() {
        // Also asserts bit-identical flux internally.
        let t = cg_replay(Scale::Smoke);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let wall: f64 = row[1].parse().unwrap();
            assert!(wall > 0.0);
        }
    }

    #[test]
    fn smoke_fig17a_bsp_loses() {
        let t = fig17(Scale::Smoke, false);
        for row in &t.rows {
            let bsp: f64 = row[1].parse().unwrap();
            let jsweep: f64 = row[2].parse().unwrap();
            assert!(bsp > jsweep, "BSP {bsp} should exceed JSweep {jsweep}");
        }
    }
}
