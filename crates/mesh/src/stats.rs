//! Decomposition quality metrics: load balance and communication volume.
//!
//! These are reported by the bench harness alongside scaling figures so
//! regressions in the partitioners (which would skew the scheduling
//! experiments) are visible.

use crate::patch::PatchSet;
use crate::SweepTopology;

/// Summary statistics of a patch decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionStats {
    /// Number of patches.
    pub num_patches: usize,
    /// Number of ranks.
    pub num_ranks: usize,
    /// Smallest patch size in cells.
    pub patch_cells_min: usize,
    /// Mean patch size in cells.
    pub patch_cells_mean: f64,
    /// Largest patch size in cells.
    pub patch_cells_max: usize,
    /// Largest rank load divided by mean rank load (1.0 = perfect).
    pub rank_imbalance: f64,
    /// Cell faces crossing patch boundaries (each counted once).
    pub patch_edge_cut: usize,
    /// Cell faces crossing rank boundaries (each counted once).
    pub rank_edge_cut: usize,
}

/// Compute [`PartitionStats`] for a decomposition of `mesh`.
pub fn partition_stats<T: SweepTopology + ?Sized>(ps: &PatchSet, mesh: &T) -> PartitionStats {
    let sizes: Vec<usize> = ps.patches().map(|p| ps.cells(p).len()).collect();
    let total: usize = sizes.iter().sum();
    let mut rank_load = vec![0usize; ps.num_ranks()];
    for p in ps.patches() {
        rank_load[ps.rank_of(p)] += ps.cells(p).len();
    }
    let mean_rank = total as f64 / ps.num_ranks() as f64;
    let max_rank = *rank_load.iter().max().unwrap() as f64;

    let mut patch_cut = 0usize;
    let mut rank_cut = 0usize;
    for c in 0..mesh.num_cells() {
        for nb in mesh.neighbors(c) {
            if nb > c {
                if ps.patch_of(c) != ps.patch_of(nb) {
                    patch_cut += 1;
                }
                if ps.rank_of(ps.patch_of(c)) != ps.rank_of(ps.patch_of(nb)) {
                    rank_cut += 1;
                }
            }
        }
    }

    PartitionStats {
        num_patches: ps.num_patches(),
        num_ranks: ps.num_ranks(),
        patch_cells_min: *sizes.iter().min().unwrap(),
        patch_cells_mean: total as f64 / sizes.len() as f64,
        patch_cells_max: *sizes.iter().max().unwrap(),
        rank_imbalance: max_rank / mean_rank,
        patch_edge_cut: patch_cut,
        rank_edge_cut: rank_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;
    use crate::structured::StructuredMesh;

    #[test]
    fn balanced_blocks_have_unit_imbalance() {
        let m = StructuredMesh::unit(8, 8, 8);
        let (mut ps, coords) = partition::structured_blocks(&m, (4, 4, 4));
        partition::distribute_sfc(&mut ps, &coords, 2, partition::SfcKind::Morton);
        let s = partition_stats(&ps, &m);
        assert_eq!(s.num_patches, 8);
        assert_eq!(s.patch_cells_min, 64);
        assert_eq!(s.patch_cells_max, 64);
        assert!((s.rank_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_cut_counts_block_interfaces() {
        // 2 blocks of 4x4x4 in an 8x4x4 mesh: the interface is 16 faces.
        let m = StructuredMesh::unit(8, 4, 4);
        let (ps, _) = partition::structured_blocks(&m, (4, 4, 4));
        let s = partition_stats(&ps, &m);
        assert_eq!(s.patch_edge_cut, 16);
    }

    #[test]
    fn rank_cut_is_at_most_patch_cut() {
        let m = StructuredMesh::unit(8, 8, 8);
        let (mut ps, coords) = partition::structured_blocks(&m, (2, 2, 2));
        partition::distribute_sfc(&mut ps, &coords, 4, partition::SfcKind::Hilbert);
        let s = partition_stats(&ps, &m);
        assert!(s.rank_edge_cut <= s.patch_edge_cut);
        assert!(s.rank_edge_cut > 0);
    }
}
