//! Runtime telemetry integration: the zero-cost-when-off seam between
//! the engine and `jsweep-obs`.
//!
//! Mirrors the `fault-inject` discipline exactly: with the `telemetry`
//! cargo feature **off** (the default), every type here still exists
//! — [`TelemetryHandle`] and [`Recorder`] become empty structs whose
//! methods are `#[inline(always)]` no-ops, `jsweep-obs` is not even
//! built, and the instrumented call sites compile to nothing. With the
//! feature **on**, hooks additionally gate on the runtime arming
//! atomic of the attached `jsweep_obs::Telemetry`: built-but-unarmed
//! telemetry costs one relaxed atomic load per hook.
//!
//! The engine threads one [`TelemetryHandle`] through
//! `RuntimeConfig`; every rank's master and workers obtain per-thread
//! [`Recorder`] lanes from it at launch, and epoch boundaries feed the
//! metrics registry. See `docs/observability.md` for the event
//! taxonomy and exporter formats.

#[cfg(feature = "telemetry")]
use crate::stats::RunStats;
#[cfg(feature = "telemetry")]
use std::sync::Arc;

/// Re-export of the observability crate (feature `telemetry` only),
/// so consumers reach `Telemetry`, exporters and metric types without
/// depending on `jsweep-obs` directly.
#[cfg(feature = "telemetry")]
pub use jsweep_obs as obs;

/// Typed event kinds (re-exported from `jsweep-obs`).
#[cfg(feature = "telemetry")]
pub use jsweep_obs::EventKind;

/// Typed event kinds (inert stub: the `telemetry` feature is off, so
/// recording calls referencing these compile to nothing).
#[cfg(not(feature = "telemetry"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum EventKind {
    Epoch,
    Fence,
    Claim,
    Compute,
    Pack,
    Route,
    PlanCompile,
    Send,
    Recv,
    Fault,
    CacheHit,
    CacheMiss,
}

/// A shareable reference to the process-wide telemetry (or to nothing:
/// the default handle is detached and records nowhere). Cloning is
/// cheap; every clone reaches the same `Telemetry`.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    #[cfg(feature = "telemetry")]
    inner: Option<Arc<jsweep_obs::Telemetry>>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        #[cfg(feature = "telemetry")]
        return write!(
            f,
            "TelemetryHandle({})",
            if self.inner.is_some() {
                "attached"
            } else {
                "detached"
            }
        );
        #[cfg(not(feature = "telemetry"))]
        write!(f, "TelemetryHandle(compiled out)")
    }
}

impl TelemetryHandle {
    /// Wrap a telemetry instance into a handle the runtime config can
    /// carry.
    #[cfg(feature = "telemetry")]
    pub fn attach(telemetry: Arc<jsweep_obs::Telemetry>) -> TelemetryHandle {
        TelemetryHandle {
            inner: Some(telemetry),
        }
    }

    /// The attached telemetry, if any.
    #[cfg(feature = "telemetry")]
    pub fn telemetry(&self) -> Option<&Arc<jsweep_obs::Telemetry>> {
        self.inner.as_ref()
    }

    /// Whether recording is attached *and* armed right now.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn armed(&self) -> bool {
        self.inner.as_ref().is_some_and(|t| t.is_armed())
    }

    /// Whether recording is attached and armed (compiled out: never).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn armed(&self) -> bool {
        false
    }

    /// Register a recording lane for one thread (`lane` 0 = master,
    /// `w + 1` = worker `w`) and hand out its single-writer recorder.
    #[cfg(feature = "telemetry")]
    pub fn recorder(&self, rank: u32, lane: u32) -> Recorder {
        Recorder {
            inner: self.inner.as_ref().map(|t| t.recorder(rank, lane)),
        }
    }

    /// Register a recording lane (compiled out: an inert recorder).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn recorder(&self, _rank: u32, _lane: u32) -> Recorder {
        Recorder {}
    }

    /// A start-of-span stamp on the shared driver lane's clock (0
    /// while detached/disarmed).
    #[cfg(feature = "telemetry")]
    pub fn global_now(&self) -> u64 {
        match self.inner.as_ref() {
            Some(t) if t.is_armed() => t.now_nanos(),
            _ => 0,
        }
    }

    /// A start-of-span stamp (compiled out: always 0).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn global_now(&self) -> u64 {
        0
    }

    /// Record a durational event on the shared driver lane (for
    /// threads that own no rank lane, e.g. a session driver compiling
    /// a plan).
    #[cfg(feature = "telemetry")]
    pub fn global_span(&self, kind: EventKind, t0: u64, a: u64, b: u64) {
        if let Some(t) = self.inner.as_ref() {
            t.global_span(kind, t0, a, b);
        }
    }

    /// Record a durational driver-lane event (compiled out: no-op).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn global_span(&self, _kind: EventKind, _t0: u64, _a: u64, _b: u64) {}

    /// Record an instant event on the shared driver lane.
    #[cfg(feature = "telemetry")]
    pub fn global_instant(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(t) = self.inner.as_ref() {
            t.global_instant(kind, a, b);
        }
    }

    /// Record an instant driver-lane event (compiled out: no-op).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn global_instant(&self, _kind: EventKind, _a: u64, _b: u64) {}

    /// Feed one epoch's per-rank stats into the metrics registry
    /// (epoch-boundary cold path; no-op while detached or disarmed).
    /// `wire` is the transport's own `(bytes sent, bytes received,
    /// frames received)` accounting, which includes wire framing where
    /// the backend has any.
    #[cfg(feature = "telemetry")]
    pub fn epoch_metrics(&self, rank: usize, stats: &RunStats, wire: (u64, u64, u64)) {
        let Some(t) = self.inner.as_ref() else {
            return;
        };
        if !t.is_armed() {
            return;
        }
        let m = t.metrics();
        m.describe("jsweep_epochs_total", "Epochs run, per rank.");
        m.describe(
            "jsweep_epoch_wall_seconds",
            "Wall time of one epoch on one rank.",
        );
        m.describe(
            "jsweep_compute_calls_total",
            "Patch-program compute invocations.",
        );
        m.describe(
            "jsweep_work_done_total",
            "Workload units completed (vertices for sweeps).",
        );
        m.describe("jsweep_streams_sent_total", "Streams sent to other ranks.");
        m.describe(
            "jsweep_streams_received_total",
            "Streams received from other ranks.",
        );
        m.describe(
            "jsweep_frames_sent_total",
            "Coalesced multi-stream frames sent to other ranks.",
        );
        m.describe(
            "jsweep_frames_received_total",
            "Frames received from other ranks.",
        );
        m.describe(
            "jsweep_bytes_sent_total",
            "Stream payload bytes sent to other ranks.",
        );
        m.describe(
            "jsweep_wire_bytes_sent",
            "Transport-level bytes pushed into the fabric (framing included).",
        );
        m.describe(
            "jsweep_wire_bytes_received",
            "Transport-level bytes received from the fabric.",
        );
        m.describe(
            "jsweep_wire_frames_received",
            "Transport-level frames received from the fabric.",
        );
        let lab = format!("{{rank=\"{rank}\"}}");
        m.counter(&format!("jsweep_epochs_total{lab}")).inc();
        m.histogram(
            &format!("jsweep_epoch_wall_seconds{lab}"),
            jsweep_obs::SECONDS_BUCKETS,
        )
        .observe(stats.wall_seconds);
        m.counter(&format!("jsweep_compute_calls_total{lab}"))
            .add(stats.compute_calls);
        m.counter(&format!("jsweep_work_done_total{lab}"))
            .add(stats.work_done);
        m.counter(&format!("jsweep_streams_sent_total{lab}"))
            .add(stats.streams_sent);
        m.counter(&format!("jsweep_streams_received_total{lab}"))
            .add(stats.streams_received);
        m.counter(&format!("jsweep_frames_sent_total{lab}"))
            .add(stats.frames_sent);
        m.counter(&format!("jsweep_frames_received_total{lab}"))
            .add(stats.frames_received);
        m.counter(&format!("jsweep_bytes_sent_total{lab}"))
            .add(stats.bytes_sent);
        m.gauge(&format!("jsweep_wire_bytes_sent{lab}"))
            .set(wire.0 as f64);
        m.gauge(&format!("jsweep_wire_bytes_received{lab}"))
            .set(wire.1 as f64);
        m.gauge(&format!("jsweep_wire_frames_received{lab}"))
            .set(wire.2 as f64);
    }

    /// Feed one epoch's stats (compiled out: no-op — the arguments
    /// are all references/scalars the caller already has).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn epoch_metrics(
        &self,
        _rank: usize,
        _stats: &crate::stats::RunStats,
        _wire: (u64, u64, u64),
    ) {
    }

    /// Observe one outgoing frame's payload size into the frame-bytes
    /// histogram (no-op while detached or disarmed).
    #[cfg(feature = "telemetry")]
    pub fn observe_frame_bytes(&self, rank: usize, bytes: usize) {
        let Some(t) = self.inner.as_ref() else {
            return;
        };
        if !t.is_armed() {
            return;
        }
        let m = t.metrics();
        m.describe(
            "jsweep_frame_bytes",
            "Payload size of one coalesced outgoing frame.",
        );
        m.histogram(
            &format!("jsweep_frame_bytes{{rank=\"{rank}\"}}"),
            jsweep_obs::BYTES_BUCKETS,
        )
        .observe(bytes as f64);
    }

    /// Observe one outgoing frame's size (compiled out: no-op).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn observe_frame_bytes(&self, _rank: usize, _bytes: usize) {}
}

/// One thread's event writer (see `jsweep_obs::Recorder`). With the
/// `telemetry` feature off this is an empty struct whose methods
/// compile to nothing.
pub struct Recorder {
    #[cfg(feature = "telemetry")]
    inner: Option<jsweep_obs::Recorder>,
}

impl Recorder {
    /// An inert recorder (detached).
    pub fn disabled() -> Recorder {
        Recorder {
            #[cfg(feature = "telemetry")]
            inner: None,
        }
    }

    /// Whether recording is live right now (one relaxed load).
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn armed(&self) -> bool {
        self.inner.as_ref().is_some_and(|r| r.armed())
    }

    /// Whether recording is live (compiled out: never).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn armed(&self) -> bool {
        false
    }

    /// A start-of-span stamp (0 while detached/disarmed; the matching
    /// [`Recorder::span`] then drops the event).
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.now())
    }

    /// A start-of-span stamp (compiled out: always 0).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn now(&self) -> u64 {
        0
    }

    /// Record a durational event `[t0, now]` on this lane.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn span(&self, kind: EventKind, t0: u64, a: u64, b: u64) {
        if let Some(r) = self.inner.as_ref() {
            r.span(kind, t0, a, b);
        }
    }

    /// Record a durational event (compiled out: no-op).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn span(&self, _kind: EventKind, _t0: u64, _a: u64, _b: u64) {}

    /// Record an instant event on this lane.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn instant(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(r) = self.inner.as_ref() {
            r.instant(kind, a, b);
        }
    }

    /// Record an instant event (compiled out: no-op).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn instant(&self, _kind: EventKind, _a: u64, _b: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handle_is_inert() {
        let h = TelemetryHandle::default();
        assert!(!h.armed());
        assert_eq!(h.global_now(), 0);
        let rec = h.recorder(0, 0);
        assert!(!rec.armed());
        assert_eq!(rec.now(), 0);
        // All no-ops, must not panic.
        rec.span(EventKind::Compute, 0, 0, 0);
        rec.instant(EventKind::Send, 0, 0);
        h.global_instant(EventKind::Fault, 0, 0);
        h.global_span(EventKind::PlanCompile, 0, 0, 0);
        h.observe_frame_bytes(0, 100);
        let stats = crate::stats::RunStats::default();
        h.epoch_metrics(0, &stats, (0, 0, 0));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn attached_handle_records_when_armed() {
        use std::sync::Arc;
        let t = Arc::new(jsweep_obs::Telemetry::new());
        let h = TelemetryHandle::attach(t.clone());
        assert!(!h.armed(), "not armed yet");
        t.arm();
        assert!(h.armed());
        let rec = h.recorder(3, 1);
        let t0 = rec.now();
        assert!(t0 > 0);
        rec.span(EventKind::Compute, t0, 9, 0);
        h.global_instant(EventKind::CacheHit, 1, 0);
        let lanes = t.snapshot();
        assert!(lanes
            .iter()
            .any(|l| l.rank == 3 && l.lane == 1 && l.events.len() == 1));
        assert!(lanes
            .iter()
            .any(|l| l.rank == jsweep_obs::GLOBAL_RANK && !l.events.is_empty()));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn epoch_metrics_feed_the_registry() {
        use std::sync::Arc;
        let t = Arc::new(jsweep_obs::Telemetry::new());
        let h = TelemetryHandle::attach(t.clone());
        t.arm();
        let stats = crate::stats::RunStats {
            wall_seconds: 0.25,
            compute_calls: 7,
            frames_sent: 3,
            bytes_sent: 1000,
            ..Default::default()
        };
        h.epoch_metrics(2, &stats, (1100, 900, 4));
        h.observe_frame_bytes(2, 512);
        let text = t.metrics().render_prometheus();
        assert!(text.contains("jsweep_epochs_total{rank=\"2\"} 1"), "{text}");
        assert!(
            text.contains("jsweep_compute_calls_total{rank=\"2\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("jsweep_wire_bytes_sent{rank=\"2\"} 1100"),
            "{text}"
        );
        assert!(
            text.contains("jsweep_frame_bytes_count{rank=\"2\"} 1"),
            "{text}"
        );
    }
}
