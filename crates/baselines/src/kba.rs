//! KBA (Koch–Baker–Alcouffe) wavefront sweep for structured meshes.
//!
//! KBA decomposes the 3-D mesh in a 2-D columnar fashion: ranks form a
//! `Px × Py` grid, each owning a full-z column split into z-chunks.
//! A sweep of one octant starts at a corner rank and pipelines across
//! the rank grid plane by plane; successive angles of the octant (and
//! then successive octants) flow through the same pipeline back to
//! back.
//!
//! Rather than re-deriving the classic analytic pipeline formula, we
//! *schedule* KBA through the same discrete-event machinery as JSweep:
//! the columnar decomposition with z-chunk patches and angle-major
//! LDCP priorities reproduces the KBA schedule exactly (each (chunk,
//! angle) block computes when its x/y/z predecessors are done), so the
//! efficiency we report contains the true fill/drain bubbles.

use jsweep_des::{simulate, DesResult, MachineModel, ProblemOptions, SimOptions, SweepProblem};
use jsweep_graph::PriorityStrategy;
use jsweep_mesh::{partition, PatchSet, StructuredMesh};
use jsweep_quadrature::QuadratureSet;

/// KBA layout: a `px × py` rank grid over an `nx × ny × nz` mesh with
/// `chunk_z` planes per pipeline stage.
#[derive(Debug, Clone)]
pub struct KbaLayout {
    /// Rank-grid extent along x.
    pub px: usize,
    /// Rank-grid extent along y.
    pub py: usize,
    /// Mesh planes per pipeline stage along the sweep axis z.
    pub chunk_z: usize,
}

impl KbaLayout {
    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.px * self.py
    }
}

/// Build the KBA decomposition of a structured mesh: block patches of
/// `(nx/px, ny/py, chunk_z)` cells, all patches of a column on the
/// same rank.
pub fn kba_patches(mesh: &StructuredMesh, layout: &KbaLayout) -> PatchSet {
    let (nx, ny, nz) = mesh.dims();
    assert!(
        nx % layout.px == 0 && ny % layout.py == 0,
        "KBA needs an even split"
    );
    let bx = nx / layout.px;
    let by = ny / layout.py;
    let bz = layout.chunk_z.min(nz);
    let (mut ps, coords) = partition::structured_blocks(mesh, (bx, by, bz));
    // Column (i, j) -> rank j*px + i.
    let rank_of: Vec<u32> = coords
        .iter()
        .map(|&(i, j, _k)| (j as usize * layout.px + i as usize) as u32)
        .collect();
    ps.distribute(rank_of, layout.ranks());
    ps
}

/// Simulate one KBA sweep iteration.
///
/// `workers_per_rank` models the threaded variant (classic KBA uses
/// one core per rank: pass 1).
pub fn simulate_kba(
    mesh: &StructuredMesh,
    quadrature: &QuadratureSet,
    layout: &KbaLayout,
    machine_template: &MachineModel,
) -> DesResult {
    let ps = kba_patches(mesh, layout);
    let prob = SweepProblem::build(
        mesh,
        ps,
        quadrature,
        &ProblemOptions {
            vertex_strategy: PriorityStrategy::Ldcp,
            patch_strategy: PriorityStrategy::Ldcp,
            share_octant_dags: true,
            check_cycles: false,
        },
    );
    let mut machine = machine_template.clone();
    machine.ranks = layout.ranks();
    // KBA computes a whole block per message round: the clustering
    // grain is the block size.
    let (nx, ny, _) = mesh.dims();
    let block = (nx / layout.px) * (ny / layout.py) * layout.chunk_z;
    simulate(
        &prob,
        &machine,
        &SimOptions {
            grain: block.max(1),
            record_traces: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kba_patches_form_columns() {
        let m = StructuredMesh::unit(8, 8, 8);
        let layout = KbaLayout {
            px: 2,
            py: 2,
            chunk_z: 2,
        };
        let ps = kba_patches(&m, &layout);
        assert_eq!(ps.num_ranks(), 4);
        // 2x2 columns x 4 z-chunks = 16 patches, 4 per rank.
        assert_eq!(ps.num_patches(), 16);
        for r in 0..4 {
            assert_eq!(ps.patches_on_rank(r).len(), 4, "rank {r}");
        }
    }

    #[test]
    fn kba_completes_sweep() {
        let m = StructuredMesh::unit(8, 8, 8);
        let q = QuadratureSet::sn(2);
        let layout = KbaLayout {
            px: 2,
            py: 2,
            chunk_z: 2,
        };
        let r = simulate_kba(&m, &q, &layout, &MachineModel::cluster(4, 1));
        assert_eq!(r.vertices, (512 * 8) as u64);
        assert!(r.time > 0.0);
    }

    #[test]
    fn kba_scales_with_rank_grid() {
        // Strong scaling 1x1 -> 4x4 must speed the sweep up.
        let m = StructuredMesh::unit(16, 16, 16);
        let q = QuadratureSet::sn(2);
        let small = simulate_kba(
            &m,
            &q,
            &KbaLayout {
                px: 1,
                py: 1,
                chunk_z: 4,
            },
            &MachineModel::cluster(1, 1),
        );
        let large = simulate_kba(
            &m,
            &q,
            &KbaLayout {
                px: 4,
                py: 4,
                chunk_z: 4,
            },
            &MachineModel::cluster(1, 1),
        );
        assert!(
            large.time < small.time,
            "16 ranks ({}) not faster than 1 ({})",
            large.time,
            small.time
        );
    }

    #[test]
    #[should_panic(expected = "even split")]
    fn uneven_split_rejected() {
        let m = StructuredMesh::unit(7, 8, 8);
        kba_patches(
            &m,
            &KbaLayout {
                px: 2,
                py: 2,
                chunk_z: 2,
            },
        );
    }
}
