//! Coarse-graph replay benchmark (paper §V-E).
//!
//! Measures the JSweep parallel solver on the quickstart-scale problem
//! twice — `SnConfig::coarsen = false` (every iteration on the fine
//! DAG-driven path) vs `true` (iteration 1 records, iterations ≥ 2
//! replay the coarsened task graph) — and compares the *replay*
//! iterations (≥ 2) on wall time and graph-op (scheduling) seconds.
//! The flux must be bit-identical between the two paths; the bench
//! asserts it.
//!
//! A machine-readable baseline is written to `BENCH_coarse_replay.json`
//! at the workspace root in every mode (CI fails if the file is
//! missing after the `cargo bench -- --test` smoke pass); only full
//! mode overwrites it with numbers worth comparing across PRs.

use jsweep_bench::setups::{replay_scenario, replay_tail_mean as mean_tail, ReplayScenario};
use jsweep_core::stats::Category;

struct Scenario {
    n: usize,
    patch: usize,
    ranks: usize,
    iterations: usize,
    grain: usize,
    runs: usize,
}

impl Scenario {
    /// The shared bench/figures setup (`tolerance < 0`: both variants
    /// run exactly `iterations` sweeps, so the tails compare 1:1).
    fn build(&self) -> ReplayScenario {
        replay_scenario(self.n, self.patch, self.ranks, self.iterations, self.grain)
    }
}

struct Numbers {
    fine_iter_wall_s: f64,
    coarse_iter_wall_s: f64,
    fine_graph_op_s: f64,
    coarse_graph_op_s: f64,
    coarse_build_s: f64,
    replay_iterations: usize,
}

fn measure(sc: &Scenario) -> Numbers {
    // Best-of-N independently per variant and metric: each side gets
    // its least-noisy sample, so neither baseline is biased by the
    // other variant's jitter within the same run.
    let mut nums = Numbers {
        fine_iter_wall_s: f64::INFINITY,
        coarse_iter_wall_s: f64::INFINITY,
        fine_graph_op_s: f64::INFINITY,
        coarse_graph_op_s: f64::INFINITY,
        coarse_build_s: f64::INFINITY,
        replay_iterations: sc.iterations - 1,
    };
    let scenario = sc.build();
    for _ in 0..sc.runs {
        let fine = scenario.solve(false);
        let coarse = scenario.solve(true);
        assert_eq!(
            fine.phi, coarse.phi,
            "coarse replay must be bit-identical to the fine path"
        );
        assert_eq!(fine.stats.len(), sc.iterations);
        assert_eq!(coarse.stats.len(), sc.iterations);
        nums.fine_iter_wall_s = nums
            .fine_iter_wall_s
            .min(mean_tail(&fine.stats, |s| s.wall_seconds));
        nums.coarse_iter_wall_s = nums
            .coarse_iter_wall_s
            .min(mean_tail(&coarse.stats, |s| s.wall_seconds));
        nums.fine_graph_op_s = nums.fine_graph_op_s.min(mean_tail(&fine.stats, |s| {
            s.category_seconds(Category::GraphOp)
        }));
        nums.coarse_graph_op_s = nums.coarse_graph_op_s.min(mean_tail(&coarse.stats, |s| {
            s.category_seconds(Category::GraphOp)
        }));
        nums.coarse_build_s = nums.coarse_build_s.min(coarse.coarse_build_seconds);
    }
    nums
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // Full mode is the quickstart problem (16³ cells, 4³-cell patches,
    // 2 ranks × 2 workers, S2) at a grain fine enough that per-vertex
    // scheduling is a visible share of iteration time.
    let sc = if test_mode {
        Scenario {
            n: 8,
            patch: 4,
            ranks: 2,
            iterations: 3,
            grain: 16,
            runs: 1,
        }
    } else {
        Scenario {
            n: 16,
            patch: 4,
            ranks: 2,
            iterations: 9,
            grain: 16,
            runs: 5,
        }
    };
    let nums = measure(&sc);
    let wall_speedup = nums.fine_iter_wall_s / nums.coarse_iter_wall_s;
    let graph_op_speedup = nums.fine_graph_op_s / nums.coarse_graph_op_s;

    println!(
        "coarse_replay fine iteration      time: {:>10.3} ms  (graph-op {:.3} ms)",
        nums.fine_iter_wall_s * 1e3,
        nums.fine_graph_op_s * 1e3,
    );
    println!(
        "coarse_replay replay iteration    time: {:>10.3} ms  (graph-op {:.3} ms)",
        nums.coarse_iter_wall_s * 1e3,
        nums.coarse_graph_op_s * 1e3,
    );
    println!(
        "coarse_replay plan build          time: {:>10.3} ms  (one-off)",
        nums.coarse_build_s * 1e3
    );
    println!("coarse_replay iteration speedup (fine / coarse): {wall_speedup:.2}x wall, {graph_op_speedup:.2}x graph-op");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"coarse_replay\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"problem\": {{\n",
            "    \"cells\": {cells},\n",
            "    \"patch_cells\": {patch_cells},\n",
            "    \"ranks\": {ranks},\n",
            "    \"angles\": 8,\n",
            "    \"grain\": {grain},\n",
            "    \"replay_iterations\": {iters}\n",
            "  }},\n",
            "  \"fine_iter_wall_seconds\": {fw:.6},\n",
            "  \"coarse_iter_wall_seconds\": {cw:.6},\n",
            "  \"wall_speedup\": {ws:.3},\n",
            "  \"fine_iter_graph_op_seconds\": {fg:.6},\n",
            "  \"coarse_iter_graph_op_seconds\": {cg:.6},\n",
            "  \"graph_op_speedup\": {gs:.3},\n",
            "  \"coarse_build_seconds\": {cb:.6},\n",
            "  \"phi_bit_identical\": true\n",
            "}}\n"
        ),
        mode = if test_mode { "test" } else { "full" },
        cells = sc.n * sc.n * sc.n,
        patch_cells = sc.patch * sc.patch * sc.patch,
        ranks = sc.ranks,
        grain = sc.grain,
        iters = nums.replay_iterations,
        fw = nums.fine_iter_wall_s,
        cw = nums.coarse_iter_wall_s,
        ws = wall_speedup,
        fg = nums.fine_graph_op_s,
        cg = nums.coarse_graph_op_s,
        gs = graph_op_speedup,
        cb = nums.coarse_build_s,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_coarse_replay.json");
    if test_mode && out.exists() {
        // Smoke numbers are not a baseline: keep the committed full-
        // mode file, only prove the bench still runs end to end.
        println!("test mode: committed baseline left in place");
    } else {
        std::fs::write(&out, json).expect("write BENCH_coarse_replay.json");
        println!("baseline written to {}", out.display());
    }
}
