//! The Kobayashi shielding benchmark (the JSNT-S evaluation problem).
//!
//! ```text
//! cargo run --release --example kobayashi [n] [ranks]
//! ```
//!
//! Solves the Kobayashi problem-1 geometry (corner source, void duct,
//! absorbing shield) on an `n³` mesh with the JSweep parallel solver
//! and prints the flux along the duct centreline — the quantity the
//! benchmark tabulates — comparing the parallel result against the
//! serial golden solver.

use jsweep::prelude::*;
use jsweep::transport::kobayashi;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(20);
    let ranks: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(2);

    println!("Kobayashi problem 1 (50% scattering) on a {n}³ mesh, {ranks} ranks");
    let problem = kobayashi::kobayashi(n, 0.5);
    let mesh = Arc::new(problem.mesh);
    let materials = Arc::new(problem.materials);
    let quad = QuadratureSet::sn(4);
    let config = SnConfig {
        max_iterations: 30,
        tolerance: 1e-7,
        grain: 64,
        kernel: KernelKind::DiamondDifference,
        workers_per_rank: 2,
        ..Default::default()
    };

    let t0 = std::time::Instant::now();
    let serial = solve_serial(mesh.as_ref(), &quad, &materials, &config);
    let t_serial = t0.elapsed().as_secs_f64();

    let patch = (n / 4).max(2);
    let patches = decompose_structured(&mesh, (patch, patch, patch), ranks);
    let sweep_problem = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        },
    ));
    let t0 = std::time::Instant::now();
    let parallel = solve_parallel(mesh.clone(), sweep_problem, &quad, materials, &config);
    let t_parallel = t0.elapsed().as_secs_f64();

    let max_rel = serial
        .phi
        .iter()
        .zip(&parallel.phi)
        .map(|(a, b)| (a - b).abs() / a.abs().max(1e-30))
        .fold(0.0f64, f64::max);
    println!(
        "serial {t_serial:.2}s / parallel {t_parallel:.2}s; max relative flux difference {max_rel:.2e}"
    );
    assert!(
        max_rel < 1e-9,
        "parallel flux deviates from the golden result"
    );

    println!("\nflux along the duct centreline (y=z=5 cm):");
    println!("{:>8}  {:>12}", "x (cm)", "phi");
    let (j, k) = (0, 0); // first cell row holds the duct at this resolution
    for i in 0..n {
        let c = mesh.cell_id(i, j, k);
        let x = (i as f64 + 0.5) * 100.0 / n as f64;
        println!("{x:8.1}  {:12.6e}", parallel.phi[c]);
    }
    println!(
        "\niterations: {} (residual {:.2e})",
        parallel.iterations, parallel.residual
    );
}
