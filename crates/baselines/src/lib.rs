//! Comparator implementations for the paper's evaluation.
//!
//! Three baselines appear in §VI:
//!
//! * **KBA** (Denovo-style, Table I): the classic
//!   Koch–Baker–Alcouffe columnar wavefront sweep for structured
//!   meshes — [`kba`];
//! * **BSP data-driven sweeps** (the "JASMIN"/"JAUMIN" curves of
//!   Fig. 17): JAxMIN's bulk-synchronous execution of the same DAG —
//!   every superstep, each patch computes everything currently ready,
//!   then a global halo exchange + barrier — [`bsp`];
//! * **PSD-b** (Colomer et al., Table I): a dedicated single-level
//!   data-driven sweep with one subdomain per process and no framework
//!   overhead — [`psd`].
//!
//! All run in the same virtual-time [`jsweep_des::MachineModel`] as
//! JSweep itself, so comparisons isolate the *scheduling* differences.

#![deny(missing_docs)]

pub mod bsp;
pub mod kba;
pub mod psd;

pub use bsp::simulate_bsp;
pub use kba::simulate_kba;
pub use psd::simulate_psd;
