//! Particle tracing on the patch-program abstraction.
//!
//! ```text
//! cargo run --release --example particle_trace [n] [particles] [ranks]
//! ```
//!
//! The paper's conclusion notes that particle trace is implemented as
//! a second data-driven component on the same abstraction. This
//! example launches a beam of particles from the domain centre in
//! random directions, traces them through a structured mesh across
//! patch and rank boundaries, and compares against the serial golden
//! tracer. Unlike sweeps, a rank's workload is unknowable in advance,
//! so the runtime uses the Dijkstra–Safra termination protocol.

use jsweep::mesh::partition;
use jsweep::prelude::*;
use jsweep::transport::trace::{trace_parallel, trace_serial, Particle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(16);
    let count: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(5000);
    let ranks: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(2);

    let mesh = Arc::new(StructuredMesh::unit(n, n, n));
    let patches = Arc::new(partition::decompose_structured(&mesh, (4, 4, 4), ranks));
    println!(
        "tracing {count} particles through a {n}³ mesh ({} patches, {ranks} ranks)",
        patches.num_patches()
    );

    // An isotropic point burst at the centre.
    let mut rng = StdRng::seed_from_u64(2026);
    let centre = [n as f64 / 2.0; 3];
    let particles: Vec<Particle> = (0..count)
        .map(|_| {
            let dir = loop {
                let d: [f64; 3] = [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ];
                let n2: f64 = d.iter().map(|x| x * x).sum();
                if n2 > 1e-3 && n2 <= 1.0 {
                    let norm = n2.sqrt();
                    break [d[0] / norm, d[1] / norm, d[2] / norm];
                }
            };
            Particle {
                pos: centre,
                dir,
                remaining: rng.gen_range(0.5 * n as f64..2.0 * n as f64),
            }
        })
        .collect();

    let t0 = std::time::Instant::now();
    let serial = trace_serial(&mesh, &particles);
    let t_serial = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let (parallel, stats) = trace_parallel(mesh.clone(), patches, &particles, 2);
    let t_parallel = t0.elapsed().as_secs_f64();

    let max_rel = serial
        .iter()
        .zip(&parallel)
        .map(|(a, b)| (a - b).abs() / a.abs().max(1e-12))
        .fold(0.0f64, f64::max);
    println!(
        "serial {t_serial:.3}s / parallel {t_parallel:.3}s; max relative tally difference {max_rel:.2e}"
    );
    assert!(max_rel < 1e-9);

    let migrations: u64 = stats.iter().map(|s| s.streams_sent + s.streams_local).sum();
    let advanced: u64 = stats.iter().map(|s| s.work_done).sum();
    println!("particle advances {advanced}, patch migrations {migrations}");

    // Radial tally profile (track length per shell).
    let shells = 8;
    let mut shell_tally = vec![0.0f64; shells];
    for (c, track) in parallel.iter().enumerate() {
        let p = mesh.cell_centroid(c);
        let r = (0..3)
            .map(|ax| (p[ax] - centre[ax]).powi(2))
            .sum::<f64>()
            .sqrt();
        let s = ((r / (n as f64 / 2.0)) * shells as f64) as usize;
        shell_tally[s.min(shells - 1)] += track;
    }
    println!("\ntrack length per radial shell:");
    for (s, v) in shell_tally.iter().enumerate() {
        println!("  shell {s}: {v:12.2}");
    }
}
