//! The Kobayashi benchmark family (JSNT-S evaluation problems).
//!
//! Kobayashi's 3-D radiation-transport benchmarks consist of a cubic
//! domain with a small source region at the corner, a low-density void
//! duct, and an absorbing shield. The paper runs the original problem
//! on a 400³ mesh ("Kobayashi-400") and a proportionally refined 800³
//! variant ("Kobayashi-800") with 320 angular directions.
//!
//! This module reproduces the *geometry family* at configurable
//! resolution: a `n³` cube of physical size 100 cm with
//!
//! * **source** region `[0,10]³` cm (σ_t = 0.1, isotropic unit source);
//! * **void duct** `[10,100]×[0,10]×[0,10]` cm (σ_t = 1e-4);
//! * **shield** elsewhere (σ_t = 0.1, with configurable scattering —
//!   Kobayashi problem 1 has both pure-absorber and 50%-scattering
//!   variants).
//!
//! Cross-section magnitudes follow the published benchmark; the duct
//! geometry is the problem-1 straight duct.

use crate::xs::{Material, MaterialSet};
use jsweep_mesh::{StructuredMesh, SweepTopology};

/// Material id of the source region (lower corner cube).
pub const MAT_SOURCE: u16 = 0;
/// Material id of the void duct running along the x axis.
pub const MAT_VOID: u16 = 1;
/// Material id of the absorbing shield filling the rest of the cube.
pub const MAT_SHIELD: u16 = 2;

/// A configured Kobayashi problem.
pub struct Kobayashi {
    /// The mesh (cube of `n³` cells, 100 cm on a side).
    pub mesh: StructuredMesh,
    /// Material data + per-cell map.
    pub materials: MaterialSet,
}

/// Build the Kobayashi problem on an `n³` mesh.
///
/// `scattering_ratio` is the scattering fraction `σ_s/σ_t` in the
/// source and shield regions (0.0 = pure absorber variant, 0.5 =
/// 50%-scattering variant).
pub fn kobayashi(n: usize, scattering_ratio: f64) -> Kobayashi {
    assert!(n >= 2, "mesh too small for the geometry");
    assert!((0.0..1.0).contains(&scattering_ratio));
    let h = 100.0 / n as f64;
    let mesh = StructuredMesh::new(n, n, n, [0.0; 3], [h; 3]);

    let sigma = 0.1;
    let materials = vec![
        // Source region: unit source.
        Material {
            sigma_t: vec![sigma],
            sigma_s: vec![sigma * scattering_ratio],
            source: vec![1.0],
        },
        // Void duct.
        Material {
            sigma_t: vec![1e-4],
            sigma_s: vec![0.0],
            source: vec![0.0],
        },
        // Shield.
        Material {
            sigma_t: vec![sigma],
            sigma_s: vec![sigma * scattering_ratio],
            source: vec![0.0],
        },
    ];

    let mut map = vec![MAT_SHIELD; mesh.num_cells()];
    for (c, m) in map.iter_mut().enumerate() {
        let p = mesh.cell_centroid(c);
        *m = classify(p);
    }
    Kobayashi {
        materials: MaterialSet::new(materials, map),
        mesh,
    }
}

/// Region of a point in the 100 cm Kobayashi cube.
pub fn classify(p: [f64; 3]) -> u16 {
    let in_source = p[0] <= 10.0 && p[1] <= 10.0 && p[2] <= 10.0;
    if in_source {
        return MAT_SOURCE;
    }
    let in_duct = p[0] > 10.0 && p[1] <= 10.0 && p[2] <= 10.0;
    if in_duct {
        return MAT_VOID;
    }
    MAT_SHIELD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_serial, SnConfig};
    use jsweep_quadrature::QuadratureSet;

    #[test]
    fn regions_cover_expected_fractions() {
        let k = kobayashi(10, 0.0);
        let mut counts = [0usize; 3];
        for c in 0..k.mesh.num_cells() {
            counts[k.materials.material_index(c) as usize] += 1;
        }
        assert_eq!(counts[MAT_SOURCE as usize], 1); // 10cm cube of 1000 cells at n=10
        assert_eq!(counts[MAT_VOID as usize], 9); // duct: 9 cells along x
        assert_eq!(counts.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn flux_streams_down_the_duct() {
        // The void duct must carry flux much further than the shield:
        // at equal distance from the source, duct flux >> shield flux.
        let k = kobayashi(10, 0.0);
        let quad = QuadratureSet::sn(4);
        let sol = solve_serial(
            &k.mesh,
            &quad,
            &k.materials,
            &SnConfig {
                max_iterations: 4,
                ..Default::default()
            },
        );
        let duct_cell = k.mesh.cell_id(7, 0, 0); // inside the duct
        let shield_cell = k.mesh.cell_id(0, 7, 0); // same distance, shield
        assert!(
            sol.phi[duct_cell] > 5.0 * sol.phi[shield_cell],
            "duct {} vs shield {}",
            sol.phi[duct_cell],
            sol.phi[shield_cell]
        );
    }

    #[test]
    fn flux_decays_away_from_source() {
        let k = kobayashi(8, 0.5);
        let quad = QuadratureSet::sn(2);
        let sol = solve_serial(
            &k.mesh,
            &quad,
            &k.materials,
            &SnConfig {
                max_iterations: 10,
                ..Default::default()
            },
        );
        let near = k.mesh.cell_id(0, 0, 0);
        let mid = k.mesh.cell_id(3, 3, 3);
        let far = k.mesh.cell_id(7, 7, 7);
        assert!(sol.phi[near] > sol.phi[mid]);
        assert!(sol.phi[mid] > sol.phi[far]);
        assert!(sol.phi[far] > 0.0);
    }

    #[test]
    fn scattering_raises_the_flux() {
        let quad = QuadratureSet::sn(2);
        let cfg = SnConfig {
            max_iterations: 20,
            tolerance: 1e-8,
            ..Default::default()
        };
        let pure = kobayashi(6, 0.0);
        let scat = kobayashi(6, 0.5);
        let phi_pure = solve_serial(&pure.mesh, &quad, &pure.materials, &cfg).phi;
        let phi_scat = solve_serial(&scat.mesh, &quad, &scat.materials, &cfg).phi;
        let sum_pure: f64 = phi_pure.iter().sum();
        let sum_scat: f64 = phi_scat.iter().sum();
        assert!(sum_scat > sum_pure, "scattering must increase total flux");
    }
}
