//! Observability for the JSweep runtime: lock-free span tracing, a
//! metrics registry, and Chrome-trace / Prometheus exporters.
//!
//! The design goal is the same zero-cost-when-off discipline as the
//! `fault-inject` hooks: consumers compile this crate in only behind
//! the `telemetry` cargo feature of `jsweep-core`, and even then every
//! recording call first checks one runtime atomic (**arming**) — a
//! built-but-unarmed [`Telemetry`] costs one relaxed load per hook.
//!
//! * [`Telemetry`] — the process-wide handle: arming switch, shared
//!   monotonic clock, the set of recorded lanes, and the
//!   [`MetricsRegistry`];
//! * [`Recorder`] — one thread's writer onto its own [`SpanRing`]
//!   lane (single-writer, wait-free push);
//! * [`EventKind`] / [`Event`] — the typed event taxonomy;
//! * [`chrome`] — Chrome trace-event JSON export (Perfetto-loadable);
//! * [`metrics`] — counters / gauges / fixed-bucket histograms with
//!   Prometheus text exposition.

#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod ring;

pub use chrome::TraceEvent;
pub use event::{Event, EventKind, EVENT_KINDS};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, BYTES_BUCKETS, SECONDS_BUCKETS};
pub use ring::SpanRing;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The `rank` claimed by the process-wide driver lane (events recorded
/// through [`Telemetry::global_span`] / [`Telemetry::global_instant`]
/// from threads that are not part of any rank, e.g. a session driver).
pub const GLOBAL_RANK: u32 = u32::MAX;

/// Default per-lane ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// One recorded lane: a `(rank, lane)` identity plus its ring.
struct Lane {
    rank: u32,
    lane: u32,
    ring: SpanRing,
}

/// A drained copy of one lane, for exporters and tests.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Owning rank (or [`GLOBAL_RANK`]).
    pub rank: u32,
    /// Lane within the rank: 0 = master, `w + 1` = worker `w`.
    pub lane: u32,
    /// Events lost to ring wrap-around on this lane.
    pub dropped: u64,
    /// Held events, oldest first.
    pub events: Vec<Event>,
}

/// The process-wide telemetry handle (see the [module docs](self)).
///
/// Construction does not start recording: call [`Telemetry::arm`]
/// first. Disarmed, every recording hook is one relaxed atomic load.
pub struct Telemetry {
    armed: AtomicBool,
    origin: Instant,
    ring_capacity: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    /// The shared driver lane for sporadic events from threads that
    /// own no lane; writes serialise on this lock (cold paths only).
    global: Mutex<Arc<Lane>>,
    metrics: MetricsRegistry,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Telemetry with the default per-lane ring capacity.
    pub fn new() -> Telemetry {
        Telemetry::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Telemetry whose lanes hold `capacity` events each (rounded up
    /// to a power of two).
    pub fn with_ring_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            armed: AtomicBool::new(false),
            origin: Instant::now(),
            ring_capacity: capacity,
            lanes: Mutex::new(Vec::new()),
            global: Mutex::new(Arc::new(Lane {
                rank: GLOBAL_RANK,
                lane: 0,
                ring: SpanRing::new(capacity),
            })),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Start recording. Hooks observe this with a relaxed load, so
    /// events begin appearing "soon" on already-running threads.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Stop recording (already-recorded events stay exportable).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Nanoseconds elapsed on this telemetry's shared monotonic clock
    /// (never 0, so 0 can mean "no stamp").
    pub fn now_nanos(&self) -> u64 {
        (self.origin.elapsed().as_nanos() as u64).max(1)
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Register a new lane and hand out its single-writer recorder.
    /// Call once per thread per launch; re-registering the same
    /// `(rank, lane)` (e.g. after a universe relaunch) starts a fresh
    /// ring whose events merge into the same exported timeline.
    pub fn recorder(self: &Arc<Self>, rank: u32, lane: u32) -> Recorder {
        let l = Arc::new(Lane {
            rank,
            lane,
            ring: SpanRing::new(self.ring_capacity),
        });
        self.lanes.lock().unwrap().push(l.clone());
        Recorder {
            shared: self.clone(),
            lane: l,
        }
    }

    /// Record a durational event on the shared driver lane (cold
    /// paths from threads that own no lane; writes serialise on a
    /// lock). `t0` is a stamp from [`Telemetry::now_nanos`]; no-op
    /// while disarmed or when `t0 == 0`.
    pub fn global_span(&self, kind: EventKind, t0: u64, a: u64, b: u64) {
        if !self.is_armed() || t0 == 0 {
            return;
        }
        let t1 = self.now_nanos();
        let g = self.global.lock().unwrap();
        g.ring.push(Event { kind, t0, t1, a, b });
    }

    /// Record an instant event on the shared driver lane.
    pub fn global_instant(&self, kind: EventKind, a: u64, b: u64) {
        if !self.is_armed() {
            return;
        }
        let t = self.now_nanos();
        let g = self.global.lock().unwrap();
        g.ring.push(Event {
            kind,
            t0: t,
            t1: t,
            a,
            b,
        });
    }

    /// Snapshot every lane's currently held events (the global driver
    /// lane included, when non-empty).
    pub fn snapshot(&self) -> Vec<LaneSnapshot> {
        let mut out: Vec<LaneSnapshot> = self
            .lanes
            .lock()
            .unwrap()
            .iter()
            .map(|l| LaneSnapshot {
                rank: l.rank,
                lane: l.lane,
                dropped: l.ring.dropped(),
                events: l.ring.snapshot(),
            })
            .collect();
        let g = self.global.lock().unwrap();
        if g.ring.pushed() > 0 {
            out.push(LaneSnapshot {
                rank: g.rank,
                lane: g.lane,
                dropped: g.ring.dropped(),
                events: g.ring.snapshot(),
            });
        }
        out
    }

    /// Snapshot and convert to sorted Chrome trace events.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        chrome::trace_events(&self.snapshot())
    }

    /// Snapshot and render the whole trace as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        chrome::to_json(&self.trace_events())
    }
}

/// One thread's writer onto its own lane. **Single writer**: a
/// recorder must not be shared across threads mid-use (it is `Send`,
/// so it can be *moved* to the thread that will write with it).
pub struct Recorder {
    shared: Arc<Telemetry>,
    lane: Arc<Lane>,
}

impl Recorder {
    /// Whether recording is currently armed (one relaxed load).
    #[inline]
    pub fn armed(&self) -> bool {
        self.shared.is_armed()
    }

    /// A start-of-span stamp: nanoseconds on the shared clock while
    /// armed, 0 while disarmed (so the matching [`Recorder::span`]
    /// knows to drop the event).
    #[inline]
    pub fn now(&self) -> u64 {
        if self.armed() {
            self.shared.now_nanos()
        } else {
            0
        }
    }

    /// Record a durational event started at `t0` (a stamp from
    /// [`Recorder::now`]) and ending now. No-op while disarmed or when
    /// `t0 == 0` (armed mid-span).
    #[inline]
    pub fn span(&self, kind: EventKind, t0: u64, a: u64, b: u64) {
        if !self.armed() || t0 == 0 {
            return;
        }
        let t1 = self.shared.now_nanos();
        self.lane.ring.push(Event { kind, t0, t1, a, b });
    }

    /// Record an instant event (occurring now). No-op while disarmed.
    #[inline]
    pub fn instant(&self, kind: EventKind, a: u64, b: u64) {
        if !self.armed() {
            return;
        }
        let t = self.shared.now_nanos();
        self.lane.ring.push(Event {
            kind,
            t0: t,
            t1: t,
            a,
            b,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_records_nothing_and_armed_records() {
        let t = Arc::new(Telemetry::new());
        let rec = t.recorder(0, 1);
        let t0 = rec.now();
        assert_eq!(t0, 0, "disarmed stamps are 0");
        rec.span(EventKind::Compute, t0, 1, 2);
        rec.instant(EventKind::Send, 3, 4);
        assert!(t.snapshot().iter().all(|l| l.events.is_empty()));

        t.arm();
        let t0 = rec.now();
        assert!(t0 > 0);
        rec.span(EventKind::Compute, t0, 1, 2);
        rec.instant(EventKind::Send, 3, 4);
        let lanes = t.snapshot();
        let lane = lanes.iter().find(|l| l.lane == 1).unwrap();
        assert_eq!(lane.events.len(), 2);
        assert_eq!(lane.events[0].kind, EventKind::Compute);
        assert!(lane.events[0].t1 >= lane.events[0].t0);
        assert_eq!(lane.events[1].kind, EventKind::Send);
        assert_eq!(lane.events[1].t0, lane.events[1].t1);
    }

    #[test]
    fn arming_mid_span_drops_the_half_stamped_event() {
        let t = Arc::new(Telemetry::new());
        let rec = t.recorder(0, 0);
        let t0 = rec.now(); // disarmed: 0
        t.arm();
        rec.span(EventKind::Epoch, t0, 0, 0);
        assert!(t.snapshot().iter().all(|l| l.events.is_empty()));
    }

    #[test]
    fn global_lane_collects_driver_events() {
        let t = Telemetry::new();
        t.arm();
        t.global_instant(EventKind::CacheMiss, 7, 0);
        let t0 = t.now_nanos();
        t.global_span(EventKind::PlanCompile, t0, 7, 0);
        let lanes = t.snapshot();
        let g = lanes.iter().find(|l| l.rank == GLOBAL_RANK).unwrap();
        assert_eq!(g.events.len(), 2);
        assert_eq!(g.events[0].kind, EventKind::CacheMiss);
        assert_eq!(g.events[1].kind, EventKind::PlanCompile);
    }

    #[test]
    fn chrome_trace_end_to_end() {
        let t = Arc::new(Telemetry::new());
        t.arm();
        let rec = t.recorder(0, 1);
        let t0 = rec.now();
        rec.span(EventKind::Compute, t0, 5, 0);
        let json = t.chrome_trace();
        assert!(json.contains("\"compute\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn clock_is_monotone_nonzero() {
        let t = Telemetry::new();
        let a = t.now_nanos();
        let b = t.now_nanos();
        assert!(a >= 1);
        assert!(b >= a);
    }
}
