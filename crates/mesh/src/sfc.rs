//! Space-filling curves for structured-mesh domain decomposition.
//!
//! JAxMIN distributes structured patches along Morton or Hilbert orders
//! (paper §V-A). Both curves map a 3-D lattice index to a 1-D key such
//! that contiguous key ranges form compact blocks; Hilbert additionally
//! guarantees that consecutive keys are face-adjacent.

/// Interleave the low `bits` bits of `x`, `y`, `z` into a Morton key
/// (`x` in the least-significant position of each triple).
pub fn morton3(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    assert!(bits <= 21, "morton3 supports at most 21 bits per axis");
    let mut key = 0u64;
    for b in 0..bits {
        key |= (((x >> b) & 1) as u64) << (3 * b);
        key |= (((y >> b) & 1) as u64) << (3 * b + 1);
        key |= (((z >> b) & 1) as u64) << (3 * b + 2);
    }
    key
}

/// Inverse of [`morton3`].
pub fn morton3_inv(key: u64, bits: u32) -> (u32, u32, u32) {
    let mut x = 0u32;
    let mut y = 0u32;
    let mut z = 0u32;
    for b in 0..bits {
        x |= (((key >> (3 * b)) & 1) as u32) << b;
        y |= (((key >> (3 * b + 1)) & 1) as u32) << b;
        z |= (((key >> (3 * b + 2)) & 1) as u32) << b;
    }
    (x, y, z)
}

/// Hilbert-curve key of lattice point `(x, y, z)` on a `2^bits` cube,
/// using Skilling's transpose algorithm.
pub fn hilbert3(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    assert!(bits <= 21, "hilbert3 supports at most 21 bits per axis");
    let mut coords = [x, y, z];
    axes_to_transpose(&mut coords, bits);
    // Interleave the transposed coordinates MSB-first.
    let mut key = 0u64;
    for b in (0..bits).rev() {
        for c in coords.iter() {
            key = (key << 1) | (((c >> b) & 1) as u64);
        }
    }
    key
}

/// Inverse of [`hilbert3`].
pub fn hilbert3_inv(key: u64, bits: u32) -> (u32, u32, u32) {
    let mut coords = [0u32; 3];
    let mut shift = 3 * bits;
    for b in (0..bits).rev() {
        for c in coords.iter_mut() {
            shift -= 1;
            *c |= (((key >> shift) & 1) as u32) << b;
        }
    }
    transpose_to_axes(&mut coords, bits);
    (coords[0], coords[1], coords[2])
}

/// Skilling's "axes to transpose" (public-domain algorithm, 2004).
fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    let mut q = 1u32 << (bits - 1);
    // Inverse undo.
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = 1u32 << (bits - 1);
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Skilling's "transpose to axes".
fn transpose_to_axes(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    // Gray decode.
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != (1u32 << bits) {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Number of bits needed to address `n` lattice positions per axis.
pub fn bits_for(n: usize) -> u32 {
    let mut bits = 1;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits
}

/// Sort lattice points into Morton order; returns indices into `points`.
pub fn morton_order(points: &[(u32, u32, u32)]) -> Vec<usize> {
    let max = points
        .iter()
        .map(|&(x, y, z)| x.max(y).max(z))
        .max()
        .unwrap_or(0) as usize
        + 1;
    let bits = bits_for(max);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by_key(|&i| morton3(points[i].0, points[i].1, points[i].2, bits));
    idx
}

/// Sort lattice points into Hilbert order; returns indices into `points`.
pub fn hilbert_order(points: &[(u32, u32, u32)]) -> Vec<usize> {
    let max = points
        .iter()
        .map(|&(x, y, z)| x.max(y).max(z))
        .max()
        .unwrap_or(0) as usize
        + 1;
    let bits = bits_for(max);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by_key(|&i| hilbert3(points[i].0, points[i].1, points[i].2, bits));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_roundtrip() {
        for bits in 1..=6 {
            let n = 1u32 << bits;
            for x in (0..n).step_by(3) {
                for y in (0..n).step_by(2) {
                    for z in 0..n.min(8) {
                        let key = morton3(x, y, z, bits);
                        assert_eq!(morton3_inv(key, bits), (x, y, z));
                    }
                }
            }
        }
    }

    #[test]
    fn hilbert_roundtrip() {
        for bits in 1..=4 {
            let n = 1u32 << bits;
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let key = hilbert3(x, y, z, bits);
                        assert_eq!(hilbert3_inv(key, bits), (x, y, z), "bits {bits}");
                    }
                }
            }
        }
    }

    #[test]
    fn hilbert_is_a_bijection() {
        let bits = 3;
        let n = 1u64 << bits;
        let mut seen = vec![false; (n * n * n) as usize];
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                for z in 0..n as u32 {
                    let key = hilbert3(x, y, z, bits) as usize;
                    assert!(!seen[key], "key {key} hit twice");
                    seen[key] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_consecutive_keys_are_face_adjacent() {
        let bits = 3;
        let n = 1u32 << bits;
        let mut by_key = vec![(0u32, 0u32, 0u32); (n * n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    by_key[hilbert3(x, y, z, bits) as usize] = (x, y, z);
                }
            }
        }
        for w in by_key.windows(2) {
            let (a, b) = (w[0], w[1]);
            let d = (a.0 as i64 - b.0 as i64).abs()
                + (a.1 as i64 - b.1 as i64).abs()
                + (a.2 as i64 - b.2 as i64).abs();
            assert_eq!(d, 1, "{a:?} -> {b:?} not adjacent");
        }
    }

    #[test]
    fn morton_zero_is_zero() {
        assert_eq!(morton3(0, 0, 0, 10), 0);
        assert_eq!(hilbert3(0, 0, 0, 10), 0);
    }

    #[test]
    fn bits_for_covers_range() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }

    #[test]
    fn orderings_are_permutations() {
        let pts: Vec<(u32, u32, u32)> = (0..5)
            .flat_map(|x| (0..5).map(move |y| (x, y, (x + y) % 3)))
            .collect();
        for order in [morton_order(&pts), hilbert_order(&pts)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..pts.len()).collect::<Vec<_>>());
        }
    }
}
