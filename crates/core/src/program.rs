//! The patch-program interface (paper §III-A, Fig. 6).

use bytes::Bytes;
use jsweep_mesh::PatchId;

/// Task tag distinguishing multiple tasks on the same patch.
///
/// For Sn sweeps the tag is the sweeping angle id, enabling patch-angle
/// parallelism (§V-B); other data-driven components are free to encode
/// anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskTag(pub u32);

/// Identity of a patch-program: `(patch, task)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId {
    /// Hosting patch.
    pub patch: PatchId,
    /// Task on that patch (for Sn sweeps, the angle id).
    pub task: TaskTag,
}

impl ProgramId {
    /// Convenience constructor.
    pub fn new(patch: PatchId, task: TaskTag) -> ProgramId {
        ProgramId { patch, task }
    }
}

/// A unit of inter-program communication (paper Fig. 6 `Stream`).
#[derive(Debug, Clone)]
pub struct Stream {
    /// Producing program.
    pub src: ProgramId,
    /// Consuming program; a stream *activates* its target.
    pub dst: ProgramId,
    /// User-defined data (see `jsweep_comm::pack` for the codec used by
    /// the sweep component).
    pub payload: Bytes,
}

/// Context handed to [`PatchProgram::compute`]: collects output streams
/// and fine-grained timing.
///
/// The runtime can only distinguish "time inside compute"; the split
/// between numerical kernel time and DAG bookkeeping ("graph-op" in
/// Fig. 16) is known to the program, which reports it through
/// [`ComputeCtx::kernel`].
#[derive(Debug, Default)]
pub struct ComputeCtx {
    /// Output streams produced by this compute call.
    pub out: Vec<Stream>,
    /// Workload units completed by this call (e.g. vertices computed);
    /// drives the counting termination detector and progress tracking.
    pub work_done: u64,
    /// Seconds spent in the numerical kernel (via [`ComputeCtx::kernel`]).
    pub kernel_seconds: f64,
}

impl ComputeCtx {
    /// Run the numerical kernel portion of a compute call, attributing
    /// its wall time to the `kernel` category.
    pub fn kernel<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.kernel_seconds += t0.elapsed().as_secs_f64();
        r
    }

    /// Emit an output stream.
    pub fn send(&mut self, stream: Stream) {
        self.out.push(stream);
    }
}

/// A data-driven patch-program (paper Fig. 6).
///
/// Lifecycle (Alg. 1): `init` once before the first compute; then any
/// number of rounds of `input*` → `compute` → (outputs collected from
/// the [`ComputeCtx`]) → `vote_to_halt`. The runtime guarantees
/// `compute` is never invoked concurrently for the same program.
pub trait PatchProgram: Send {
    /// Initialise local context. Called exactly once, before the first
    /// `input`/`compute`.
    fn init(&mut self);

    /// Receive one stream sent to this program.
    fn input(&mut self, src: ProgramId, payload: Bytes);

    /// Perform (partial) computation; emit streams and account work via
    /// the context.
    fn compute(&mut self, ctx: &mut ComputeCtx);

    /// True when no ready work remains (the program will deactivate
    /// until the next stream arrives).
    fn vote_to_halt(&self) -> bool;

    /// Remaining committed workload (counting termination, §III-B).
    fn remaining_work(&self) -> u64;
}

/// Creates patch-programs and describes their placement and priority.
///
/// The factory is shared by every rank thread; it is the runtime's view
/// of the problem setup (decomposition, priorities, per-program
/// workload).
pub trait ProgramFactory: Send + Sync + 'static {
    /// Concrete program type.
    type Program: PatchProgram + 'static;

    /// Instantiate the program for `id` (called lazily, on the rank that
    /// hosts it).
    fn create(&self, id: ProgramId) -> Self::Program;

    /// All program ids hosted by `rank`.
    fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId>;

    /// The rank hosting `id` (the route table).
    fn rank_of(&self, id: ProgramId) -> usize;

    /// Scheduling priority `prior(p, a)`; larger runs earlier.
    fn priority(&self, id: ProgramId) -> i64;

    /// Committed workload of `id` (e.g. number of local vertices), used
    /// by counting termination.
    fn initial_workload(&self, id: ProgramId) -> u64;
}

/// Wire format of a stream: header (4×u32) + payload.
pub(crate) fn pack_stream(stream: &Stream) -> Bytes {
    let mut w = jsweep_comm::pack::Writer::with_capacity(16 + stream.payload.len());
    w.put_u32(stream.src.patch.0);
    w.put_u32(stream.src.task.0);
    w.put_u32(stream.dst.patch.0);
    w.put_u32(stream.dst.task.0);
    let mut buf = w.finish().to_vec();
    buf.extend_from_slice(&stream.payload);
    Bytes::from(buf)
}

/// Inverse of [`pack_stream`].
pub(crate) fn unpack_stream(mut payload: Bytes) -> Stream {
    use bytes::Buf;
    let src_patch = payload.get_u32_le();
    let src_task = payload.get_u32_le();
    let dst_patch = payload.get_u32_le();
    let dst_task = payload.get_u32_le();
    Stream {
        src: ProgramId::new(PatchId(src_patch), TaskTag(src_task)),
        dst: ProgramId::new(PatchId(dst_patch), TaskTag(dst_task)),
        payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_pack_roundtrip() {
        let s = Stream {
            src: ProgramId::new(PatchId(3), TaskTag(7)),
            dst: ProgramId::new(PatchId(11), TaskTag(0)),
            payload: Bytes::copy_from_slice(b"hello"),
        };
        let packed = pack_stream(&s);
        let back = unpack_stream(packed);
        assert_eq!(back.src, s.src);
        assert_eq!(back.dst, s.dst);
        assert_eq!(&back.payload[..], b"hello");
    }

    #[test]
    fn compute_ctx_accumulates_kernel_time() {
        let mut ctx = ComputeCtx::default();
        let v = ctx.kernel(|| 41 + 1);
        assert_eq!(v, 42);
        ctx.kernel(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(ctx.kernel_seconds >= 0.002);
    }

    #[test]
    fn program_id_ordering_is_patch_major() {
        let a = ProgramId::new(PatchId(1), TaskTag(9));
        let b = ProgramId::new(PatchId(2), TaskTag(0));
        assert!(a < b);
    }
}
